//! Experiment S1 (§5 complexity claim): ablation of Algorithm A1's
//! predecessor test.
//!
//! The paper states A1 as `O(n|E|)`, improving the `O(n²|E|)` regular
//! predicate algorithm of Garg–Mittal \[9\]. Three implementations of
//! `EG` over the same regular predicate:
//!
//! * `A1-incremental` — A1 with the `O(log n)` per-candidate clause check
//!   (realizes the paper's per-step assumption for conjunctive `p`);
//! * `A1-naive` — A1 re-evaluating the full conjunction per candidate;
//! * `slice` — the \[9\]-flavored route: build the slice
//!   (`O(n|E|²)` here), then walk with slice membership tests.
//!
//! Expectation: slice-based `EG` trails A1 by a growing factor; both A1
//! variants are dominated by the `O(n)` maximality test per candidate,
//! so their gap is a constant factor (documented honestly in
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_detect::{eg_conjunctive, eg_linear};
use hb_predicates::{Conjunctive, LocalExpr};
use hb_sim::protocols::token_ring_mutex;
use hb_slicer::eg_regular_via_slice;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("s1/eg-regular");
    for n in [4usize, 8, 16, 32] {
        let t = token_ring_mutex(n, 6, 3);
        let p = Conjunctive::new((0..n).map(|i| (i, LocalExpr::ge(t.try_var, 0))).collect());
        g.bench_with_input(BenchmarkId::new("A1-incremental", n), &n, |b, _| {
            b.iter(|| black_box(eg_conjunctive(&t.comp, &p).holds))
        });
        g.bench_with_input(BenchmarkId::new("A1-naive", n), &n, |b, _| {
            b.iter(|| black_box(eg_linear(&t.comp, &p).holds))
        });
        g.bench_with_input(BenchmarkId::new("slice", n), &n, |b, _| {
            b.iter(|| black_box(eg_regular_via_slice(&t.comp, &p).holds))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ablation
}
criterion_main!(benches);
