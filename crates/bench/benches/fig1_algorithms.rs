//! Experiment F1 (Fig. 1 of the paper — Algorithms A1 and A2): scaling
//! of `EG(linear)` and `AG(linear)` with trace size.
//!
//! Expectation: both algorithms scale linearly in `|E|` (A1's walk visits
//! each event once; A2 checks one cut per event), with A2 cheaper by a
//! constant factor since it never materializes predecessor sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hb_bench::workloads::{conj_le, random};
use hb_detect::{ag_linear, eg_conjunctive};
use std::hint::black_box;

fn bench_scaling_in_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/events");
    for events in [100usize, 400, 1600, 6400] {
        let comp = random(4, events);
        let p = conj_le(&comp, 2);
        g.throughput(Throughput::Elements(comp.num_events() as u64));
        g.bench_with_input(BenchmarkId::new("A1-EG", events), &events, |b, _| {
            b.iter(|| black_box(eg_conjunctive(&comp, &p).holds))
        });
        g.bench_with_input(BenchmarkId::new("A2-AG", events), &events, |b, _| {
            b.iter(|| black_box(ag_linear(&comp, &p).holds))
        });
    }
    g.finish();
}

fn bench_scaling_in_processes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/processes");
    for n in [2usize, 4, 8, 16, 32] {
        // Keep |E| roughly constant as n grows.
        let comp = random(n, 1600 / n);
        let p = conj_le(&comp, 2);
        g.bench_with_input(BenchmarkId::new("A1-EG", n), &n, |b, _| {
            b.iter(|| black_box(eg_conjunctive(&comp, &p).holds))
        });
        g.bench_with_input(BenchmarkId::new("A2-AG", n), &n, |b, _| {
            b.iter(|| black_box(ag_linear(&comp, &p).holds))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling_in_events, bench_scaling_in_processes
}
criterion_main!(benches);
