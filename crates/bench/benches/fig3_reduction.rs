//! Experiment F3 (Fig. 3 of the paper): detection cost on the
//! NP-hardness gadgets.
//!
//! Expectation: `EG`/`AG` of the observer-independent gadget predicate
//! grows exponentially with the number of boolean variables `m` (the
//! gadget lattice has `3·2^m` / `2·2^m` cuts), while the DPLL check of
//! the underlying formula stays comparatively cheap — the point of
//! Theorems 5 and 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_detect::ModelChecker;
use hb_reduction::{dpll_sat, random_3cnf, sat_to_eg_gadget, tautology_to_ag_gadget};
use std::hint::black_box;

fn bench_gadgets(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    for m in [4usize, 6, 8, 10, 12] {
        let cnf = random_3cnf(m, 2 * m, m as u64);
        let expr = cnf.to_expr();

        let (comp_eg, pred_eg) = sat_to_eg_gadget(&expr, m);
        g.bench_with_input(BenchmarkId::new("EG-gadget", m), &m, |b, _| {
            b.iter(|| {
                let mc = ModelChecker::new(&comp_eg);
                black_box(mc.eg(&pred_eg))
            })
        });

        let (comp_ag, pred_ag) = tautology_to_ag_gadget(&expr, m);
        g.bench_with_input(BenchmarkId::new("AG-gadget", m), &m, |b, _| {
            b.iter(|| {
                let mc = ModelChecker::new(&comp_ag);
                black_box(mc.ag(&pred_ag))
            })
        });

        g.bench_with_input(BenchmarkId::new("DPLL", m), &m, |b, _| {
            b.iter(|| black_box(dpll_sat(&cnf).is_some()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gadgets
}
criterion_main!(benches);
