//! Experiments F4/S3 (Fig. 4 of the paper): `E[p U q]` via Algorithm A3
//! vs the explicit-lattice baseline, on the scaled Fig. 4 family and the
//! producer/consumer pipeline.
//!
//! Expectation: A3 stays linear in `|E|` while the baseline pays for the
//! lattice (it stops being runnable past a few dozen rounds); `A[p U q]`
//! via the §7 identity tracks A3's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_bench::figures::fig4_scaled;
use hb_detect::{au_disjunctive, eu_conjunctive_linear, ModelChecker};
use hb_predicates::{Disjunctive, LocalExpr};
use hb_sim::protocols::producer_consumer;
use std::hint::black_box;

fn bench_fig4_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/eu");
    for rounds in [1usize, 8, 64, 512] {
        let f = fig4_scaled(rounds);
        let p = f.p();
        let q = f.q();
        g.bench_with_input(BenchmarkId::new("A3", rounds), &rounds, |b, _| {
            b.iter(|| black_box(eu_conjunctive_linear(&f.comp, &p, &q).holds))
        });
        if rounds <= 8 {
            let mc = ModelChecker::new(&f.comp);
            g.bench_with_input(BenchmarkId::new("baseline", rounds), &rounds, |b, _| {
                b.iter(|| black_box(mc.eu(&p, &q)))
            });
        }
    }
    g.finish();
}

fn bench_pipeline_until(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/pipeline");
    for items in [32usize, 128, 512, 2048] {
        let t = producer_consumer(4, items, 17);
        let n = t.comp.num_processes();
        let p = Disjunctive::new(vec![(n - 1, LocalExpr::ge(t.consumed_var, 0))]);
        let q = Disjunctive::new(vec![(n - 1, LocalExpr::eq(t.consumed_var, items as i64))]);
        g.bench_with_input(BenchmarkId::new("AU-identity", items), &items, |b, _| {
            b.iter(|| black_box(au_disjunctive(&t.comp, &p, &q).holds))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fig4_family, bench_pipeline_until
}
criterion_main!(benches);
