//! Monitor ingestion throughput: events/second through the full
//! hb-monitor session stack — wire-shaped predicate, causal-delivery
//! buffer, local-state reconstruction, and the on-line conjunctive
//! detector — at 2, 8, and 32 processes.
//!
//! Two arrival regimes per size: `ordered` (a random linearization, the
//! buffer passes everything straight through) and `shuffled` (bounded
//! transport reordering with an 8-event window, so the buffer holds and
//! cascades). The gap between the two is the price of causal repair.
//!
//! A second group, `monitor/wire`, measures the same ingestion through
//! a real TCP socket and the full frame codec — once as one `event`
//! frame per event and once coalesced into 64-event wire-v3 `events`
//! frames. Framing and syscalls dominate that path, so the batched
//! variant is where the v3 batch frame earns its keep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hb_bench::workloads::random;
use hb_computation::{Computation, EventId};
use hb_monitor::{MonitorConfig, MonitorService, Session, SessionLimits};
use hb_sim::{causal_shuffle, random_linearization};
use hb_tracefmt::wire::{
    read_frame, write_frame, ClientMsg, EventFrame, ServerMsg, WireClause, WireMode, WirePredicate,
    WIRE_VERSION,
};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};

/// A conjunctive predicate chosen to stay pending (value never taken),
/// so the detectors stay active over the whole stream.
fn predicate(n: usize) -> WirePredicate {
    WirePredicate {
        id: "bench".into(),
        mode: WireMode::Conjunctive,
        clauses: (0..n)
            .map(|p| WireClause {
                process: p,
                var: "x".into(),
                op: "=".into(),
                value: -1,
            })
            .collect(),
        pattern: None,
    }
}

/// Pre-resolved replay input: (process, clock components, state map).
type Feed = Vec<(usize, Vec<u32>, BTreeMap<String, i64>)>;

fn feed(comp: &Computation, order: &[EventId]) -> Feed {
    order
        .iter()
        .map(|&e| {
            let state = comp.local_state(e.process, e.index as u32 + 1);
            let set = comp
                .vars()
                .iter()
                .map(|(id, name)| (name.to_string(), state.get(id)))
                .collect();
            (e.process, comp.clock(e).components().to_vec(), set)
        })
        .collect()
}

fn replay(n: usize, vars: &[String], pred: &WirePredicate, events: &Feed) -> u64 {
    let mut session = Session::open(
        "bench",
        n,
        vars,
        &[],
        std::slice::from_ref(pred),
        SessionLimits {
            buffer_capacity: 1 << 16,
            ..SessionLimits::default()
        },
    )
    .expect("open");
    for (p, clock, set) in events {
        session
            .event(
                *p,
                hb_vclock::VectorClock::from_components(clock.clone()),
                set,
            )
            .expect("event accepted");
    }
    session.delivered()
}

fn bench_monitor_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor/throughput");
    for n in [2usize, 8, 32] {
        // ~4096 events regardless of the process count.
        let comp = random(n, 4096 / n);
        let total = comp.num_events() as u64;
        let vars: Vec<String> = comp.vars().iter().map(|(_, s)| s.to_string()).collect();
        let pred = predicate(n);
        let ordered = feed(&comp, &random_linearization(&comp, 1));
        let shuffled = feed(&comp, &causal_shuffle(&comp, 1, 8));
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(BenchmarkId::new("ordered", n), &n, |b, _| {
            b.iter(|| black_box(replay(n, &vars, &pred, &ordered)))
        });
        g.bench_with_input(BenchmarkId::new("shuffled", n), &n, |b, _| {
            b.iter(|| black_box(replay(n, &vars, &pred, &shuffled)))
        });
    }
    g.finish();
}

/// Streams one full session over an already-handshaken connection:
/// `chunk = 1` writes one `event` frame per event, larger chunks write
/// wire-v3 `events` frames. Returns once the server confirms the close,
/// so a measured iteration covers ingestion end to end.
#[allow(clippy::too_many_arguments)]
fn stream_session(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    n: usize,
    vars: &[String],
    pred: &WirePredicate,
    frames: &[EventFrame],
    chunk: usize,
    next: &mut u64,
) -> u64 {
    let session = format!("wb-{next}");
    *next += 1;
    write_frame(
        writer,
        &ClientMsg::Open {
            session: session.clone(),
            processes: n,
            vars: vars.to_vec(),
            initial: Vec::new(),
            predicates: vec![pred.clone()],
            dist: None,
        },
    )
    .expect("open frame");
    match read_frame::<_, ServerMsg>(reader).expect("open reply") {
        Some(ServerMsg::Opened { .. }) => {}
        other => panic!("expected opened, got {other:?}"),
    }
    if chunk <= 1 {
        for f in frames {
            write_frame(writer, &f.clone().into_event(&session)).expect("event frame");
        }
    } else {
        for c in frames.chunks(chunk) {
            write_frame(
                writer,
                &ClientMsg::Events {
                    session: session.clone(),
                    events: c.to_vec(),
                },
            )
            .expect("events frame");
        }
    }
    write_frame(writer, &ClientMsg::Close { session }).expect("close frame");
    loop {
        match read_frame::<_, ServerMsg>(reader).expect("close replies") {
            Some(ServerMsg::Closed { .. }) => return frames.len() as u64,
            Some(ServerMsg::Verdict { .. }) => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
}

fn bench_wire_batching(c: &mut Criterion) {
    let n = 8usize;
    let comp = random(n, 4096 / n);
    let total = comp.num_events() as u64;
    let vars: Vec<String> = comp.vars().iter().map(|(_, s)| s.to_string()).collect();
    let pred = predicate(n);
    let frames: Vec<EventFrame> = random_linearization(&comp, 1)
        .iter()
        .map(|&e| {
            let state = comp.local_state(e.process, e.index as u32 + 1);
            EventFrame {
                p: e.process,
                clock: comp.clock(e).components().to_vec(),
                set: comp
                    .vars()
                    .iter()
                    .map(|(id, name)| (name.to_string(), state.get(id)))
                    .collect(),
            }
        })
        .collect();

    // A live monitor behind a real socket; the serve thread outlives the
    // benchmark and dies with the process.
    let service = MonitorService::start(MonitorConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = service.handle();
    std::thread::spawn(move || {
        let _ = hb_monitor::serve(listener, handle);
    });

    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .expect("hello");
    match read_frame::<_, ServerMsg>(&mut reader).expect("welcome") {
        Some(ServerMsg::Welcome { .. }) => {}
        other => panic!("expected welcome, got {other:?}"),
    }

    let mut next = 0u64;
    let mut g = c.benchmark_group("monitor/wire");
    g.throughput(Throughput::Elements(total));
    g.bench_function("singles", |b| {
        b.iter(|| {
            black_box(stream_session(
                &mut writer,
                &mut reader,
                n,
                &vars,
                &pred,
                &frames,
                1,
                &mut next,
            ))
        })
    });
    g.bench_function("batch64", |b| {
        b.iter(|| {
            black_box(stream_session(
                &mut writer,
                &mut reader,
                n,
                &vars,
                &pred,
                &frames,
                64,
                &mut next,
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_monitor_throughput, bench_wire_batching
}
criterion_main!(benches);
