//! Monitor ingestion throughput: events/second through the full
//! hb-monitor session stack — wire-shaped predicate, causal-delivery
//! buffer, local-state reconstruction, and the on-line conjunctive
//! detector — at 2, 8, and 32 processes.
//!
//! Two arrival regimes per size: `ordered` (a random linearization, the
//! buffer passes everything straight through) and `shuffled` (bounded
//! transport reordering with an 8-event window, so the buffer holds and
//! cascades). The gap between the two is the price of causal repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hb_bench::workloads::random;
use hb_computation::{Computation, EventId};
use hb_monitor::{Session, SessionLimits};
use hb_sim::{causal_shuffle, random_linearization};
use hb_tracefmt::wire::{WireClause, WireMode, WirePredicate};
use std::collections::BTreeMap;
use std::hint::black_box;

/// A conjunctive predicate chosen to stay pending (value never taken),
/// so the detectors stay active over the whole stream.
fn predicate(n: usize) -> WirePredicate {
    WirePredicate {
        id: "bench".into(),
        mode: WireMode::Conjunctive,
        clauses: (0..n)
            .map(|p| WireClause {
                process: p,
                var: "x".into(),
                op: "=".into(),
                value: -1,
            })
            .collect(),
    }
}

/// Pre-resolved replay input: (process, clock components, state map).
type Feed = Vec<(usize, Vec<u32>, BTreeMap<String, i64>)>;

fn feed(comp: &Computation, order: &[EventId]) -> Feed {
    order
        .iter()
        .map(|&e| {
            let state = comp.local_state(e.process, e.index as u32 + 1);
            let set = comp
                .vars()
                .iter()
                .map(|(id, name)| (name.to_string(), state.get(id)))
                .collect();
            (e.process, comp.clock(e).components().to_vec(), set)
        })
        .collect()
}

fn replay(n: usize, vars: &[String], pred: &WirePredicate, events: &Feed) -> u64 {
    let mut session = Session::open(
        "bench",
        n,
        vars,
        &[],
        std::slice::from_ref(pred),
        SessionLimits {
            buffer_capacity: 1 << 16,
            ..SessionLimits::default()
        },
    )
    .expect("open");
    for (p, clock, set) in events {
        session
            .event(
                *p,
                hb_vclock::VectorClock::from_components(clock.clone()),
                set,
            )
            .expect("event accepted");
    }
    session.delivered()
}

fn bench_monitor_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor/throughput");
    for n in [2usize, 8, 32] {
        // ~4096 events regardless of the process count.
        let comp = random(n, 4096 / n);
        let total = comp.num_events() as u64;
        let vars: Vec<String> = comp.vars().iter().map(|(_, s)| s.to_string()).collect();
        let pred = predicate(n);
        let ordered = feed(&comp, &random_linearization(&comp, 1));
        let shuffled = feed(&comp, &causal_shuffle(&comp, 1, 8));
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(BenchmarkId::new("ordered", n), &n, |b, _| {
            b.iter(|| black_box(replay(n, &vars, &pred, &ordered)))
        });
        g.bench_with_input(BenchmarkId::new("shuffled", n), &n, |b, _| {
            b.iter(|| black_box(replay(n, &vars, &pred, &shuffled)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_monitor_throughput
}
criterion_main!(benches);
