//! HPC ablation: parallel (Rayon) vs sequential construction of the cut
//! lattice.
//!
//! The lattice build is the baseline's dominant cost in experiments F1,
//! S2 and F4. Level-synchronous BFS parallelizes the successor generation
//! and edge construction; this bench measures the speedup the baseline
//! enjoys — and that the structural algorithms beat regardless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_bench::workloads::random;
use hb_lattice::CutLattice;
use std::hint::black_box;

fn bench_parallel_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel-lattice");
    for n in [4usize, 5, 6] {
        let comp = random(n, 5);
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| black_box(CutLattice::try_build(&comp, usize::MAX).unwrap().len()))
        });
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    CutLattice::try_build_sequential(&comp, usize::MAX)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_build
}
criterion_main!(benches);
