//! Experiment S2 (§1/§3 state-explosion claim): the cost of even
//! *constructing* the lattice of consistent cuts vs answering the same
//! question structurally.
//!
//! Expectation: lattice construction explodes with the number of
//! processes (the S2 table in EXPERIMENTS.md records sizes up to ~6·10⁴
//! cuts for n=7 with only 4 events per process), while the Chase–Garg
//! `EF` walk stays in the microsecond range; the crossover is immediate
//! beyond trivially small traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_bench::workloads::{conj_le, random};
use hb_detect::ef_linear;
use hb_lattice::CutLattice;
use std::hint::black_box;

fn bench_state_explosion(c: &mut Criterion) {
    let mut g = c.benchmark_group("s2");
    for n in [3usize, 4, 5, 6] {
        let comp = random(n, 4);
        let p = conj_le(&comp, 1);
        g.bench_with_input(BenchmarkId::new("lattice-build", n), &n, |b, _| {
            b.iter(|| black_box(CutLattice::build(&comp).len()))
        });
        g.bench_with_input(BenchmarkId::new("chase-garg-EF", n), &n, |b, _| {
            b.iter(|| black_box(ef_linear(&comp, &p).holds))
        });
    }
    // Structural EF on traces far beyond any buildable lattice.
    for n in [8usize, 16] {
        let comp = random(n, 1000);
        let p = conj_le(&comp, 1);
        g.bench_with_input(BenchmarkId::new("chase-garg-EF/large", n), &n, |b, _| {
            b.iter(|| black_box(ef_linear(&comp, &p).holds))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_state_explosion
}
criterion_main!(benches);
