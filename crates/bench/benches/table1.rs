//! Experiment T1 (Table 1 of the paper): one benchmark per predicate
//! class × operator cell, comparing the structural algorithm against the
//! explicit-lattice baseline on the same trace.
//!
//! Expectation (shape, not absolute numbers): structural cells sit in the
//! microsecond range and are flat in lattice size; every baseline cell
//! pays for the full `|C(E)|` sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hb_bench::workloads::{conj_le, disj_eq, random};
use hb_detect::{
    af_conjunctive, af_disjunctive, ag_disjunctive, ag_linear, ef_disjunctive, ef_linear,
    ef_observer_independent, eg_conjunctive, eg_disjunctive, ModelChecker,
};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let comp = random(4, 5);
    let p = conj_le(&comp, 1);
    let d = disj_eq(&comp, 2);
    let mc = ModelChecker::new(&comp);

    let mut g = c.benchmark_group("table1");

    g.bench_function("conjunctive/EF/structural", |b| {
        b.iter(|| black_box(ef_linear(&comp, &p).holds))
    });
    g.bench_function("conjunctive/EF/baseline", |b| {
        b.iter(|| black_box(mc.ef(&p)))
    });
    g.bench_function("conjunctive/AF/structural", |b| {
        b.iter(|| black_box(af_conjunctive(&comp, &p).holds))
    });
    g.bench_function("conjunctive/AF/baseline", |b| {
        b.iter(|| black_box(mc.af(&p)))
    });
    g.bench_function("conjunctive/EG/structural-A1", |b| {
        b.iter(|| black_box(eg_conjunctive(&comp, &p).holds))
    });
    g.bench_function("conjunctive/EG/baseline", |b| {
        b.iter(|| black_box(mc.eg(&p)))
    });
    g.bench_function("conjunctive/AG/structural-A2", |b| {
        b.iter(|| black_box(ag_linear(&comp, &p).holds))
    });
    g.bench_function("conjunctive/AG/baseline", |b| {
        b.iter(|| black_box(mc.ag(&p)))
    });

    g.bench_function("disjunctive/EF/structural", |b| {
        b.iter(|| black_box(ef_disjunctive(&comp, &d).holds))
    });
    g.bench_function("disjunctive/AF/structural", |b| {
        b.iter(|| black_box(af_disjunctive(&comp, &d).holds))
    });
    g.bench_function("disjunctive/EG/structural-token", |b| {
        b.iter(|| black_box(eg_disjunctive(&comp, &d).holds))
    });
    g.bench_function("disjunctive/EG/baseline", |b| {
        b.iter(|| black_box(mc.eg(&d)))
    });
    g.bench_function("disjunctive/AG/structural", |b| {
        b.iter(|| black_box(ag_disjunctive(&comp, &d).holds))
    });

    g.bench_function("observer-independent/EF/sampling", |b| {
        b.iter(|| black_box(ef_observer_independent(&comp, &d).holds))
    });

    // The structural algorithms on a trace where the baseline cannot even
    // be constructed (n=8, |E| ≈ 16k).
    let big = random(8, 2000);
    let bp = conj_le(&big, 1);
    g.bench_function("conjunctive/EG/structural-A1/large", |b| {
        b.iter(|| black_box(eg_conjunctive(&big, &bp).holds))
    });
    g.bench_function("conjunctive/AG/structural-A2/large", |b| {
        b.iter(|| black_box(ag_linear(&big, &bp).holds))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
