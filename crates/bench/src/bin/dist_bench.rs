//! Distributed-detection benchmark: per-event cost of the
//! [`DistWorker`]×K + [`DistAggregator`] pipeline against the
//! single-backend [`Session`] it must stay verdict-identical to, on
//! the sparse-predicate workload. Prints one JSON object to stdout in
//! the shared `BENCH_*.json` schema so CI can archive it
//! (`BENCH_dist.json`) and trend it across commits.
//!
//! ```text
//! dist_bench [--quick]
//! ```
//!
//! The harness emulates exactly what the service layers add around the
//! engines — the gateway's deterministic sequence stamping and the
//! update relay into the aggregator — with no sockets, so the numbers
//! isolate the *engine* overhead of distribution: each event is sliced
//! twice (once in its worker, once in the aggregator's replica) plus
//! the reorder-buffer bookkeeping. `overhead` is dist over single
//! ns-per-event on the identical pre-built stream; `updates_per_event`
//! confirms the one-update-per-sequence liveness invariant is also the
//! whole relay traffic. `flatness` (max/min ns-per-event across the
//! 10x sweep) near 1.0 confirms the pipeline stays O(1) per event.

use hb_bench::report::{BenchReport, BenchRun};
use hb_dist::{owner, DistAggregator, DistWorker, OverflowPolicy};
use hb_monitor::{Session, SessionLimits};
use hb_sim::{random_computation, random_linearization, RandomSpec};
use hb_tracefmt::wire::{WireClause, WireMode, WirePredicate};
use hb_vclock::VectorClock;
use std::collections::BTreeMap;
use std::time::Instant;

const PROCESSES: usize = 8;

/// `x = 31` on every process but the first, `x = -1` on process 0:
/// each live clause is true on ~3% of events, and the p0 clause can
/// never be true, so neither pipeline settles the predicate no matter
/// the stream length — every event is end-to-end work.
fn sparse_predicate() -> WirePredicate {
    WirePredicate {
        id: "sparse".into(),
        mode: WireMode::Conjunctive,
        clauses: (0..PROCESSES)
            .map(|p| WireClause {
                process: p,
                var: "x".into(),
                op: "=".into(),
                value: if p == 0 { -1 } else { 31 },
            })
            .collect(),
        pattern: None,
    }
}

/// One pre-built causally consistent stream.
type Stream = Vec<(usize, Vec<u32>, BTreeMap<String, i64>)>;

fn build_stream(total_events: usize, seed: u64) -> Stream {
    let comp = random_computation(RandomSpec {
        processes: PROCESSES,
        events_per_process: total_events / PROCESSES,
        send_percent: 30,
        value_range: 32,
        seed,
    });
    let x = comp.vars().iter().next().expect("the x variable").0;
    random_linearization(&comp, seed ^ 0x5eed)
        .iter()
        .map(|&e| {
            (
                e.process,
                comp.clock(e).components().to_vec(),
                [(
                    "x".to_string(),
                    comp.local_state(e.process, e.index as u32 + 1).get(x),
                )]
                .into_iter()
                .collect(),
            )
        })
        .collect()
}

/// The single-backend reference leg (slicing on, the default).
fn run_single(stream: &Stream) -> f64 {
    let mut session = Session::open(
        "dist-bench",
        PROCESSES,
        &["x".to_string()],
        &[],
        &[sparse_predicate()],
        SessionLimits::default(),
    )
    .expect("open session");
    let start = Instant::now();
    for (p, clock, set) in stream {
        let verdicts = session
            .event(*p, VectorClock::from_components(clock.clone()), set)
            .expect("ingest event");
        assert!(verdicts.is_empty(), "sparse predicate settled early");
    }
    start.elapsed().as_secs_f64()
}

/// The distributed leg: K workers and an aggregator with the gateway's
/// sequence stamping emulated inline. Returns wall time and the number
/// of slice updates relayed worker → aggregator.
fn run_dist(stream: &Stream, k: usize) -> (f64, u64) {
    let vars = vec!["x".to_string()];
    let preds = [sparse_predicate()];
    let mut workers: Vec<DistWorker> = (0..k)
        .map(|i| DistWorker::open(i, k, PROCESSES, &vars, &[], &preds).expect("open worker"))
        .collect();
    let mut agg = DistAggregator::open(
        k,
        PROCESSES,
        &vars,
        &[],
        &preds,
        1 << 20,
        OverflowPolicy::Reject,
    )
    .expect("open aggregator");
    let _ = agg.take_initial_verdicts();
    let mut updates = 0u64;
    let start = Instant::now();
    for (seq, (p, clock, set)) in stream.iter().enumerate() {
        let emitted = workers[owner(*p, k)].observe(
            seq as u64,
            *p,
            VectorClock::from_components(clock.clone()),
            set,
        );
        for (s, body) in emitted {
            updates += 1;
            let steps = agg.update(s, body);
            assert!(
                steps.is_empty(),
                "sparse predicate produced steps mid-stream: {steps:?}"
            );
        }
    }
    (start.elapsed().as_secs_f64(), updates)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base = if quick { 8_000 } else { 100_000 };
    let lengths = [base, 3 * base, 10 * base];
    let k = 4;
    let rounds = 5;

    let streams: Vec<Stream> = lengths
        .iter()
        .enumerate()
        .map(|(i, &n)| build_stream(n, 17 + i as u64))
        .collect();

    // Warm-up, then interleaved rounds so drift hits every length and
    // both legs equally.
    let _ = run_dist(&streams[0], k);
    let mut dist_secs = vec![Vec::new(); lengths.len()];
    let mut single_secs = vec![Vec::new(); lengths.len()];
    let mut update_totals = vec![0u64; lengths.len()];
    for _ in 0..rounds {
        for (i, stream) in streams.iter().enumerate() {
            let (secs, updates) = run_dist(stream, k);
            dist_secs[i].push(secs);
            update_totals[i] = updates;
            single_secs[i].push(run_single(stream));
        }
    }

    let mut report = BenchReport::new("dist")
        .meta("processes", PROCESSES as u64)
        .meta("workers", k as u64);
    for (i, stream) in streams.iter().enumerate() {
        let dist = median(dist_secs[i].clone());
        let single = median(single_secs[i].clone());
        report.push(
            BenchRun::new(format!("k{k}_n{}", stream.len()), stream.len() as u64, dist)
                .with("single_ns_per_event", single * 1e9 / stream.len() as f64)
                .with("overhead", dist / single)
                .with(
                    "updates_per_event",
                    update_totals[i] as f64 / stream.len() as f64,
                ),
        );
    }
    println!("{}", report.to_json());
}
