//! Monitor wire-path benchmark: events/second through a live monitor
//! behind a real TCP socket and the full frame codec. Prints one JSON
//! object to stdout so CI can archive it (`BENCH_monitor.json`) and
//! trend it across commits.
//!
//! ```text
//! monitor_bench [--quick]
//! ```
//!
//! Three modes over the same random trace:
//! - `singles`  — one `event` frame per event, a conjunctive predicate
//! - `batch64`  — 64-event wire-v3 `events` frames, same predicate
//! - `pattern`  — one `event` frame per event, a 3-atom pattern
//!   predicate, so the predictive detector's wire-path overhead is
//!   directly comparable against `singles`.

use hb_bench::report::{BenchReport, BenchRun};
use hb_monitor::{MonitorConfig, MonitorService};
use hb_sim::{random_computation, random_linearization, RandomSpec};
use hb_tracefmt::wire::{
    read_frame, write_frame, ClientMsg, EventFrame, ServerMsg, WireAtom, WireClause, WireMode,
    WirePattern, WirePredicate, WIRE_VERSION,
};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

const PROCESSES: usize = 8;

/// A conjunctive predicate chosen to stay pending (value never taken),
/// so the detector stays active over the whole stream.
fn state_predicate() -> WirePredicate {
    WirePredicate {
        id: "bench".into(),
        mode: WireMode::Conjunctive,
        clauses: (0..PROCESSES)
            .map(|p| WireClause {
                process: p,
                var: "x".into(),
                op: "=".into(),
                value: -1,
            })
            .collect(),
        pattern: None,
    }
}

/// `x=1 -> x=2 -> x=3`: values come from `0..32`, so atoms match ~3% of
/// events and the Pareto-frontier machinery does realistic work.
fn pattern_predicate() -> WirePredicate {
    WirePredicate {
        id: "bench".into(),
        mode: WireMode::Pattern,
        clauses: Vec::new(),
        pattern: Some(WirePattern {
            atoms: (1..=3)
                .map(|value| WireAtom {
                    process: None,
                    var: "x".into(),
                    op: "=".into(),
                    value,
                    causal: false,
                })
                .collect(),
        }),
    }
}

/// Streams one full session over an already-handshaken connection and
/// waits for the close acknowledgement, so a measured run covers
/// ingestion end to end. `chunk = 1` writes single `event` frames.
fn stream_session(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    pred: &WirePredicate,
    frames: &[EventFrame],
    chunk: usize,
    next: &mut u64,
) {
    let session = format!("mb-{next}");
    *next += 1;
    write_frame(
        writer,
        &ClientMsg::Open {
            session: session.clone(),
            processes: PROCESSES,
            vars: vec!["x".into()],
            initial: Vec::new(),
            predicates: vec![pred.clone()],
            dist: None,
        },
    )
    .expect("open frame");
    match read_frame::<_, ServerMsg>(reader).expect("open reply") {
        Some(ServerMsg::Opened { .. }) => {}
        other => panic!("expected opened, got {other:?}"),
    }
    if chunk <= 1 {
        for f in frames {
            write_frame(writer, &f.clone().into_event(&session)).expect("event frame");
        }
    } else {
        for c in frames.chunks(chunk) {
            write_frame(
                writer,
                &ClientMsg::Events {
                    session: session.clone(),
                    events: c.to_vec(),
                },
            )
            .expect("events frame");
        }
    }
    write_frame(writer, &ClientMsg::Close { session }).expect("close frame");
    loop {
        match read_frame::<_, ServerMsg>(reader).expect("close replies") {
            Some(ServerMsg::Closed { .. }) => return,
            Some(ServerMsg::Verdict { .. }) => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_process = if quick { 64 } else { 1024 };
    let comp = random_computation(RandomSpec {
        processes: PROCESSES,
        events_per_process: per_process,
        send_percent: 30,
        value_range: 32,
        seed: 7,
    });
    let x = comp.vars().iter().next().expect("the x variable").0;
    let frames: Vec<EventFrame> = random_linearization(&comp, 1)
        .iter()
        .map(|&e| EventFrame {
            p: e.process,
            clock: comp.clock(e).components().to_vec(),
            set: [(
                "x".to_string(),
                comp.local_state(e.process, e.index as u32 + 1).get(x),
            )]
            .into_iter()
            .collect(),
        })
        .collect();

    // A live monitor behind a real socket; the serve thread dies with
    // the process.
    let service = MonitorService::start(MonitorConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = service.handle();
    std::thread::spawn(move || {
        let _ = hb_monitor::serve(listener, handle);
    });

    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .expect("hello");
    match read_frame::<_, ServerMsg>(&mut reader).expect("welcome") {
        Some(ServerMsg::Welcome { .. }) => {}
        other => panic!("expected welcome, got {other:?}"),
    }

    let mut next = 0u64;
    let modes: [(&str, WirePredicate, usize); 3] = [
        ("singles", state_predicate(), 1),
        ("batch64", state_predicate(), 64),
        ("pattern", pattern_predicate(), 1),
    ];
    let iters = if quick { 2 } else { 5 };
    let mut report = BenchReport::new("monitor/wire")
        .meta("processes", PROCESSES as u64)
        .meta("events", frames.len() as u64);
    for (mode, pred, chunk) in &modes {
        // Warm-up session, then best-of-n to shave scheduler noise.
        stream_session(&mut writer, &mut reader, pred, &frames, *chunk, &mut next);
        let mut best = f64::MAX;
        for _ in 0..iters {
            let start = Instant::now();
            stream_session(&mut writer, &mut reader, pred, &frames, *chunk, &mut next);
            best = best.min(start.elapsed().as_secs_f64());
        }
        report.push(BenchRun::new(*mode, frames.len() as u64, best));
    }
    println!("{}", report.to_json());
}
