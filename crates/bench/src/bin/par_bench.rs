//! Parallel-detection benchmark: the speedup-vs-threads curve of the
//! `hb-par` detectors on a wide (128-process) computation. Prints one
//! JSON object to stdout so CI can archive it (`BENCH_par.json`) and
//! trend it across commits.
//!
//! ```text
//! par_bench [--quick]
//! ```
//!
//! Three families over the same wide computation, each with a
//! sequential baseline and the parallel detector at 1/2/4/8 threads:
//!
//! - `ef` — offline `EF(conjunctive)`: `ef_linear` vs
//!   `ParDetector::ef_conjunctive` (parallel candidate scans + parallel
//!   popping fixpoint). `ef/seq` is the *lazy* sequential detector,
//!   which stops scanning at the verdict; `ef/eager-seq` runs the
//!   parallel algorithm's eager full-trace scan on one thread — the
//!   work-optimality reference the `ef/par-t*` rows should match. The
//!   lazy-vs-eager gap is an algorithmic price (a full scan is what
//!   fans out), not fan-out overhead.
//! - `ag` — offline `AG(linear)` on an always-true predicate (the full
//!   meet-irreducible sweep): `ag_linear` vs `ParDetector::ag_linear`
//!   (chunked parallel sweep)
//! - `online` — an in-process `Session` with 8 pending predicates fed
//!   the whole stream: `SessionLimits.parallel` 0 vs 1/2/4/8
//!   (micro-batched cross-monitor fan-out + parallel dead-front search
//!   inside each detector)
//!
//! Every parallel run carries `speedup` (its family's sequential
//! baseline secs ÷ its secs — for `ef`, the eager baseline) and
//! `threads`. The curve is honest about the host: `host_cpus` is
//! recorded in the metadata, and on a single-CPU container (as in CI)
//! the expected speedup is ~1.0 across the sweep — there, the number
//! the curve locks is the *overhead* of the parallel paths, which the
//! report-level flatness bounds. Byte-identical results at every
//! thread count are the equivalence battery's job, not this one's.

use hb_bench::report::{BenchReport, BenchRun};
use hb_computation::Computation;
use hb_detect::{ag_linear, ef_linear};
use hb_monitor::{Session, SessionLimits};
use hb_par::ParDetector;
use hb_predicates::{Conjunctive, LocalExpr};
use hb_sim::{random_computation, random_linearization, RandomSpec};
use hb_vclock::VectorClock;
use std::collections::BTreeMap;
use std::time::Instant;

const PROCESSES: usize = 128;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Medians shave scheduler noise without monitor_bench's best-of-n
/// optimism; the sweep interleaves rounds so drift spreads evenly.
fn median_secs(rounds: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..rounds).map(|_| f()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn ef_predicate(comp: &Computation) -> Conjunctive {
    let x = comp.vars().iter().next().expect("the x variable").0;
    Conjunctive::new((0..PROCESSES).map(|p| (p, LocalExpr::eq(x, 1))).collect())
}

/// The parallel EF algorithm on one thread with plain loops: an eager
/// full-trace candidate scan fed through the sequential online
/// detector. This is the work the `ef/par-t*` rows distribute.
fn ef_eager_seq_secs(comp: &Computation, p: &Conjunctive) -> f64 {
    use hb_detect::online::{OnlineEfConjunctive, OnlineMonitor};
    let n = comp.num_processes();
    let start = Instant::now();
    let participating: Vec<bool> = (0..n)
        .map(|i| p.clauses().iter().any(|c| c.process == i))
        .collect();
    let initially: Vec<bool> = (0..n).map(|i| p.clause_holds_at(comp, i, 0)).collect();
    let mut m = OnlineEfConjunctive::new(n, participating.clone(), initially);
    for (i, &part) in participating.iter().enumerate() {
        if !part {
            continue;
        }
        let mut seen = 0u32;
        for s in 1..=comp.num_events_of(i) as u32 {
            if p.clause_holds_at(comp, i, s) {
                if s - 1 > seen {
                    OnlineMonitor::skip_states(&mut m, i, u64::from(s - 1 - seen));
                }
                OnlineMonitor::observe(
                    &mut m,
                    i,
                    true,
                    comp.clock(hb_computation::EventId::new(i, s as usize - 1)),
                );
                seen = s;
            }
        }
    }
    for i in 0..n {
        OnlineMonitor::finish_process(&mut m, i);
    }
    std::hint::black_box(OnlineMonitor::verdict(&m));
    start.elapsed().as_secs_f64()
}

/// Always true, so the AG sweep visits every meet-irreducible cut —
/// the algorithm's worst case and the scan the parallel chunks target.
fn ag_predicate(comp: &Computation) -> Conjunctive {
    let x = comp.vars().iter().next().expect("the x variable").0;
    Conjunctive::new((0..PROCESSES).map(|p| (p, LocalExpr::ge(x, 0))).collect())
}

/// The in-process session leg: 8 never-settling conjunctive predicates
/// (value never taken), the whole stream delivered in causal order.
fn online_secs(
    comp: &Computation,
    feed: &[(usize, VectorClock, BTreeMap<String, i64>)],
    parallel: usize,
) -> f64 {
    let predicates: Vec<hb_tracefmt::wire::WirePredicate> = (0..8)
        .map(|k| hb_tracefmt::wire::WirePredicate {
            id: format!("p{k}"),
            mode: hb_tracefmt::wire::WireMode::Conjunctive,
            clauses: (0..PROCESSES)
                .map(|process| hb_tracefmt::wire::WireClause {
                    process,
                    var: "x".into(),
                    op: "=".into(),
                    value: -1 - k,
                })
                .collect(),
            pattern: None,
        })
        .collect();
    let mut session = Session::open(
        "par-bench",
        comp.num_processes(),
        &["x".to_string()],
        &[],
        &predicates,
        SessionLimits {
            parallel,
            ..SessionLimits::default()
        },
    )
    .expect("session opens");
    let start = Instant::now();
    for (p, clock, set) in feed {
        session
            .event(*p, clock.clone(), set)
            .expect("event accepted");
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(session.delivered());
    secs
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_process = if quick { 16 } else { 192 };
    let rounds = if quick { 3 } else { 5 };
    let comp = random_computation(RandomSpec {
        processes: PROCESSES,
        events_per_process: per_process,
        send_percent: 20,
        value_range: 8,
        seed: 11,
    });
    let events = comp.num_events() as u64;
    let x = comp.vars().iter().next().expect("the x variable").0;
    let feed: Vec<(usize, VectorClock, BTreeMap<String, i64>)> = random_linearization(&comp, 3)
        .iter()
        .map(|&e| {
            (
                e.process,
                comp.clock(e).clone(),
                [(
                    "x".to_string(),
                    comp.local_state(e.process, e.index as u32 + 1).get(x),
                )]
                .into_iter()
                .collect(),
            )
        })
        .collect();
    let ef_pred = ef_predicate(&comp);
    let ag_pred = ag_predicate(&comp);

    let mut report = BenchReport::new("par")
        .meta("processes", PROCESSES as u64)
        .meta("events", events)
        .meta(
            "host_cpus",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        );

    // Warm-up: touch every code path once.
    let _ = ef_linear(&comp, &ef_pred);
    let _ = ParDetector::new()
        .threads(2)
        .ef_conjunctive(&comp, &ef_pred);

    // Offline families: sequential baseline, then the thread sweep.
    let ef_seq = median_secs(rounds, || {
        let start = Instant::now();
        std::hint::black_box(ef_linear(&comp, &ef_pred));
        start.elapsed().as_secs_f64()
    });
    report.push(BenchRun::new("ef/seq", events, ef_seq));
    let ef_eager = median_secs(rounds, || ef_eager_seq_secs(&comp, &ef_pred));
    report.push(BenchRun::new("ef/eager-seq", events, ef_eager));
    for t in THREADS {
        let det = ParDetector::new().threads(t);
        let secs = median_secs(rounds, || {
            let start = Instant::now();
            std::hint::black_box(det.ef_conjunctive(&comp, &ef_pred));
            start.elapsed().as_secs_f64()
        });
        report.push(
            BenchRun::new(format!("ef/par-t{t}"), events, secs)
                .with("threads", t as f64)
                .with("speedup", ef_eager / secs),
        );
    }

    let ag_seq = median_secs(rounds, || {
        let start = Instant::now();
        std::hint::black_box(ag_linear(&comp, &ag_pred));
        start.elapsed().as_secs_f64()
    });
    report.push(BenchRun::new("ag/seq", events, ag_seq));
    for t in THREADS {
        let det = ParDetector::new().threads(t);
        let secs = median_secs(rounds, || {
            let start = Instant::now();
            std::hint::black_box(det.ag_linear(&comp, &ag_pred));
            start.elapsed().as_secs_f64()
        });
        report.push(
            BenchRun::new(format!("ag/par-t{t}"), events, secs)
                .with("threads", t as f64)
                .with("speedup", ag_seq / secs),
        );
    }

    // Online family: a full in-process session per run.
    let online_seq = median_secs(rounds, || online_secs(&comp, &feed, 0));
    report.push(BenchRun::new("online/seq", events, online_seq));
    for t in THREADS {
        let secs = median_secs(rounds, || online_secs(&comp, &feed, t));
        report.push(
            BenchRun::new(format!("online/par-t{t}"), events, secs)
                .with("threads", t as f64)
                .with("speedup", online_seq / secs),
        );
    }

    println!("{}", report.to_json());
}
