//! Predictive pattern-matcher benchmark: amortized per-event cost as
//! trace length grows 10×. Prints one JSON object to stdout so CI can
//! archive it (`BENCH_pattern.json`) and trend it across commits.
//!
//! ```text
//! pattern_bench [--quick]
//! ```
//!
//! The matcher's claim is amortized O(1) per event (for a fixed pattern
//! and process count): candidate lists are append-only, eligibility is
//! a binary search over a true suffix, and frontier inserts are
//! dominance-filtered antichains. The headline number is `flatness` —
//! the max/min ratio of ns/event across a 10× length sweep — which
//! should stay near 1.0 (CI accepts the cost being flat within ±20%).
//!
//! Output uses the shared `BENCH_*.json` record schema from
//! `hb_bench::report`.

use hb_bench::report::{BenchReport, BenchRun};
use hb_detect::online::OnlineMonitor;
use hb_pattern::PredictiveMatcher;
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use hb_vclock::VectorClock;
use std::time::Instant;

const PROCESSES: usize = 4;
/// Three linearized atoms over `x`; values are drawn from `0..32`, so
/// each atom matches ~3% of events — rare enough that chains stay
/// meaningful, common enough that the frontier machinery does work.
const ATOM_VALUES: [i64; 3] = [1, 2, 3];

struct Run {
    events: usize,
    secs: f64,
}

/// One timed sweep: `total` events through a fresh matcher, delivered
/// in a causality-respecting shuffle. The workload (computation, masks,
/// delivery order) is pre-resolved outside the timed region.
fn run(total: usize, seed: u64) -> Run {
    let comp = random_computation(RandomSpec {
        processes: PROCESSES,
        events_per_process: total / PROCESSES,
        send_percent: 20,
        value_range: 32,
        seed,
    });
    let x = comp.vars().iter().next().expect("the x variable").0;
    let feed: Vec<(usize, u64, VectorClock)> = causal_shuffle(&comp, seed ^ 0xfeed, 8)
        .into_iter()
        .map(|e| {
            let v = comp.local_state(e.process, e.index as u32 + 1).get(x);
            let mask = ATOM_VALUES
                .iter()
                .enumerate()
                .filter(|&(_, &value)| v == value)
                .fold(0u64, |m, (k, _)| m | 1 << k);
            (e.process, mask, comp.clock(e).clone())
        })
        .collect();

    let mut matcher = PredictiveMatcher::new(PROCESSES, vec![false; ATOM_VALUES.len()]);
    let start = Instant::now();
    for (p, mask, clock) in &feed {
        matcher.observe_atoms(*p, *mask, clock);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(matcher.verdict());
    Run {
        events: feed.len(),
        secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base: usize = if quick { 10_000 } else { 300_000 };
    // A 10× sweep in roughly-geometric steps.
    let lengths = [base, base * 3, base * 10];

    // Warm up allocator, caches, and CPU clocks so no length is
    // penalized by first-touch or ramp-up costs.
    let _ = run(base, 99);

    // Three interleaved rounds, median per length: interleaving spreads
    // thermal and frequency drift evenly across lengths instead of
    // letting it bias whichever one ran first.
    let mut samples: Vec<Vec<Run>> = lengths.iter().map(|_| Vec::new()).collect();
    for _ in 0..3 {
        for (i, &n) in lengths.iter().enumerate() {
            samples[i].push(run(n, 7));
        }
    }
    let mut report = BenchReport::new("pattern")
        .meta("processes", PROCESSES as u64)
        .meta("atoms", ATOM_VALUES.len() as u64);
    for mut s in samples {
        s.sort_by(|a, b| a.secs.total_cmp(&b.secs));
        let r = s.swap_remove(s.len() / 2);
        report.push(BenchRun::new(
            format!("n{}", r.events),
            r.events as u64,
            r.secs,
        ));
    }
    println!("{}", report.to_json());
}
