//! Slicing-filter benchmark: per-event cost and detector-work
//! reduction of the online slicer fronting a conjunctive monitor, on a
//! sparse-predicate workload. Prints one JSON object to stdout in the
//! shared `BENCH_*.json` schema so CI can archive it
//! (`BENCH_slice.json`) and trend it across commits.
//!
//! ```text
//! slice_bench [--quick]
//! ```
//!
//! The workload is the sparse-predicate scenario: values are drawn
//! from `0..32` and the predicate wants `x = 31` on every process but
//! one (and an impossible `x = -1` on that one, so it never settles no
//! matter the stream length), so only ~3% of events touch a true local
//! clause. The slicer admits
//! just those (plus the retreat bookkeeping), and the detector's
//! lattice work runs on the slice instead of the full computation —
//! `reduction_ratio` is events-in over events reaching the detector.
//!
//! Each sweep length runs a sliced and an unsliced `Session` over the
//! identical pre-built event stream (five interleaved rounds, median,
//! like `pattern_bench`), so `unsliced_ns_per_event` rides along for a
//! direct cost comparison. `flatness` (max/min ns-per-event across the
//! 10x sweep) near 1.0 confirms the filter stays O(1) per event.

use hb_bench::report::{BenchReport, BenchRun};
use hb_monitor::{Session, SessionLimits};
use hb_sim::{random_computation, random_linearization, RandomSpec};
use hb_tracefmt::wire::{WireClause, WireMode, WirePredicate};
use hb_vclock::VectorClock;
use std::collections::BTreeMap;
use std::time::Instant;

const PROCESSES: usize = 8;

/// `x = 31` on every process but the first, `x = -1` on process 0,
/// with values drawn from `0..32`: each live clause is true on ~3% of
/// events, and the p0 clause can never be true, so the monitor stays
/// pending over the whole stream no matter how long it runs (a cut
/// with all clauses true at once would otherwise show up eventually
/// on multi-hundred-thousand-event sweeps and settle the predicate).
fn sparse_predicate() -> WirePredicate {
    WirePredicate {
        id: "sparse".into(),
        mode: WireMode::Conjunctive,
        clauses: (0..PROCESSES)
            .map(|p| WireClause {
                process: p,
                var: "x".into(),
                op: "=".into(),
                value: if p == 0 { -1 } else { 31 },
            })
            .collect(),
        pattern: None,
    }
}

/// One pre-built causally consistent stream.
type Stream = Vec<(usize, Vec<u32>, BTreeMap<String, i64>)>;

fn build_stream(total_events: usize, seed: u64) -> Stream {
    let comp = random_computation(RandomSpec {
        processes: PROCESSES,
        events_per_process: total_events / PROCESSES,
        send_percent: 30,
        value_range: 32,
        seed,
    });
    let x = comp.vars().iter().next().expect("the x variable").0;
    random_linearization(&comp, seed ^ 0x5eed)
        .iter()
        .map(|&e| {
            (
                e.process,
                comp.clock(e).components().to_vec(),
                [(
                    "x".to_string(),
                    comp.local_state(e.process, e.index as u32 + 1).get(x),
                )]
                .into_iter()
                .collect(),
            )
        })
        .collect()
}

/// Streams every event through a fresh session and returns the wall
/// time plus the slicer's (events_in, events_filtered) totals — (0, 0)
/// for the unsliced leg.
fn run_leg(stream: &Stream, sliced: bool) -> (f64, u64, u64) {
    let limits = SessionLimits {
        slice: sliced,
        ..SessionLimits::default()
    };
    let mut session = Session::open(
        "slice-bench",
        PROCESSES,
        &["x".to_string()],
        &[],
        &[sparse_predicate()],
        limits,
    )
    .expect("open session");
    let start = Instant::now();
    for (p, clock, set) in stream {
        let verdicts = session
            .event(*p, VectorClock::from_components(clock.clone()), set)
            .expect("ingest event");
        assert!(verdicts.is_empty(), "sparse predicate settled early");
    }
    let secs = start.elapsed().as_secs_f64();
    let (mut events_in, mut events_filtered) = (0, 0);
    for (_, d_in, d_filtered) in session.take_slice_stats() {
        events_in += d_in;
        events_filtered += d_filtered;
    }
    (secs, events_in, events_filtered)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base = if quick { 8_000 } else { 200_000 };
    let lengths = [base, 3 * base, 10 * base];
    let rounds = 5;

    let streams: Vec<Stream> = lengths
        .iter()
        .enumerate()
        .map(|(i, &n)| build_stream(n, 11 + i as u64))
        .collect();

    // Warm-up, then interleaved rounds so drift hits every length and
    // both legs equally.
    let _ = run_leg(&streams[0], true);
    let mut sliced_secs = vec![Vec::new(); lengths.len()];
    let mut unsliced_secs = vec![Vec::new(); lengths.len()];
    let mut stats = vec![(0u64, 0u64); lengths.len()];
    for _ in 0..rounds {
        for (i, stream) in streams.iter().enumerate() {
            let (secs, events_in, events_filtered) = run_leg(stream, true);
            sliced_secs[i].push(secs);
            stats[i] = (events_in, events_filtered);
            let (secs, _, _) = run_leg(stream, false);
            unsliced_secs[i].push(secs);
        }
    }

    let mut report = BenchReport::new("slice").meta("processes", PROCESSES as u64);
    for (i, stream) in streams.iter().enumerate() {
        let (events_in, events_filtered) = stats[i];
        let kept = events_in.saturating_sub(events_filtered).max(1);
        let unsliced = median(unsliced_secs[i].clone());
        report.push(
            BenchRun::new(
                format!("n{}", stream.len()),
                stream.len() as u64,
                median(sliced_secs[i].clone()),
            )
            .with("reduction_ratio", events_in as f64 / kept as f64)
            .with(
                "unsliced_ns_per_event",
                unsliced * 1e9 / stream.len() as f64,
            ),
        );
    }
    println!("{}", report.to_json());
}
