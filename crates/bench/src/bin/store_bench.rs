//! WAL micro-benchmarks: append throughput per sync policy, and
//! recovery-scan speed. Prints one JSON object to stdout so CI can
//! archive the numbers as an artifact and trend them across commits.
//!
//! ```text
//! store_bench [--quick]
//! ```
//!
//! `--quick` shrinks the record counts for smoke runs. Results land on
//! whatever filesystem backs the system temp directory, so absolute
//! numbers are machine-dependent — the interesting signal is the ratio
//! between sync policies and regressions over time.

use hb_store::{Store, StoreOptions, SyncPolicy};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One appended record: a realistic wire-frame-sized JSON-ish payload.
const PAYLOAD: &[u8] =
    br#"{"type":"event","session":"bench","p":3,"clock":[41,7,19,88],"set":{"x":12345}}"#;

struct AppendRun {
    policy: &'static str,
    records: u64,
    secs: f64,
    fsyncs: u64,
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hb-store-bench")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_append(policy: SyncPolicy, tag: &'static str, records: u64) -> AppendRun {
    let dir = bench_dir(tag);
    let mut store = Store::open(
        &dir,
        StoreOptions {
            sync: policy,
            ..StoreOptions::default()
        },
    )
    .expect("open bench store");
    let start = Instant::now();
    for _ in 0..records {
        store.append(PAYLOAD).expect("append");
    }
    store.sync().expect("final sync");
    let secs = start.elapsed().as_secs_f64();
    let fsyncs = store.stats().fsyncs;
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    AppendRun {
        policy: tag,
        records,
        secs,
        fsyncs,
    }
}

/// Time `Store::open`'s full scan over a populated directory — the cost
/// a crashed monitor pays before it can listen again.
fn bench_recovery(records: u64) -> (u64, f64) {
    let dir = bench_dir("recovery");
    {
        let mut store = Store::open(
            &dir,
            StoreOptions {
                sync: SyncPolicy::Os,
                ..StoreOptions::default()
            },
        )
        .expect("open bench store");
        for _ in 0..records {
            store.append(PAYLOAD).expect("append");
        }
    }
    let start = Instant::now();
    let store = Store::open(&dir, StoreOptions::default()).expect("reopen scans");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(store.recovery_report().records, records);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (records, secs)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (bulk, fsynced) = if quick { (5_000, 50) } else { (100_000, 500) };

    let runs = [
        bench_append(SyncPolicy::Os, "os", bulk),
        bench_append(
            SyncPolicy::Interval(Duration::from_millis(5)),
            "interval_5ms",
            bulk,
        ),
        bench_append(SyncPolicy::Always, "always", fsynced),
    ];
    let (rec_records, rec_secs) = bench_recovery(bulk);

    // Flat JSON by hand: every value is a number or a fixed tag, so
    // there is nothing to escape.
    let mut out = String::from("{\"payload_bytes\":");
    let _ = write!(out, "{},\"append\":[", PAYLOAD.len());
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"policy\":\"{}\",\"records\":{},\"secs\":{:.6},\"records_per_sec\":{:.1},\"mib_per_sec\":{:.3},\"fsyncs\":{}}}",
            r.policy,
            r.records,
            r.secs,
            r.records as f64 / r.secs,
            r.records as f64 * PAYLOAD.len() as f64 / r.secs / (1024.0 * 1024.0),
            r.fsyncs,
        );
    }
    let _ = write!(
        out,
        "],\"recovery\":{{\"records\":{rec_records},\"secs\":{rec_secs:.6},\"records_per_sec\":{:.1}}}}}",
        rec_records as f64 / rec_secs,
    );
    println!("{out}");
}
