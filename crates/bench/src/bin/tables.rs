//! The experiment harness: regenerates every table and figure of the
//! paper as printed tables, recorded in `EXPERIMENTS.md`.
//!
//! ```text
//! tables [table1|fig1|fig2|fig3|fig4|s1|s2|s3|all]
//! ```

use hb_bench::figures::{fig2_computation, fig4_computation, fig4_scaled};
use hb_bench::{fmt_duration, time};
use hb_computation::Computation;
use hb_detect::stable::{af_stable, ef_stable};
use hb_detect::{
    af_conjunctive, af_disjunctive, ag_disjunctive, ag_linear, ef_disjunctive, ef_linear,
    ef_observer_independent, eg_conjunctive, eg_disjunctive, eg_linear, eu_conjunctive_linear,
    ModelChecker,
};
use hb_lattice::{meet_irreducibles_direct, CutLattice, DotStyle};
use hb_predicates::{
    AndLinear, ChannelsEmpty, Conjunctive, Disjunctive, LocalExpr, Predicate, Stable,
};
use hb_reduction::{dpll_sat, random_3cnf, sat_to_eg_gadget, tautology_to_ag_gadget};
use hb_sim::protocols::token_ring_mutex;
use hb_sim::{random_computation, RandomSpec};
use hb_slicer::eg_regular_via_slice;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "s1" => s1(),
        "s2" => s2(),
        "s3" => s3(),
        "all" => {
            table1();
            fig1();
            fig2();
            fig3();
            fig4();
            s1();
            s2();
            s3();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("usage: tables [table1|fig1|fig2|fig3|fig4|s1|s2|s3|all]");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// A mid-size workload where the exponential baseline still runs, plus a
/// large one where only the structural algorithms do.
fn workloads() -> (Computation, Computation) {
    let small = random_computation(RandomSpec {
        processes: 4,
        events_per_process: 5,
        send_percent: 30,
        value_range: 3,
        seed: 7,
    });
    let large = random_computation(RandomSpec {
        processes: 8,
        events_per_process: 2000,
        send_percent: 30,
        value_range: 3,
        seed: 7,
    });
    (small, large)
}

fn conj(comp: &Computation, lit: i64) -> Conjunctive {
    let x = comp.vars().lookup("x").expect("x");
    Conjunctive::new(
        (0..comp.num_processes())
            .map(|i| (i, LocalExpr::le(x, lit)))
            .collect(),
    )
}

fn disj(comp: &Computation, lit: i64) -> Disjunctive {
    let x = comp.vars().lookup("x").expect("x");
    Disjunctive::new(
        (0..comp.num_processes())
            .map(|i| (i, LocalExpr::eq(x, lit)))
            .collect(),
    )
}

/// Table 1: every predicate-class × operator cell, structural algorithm
/// vs explicit-lattice baseline (verdicts must agree; times shown).
fn table1() {
    header("Table 1: detection algorithm per predicate class and operator");
    let (small, large) = workloads();
    let mc = ModelChecker::new(&small);
    println!(
        "baseline lattice for the small workload: {} cuts (n={}, |E|={})",
        mc.num_states(),
        small.num_processes(),
        small.num_events()
    );
    println!(
        "large workload for structural-only timing: n={}, |E|={}",
        large.num_processes(),
        large.num_events()
    );
    println!(
        "{:<22} {:<4} {:<22} {:>7} {:>12} {:>12} {:>12}",
        "class", "op", "engine", "verdict", "t(structural)", "t(baseline)", "t(large)"
    );

    let row = |class: &str,
               op: &str,
               engine: &str,
               ours: (bool, std::time::Duration),
               base: (bool, std::time::Duration),
               large_t: std::time::Duration| {
        assert_eq!(ours.0, base.0, "{class}/{op} disagrees with baseline");
        println!(
            "{:<22} {:<4} {:<22} {:>7} {:>12} {:>12} {:>12}",
            class,
            op,
            engine,
            ours.0,
            fmt_duration(ours.1),
            fmt_duration(base.1),
            fmt_duration(large_t)
        );
    };

    // conjunctive row
    let p_s = conj(&small, 1);
    let p_l = conj(&large, 1);
    row(
        "conjunctive",
        "EF",
        "chase-garg [4]",
        time(|| ef_linear(&small, &p_s).holds),
        time(|| mc.ef(&p_s)),
        time(|| ef_linear(&large, &p_l).holds).1,
    );
    row(
        "conjunctive",
        "AF",
        "token-interval [11]",
        time(|| af_conjunctive(&small, &p_s).holds),
        time(|| mc.af(&p_s)),
        time(|| af_conjunctive(&large, &p_l).holds).1,
    );
    row(
        "conjunctive",
        "EG",
        "A1 (this paper)",
        time(|| eg_conjunctive(&small, &p_s).holds),
        time(|| mc.eg(&p_s)),
        time(|| eg_conjunctive(&large, &p_l).holds).1,
    );
    row(
        "conjunctive",
        "AG",
        "A2 (this paper)",
        time(|| ag_linear(&small, &p_s).holds),
        time(|| mc.ag(&p_s)),
        time(|| ag_linear(&large, &p_l).holds).1,
    );

    // disjunctive row
    let d_s = disj(&small, 2);
    let d_l = disj(&large, 2);
    row(
        "disjunctive",
        "EF",
        "state scan [11]",
        time(|| ef_disjunctive(&small, &d_s).holds),
        time(|| mc.ef(&d_s)),
        time(|| ef_disjunctive(&large, &d_l).holds).1,
    );
    row(
        "disjunctive",
        "AF",
        "¬EG(conj) via A1",
        time(|| af_disjunctive(&small, &d_s).holds),
        time(|| mc.af(&d_s)),
        time(|| af_disjunctive(&large, &d_l).holds).1,
    );
    row(
        "disjunctive",
        "EG",
        "token-interval [11]",
        time(|| eg_disjunctive(&small, &d_s).holds),
        time(|| mc.eg(&d_s)),
        time(|| eg_disjunctive(&large, &d_l).holds).1,
    );
    row(
        "disjunctive",
        "AG",
        "¬EF(conj) via [4]",
        time(|| ag_disjunctive(&small, &d_s).holds),
        time(|| mc.ag(&d_s)),
        time(|| ag_disjunctive(&large, &d_l).holds).1,
    );

    // stable row: "P0 has executed at least k events" is stable.
    let stable_s = Stable(hb_predicates::FnPredicate::new("progress", {
        let k = small.num_events_of(0) as u32;
        move |_: &Computation, g: &hb_computation::Cut| g.get(0) >= k
    }));
    let stable_l = Stable(hb_predicates::FnPredicate::new("progress", {
        let k = large.num_events_of(0) as u32;
        move |_: &Computation, g: &hb_computation::Cut| g.get(0) >= k
    }));
    row(
        "stable",
        "EF",
        "eval at E [2]",
        time(|| ef_stable(&small, &stable_s)),
        time(|| mc.ef(&stable_s)),
        time(|| ef_stable(&large, &stable_l)).1,
    );
    row(
        "stable",
        "AF",
        "eval at E [3]",
        time(|| af_stable(&small, &stable_s)),
        time(|| mc.af(&stable_s)),
        time(|| af_stable(&large, &stable_l)).1,
    );

    // linear (with channel conjunct) row
    let lin_s = AndLinear(conj(&small, 2), ChannelsEmpty);
    let lin_l = AndLinear(conj(&large, 2), ChannelsEmpty);
    row(
        "linear (channels)",
        "EF",
        "chase-garg [4]",
        time(|| ef_linear(&small, &lin_s).holds),
        time(|| mc.ef(&lin_s)),
        time(|| ef_linear(&large, &lin_l).holds).1,
    );
    row(
        "linear (channels)",
        "EG",
        "A1 (this paper)",
        time(|| eg_linear(&small, &lin_s).holds),
        time(|| mc.eg(&lin_s)),
        time(|| eg_linear(&large, &lin_l).holds).1,
    );
    row(
        "linear (channels)",
        "AG",
        "A2 (this paper)",
        time(|| ag_linear(&small, &lin_s).holds),
        time(|| mc.ag(&lin_s)),
        time(|| ag_linear(&large, &lin_l).holds).1,
    );

    // regular row (channels-empty alone) — includes the [9] comparator.
    row(
        "regular (channels)",
        "EG",
        "A1 improves [9]",
        time(|| eg_linear(&small, &ChannelsEmpty).holds),
        time(|| mc.eg(&ChannelsEmpty)),
        time(|| eg_linear(&large, &ChannelsEmpty).holds).1,
    );

    // observer-independent row: EF/AF by observation sampling; EG/AG are
    // NP-complete/co-NP-complete (fig3) — baseline only on small.
    row(
        "observer-independent",
        "EF",
        "sample one observation [3]",
        time(|| ef_observer_independent(&small, &d_s).holds),
        time(|| mc.ef(&d_s)),
        time(|| ef_observer_independent(&large, &d_l).holds).1,
    );
    let (eg_t, _) = time(|| mc.eg(&d_s));
    println!(
        "{:<22} {:<4} {:<22} {:>7} {:>12} {:>12} {:>12}",
        "observer-independent",
        "EG",
        "NP-complete (fig3)",
        eg_t,
        "-",
        fmt_duration(time(|| mc.eg(&d_s)).1),
        "-"
    );
}

/// Fig. 1 (Algorithms A1 and A2): behaviour and scaling on random and
/// token-ring traces.
fn fig1() {
    header("Fig. 1: Algorithms A1 (EG) and A2 (AG) on growing traces");
    println!(
        "{:>4} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "n", "|E|", "lattice", "A1 t", "A2 t", "baseline t"
    );
    for (n, events) in [
        (3usize, 4usize),
        (4, 5),
        (5, 5),
        (6, 6),
        (8, 200),
        (8, 2000),
    ] {
        let comp = random_computation(RandomSpec {
            processes: n,
            events_per_process: events,
            send_percent: 25,
            value_range: 3,
            seed: 21,
        });
        let p = conj(&comp, 1);
        let (_, a1_t) = time(|| eg_conjunctive(&comp, &p).holds);
        let (_, a2_t) = time(|| ag_linear(&comp, &p).holds);
        let baseline = ModelChecker::with_limit(&comp, 2_000_000).ok();
        let (lat_size, base_t) = match &baseline {
            Some(mc) => {
                let (_, t) = time(|| (mc.eg(&p), mc.ag(&p)));
                (mc.num_states().to_string(), fmt_duration(t))
            }
            None => ("> 2e6".to_string(), "(explodes)".to_string()),
        };
        println!(
            "{:>4} {:>9} {:>10} {:>12} {:>12} {:>12}",
            n,
            comp.num_events(),
            lat_size,
            fmt_duration(a1_t),
            fmt_duration(a2_t),
            base_t
        );
    }
}

/// Fig. 2: the example computation, its 12-cut lattice, and the
/// meet-irreducible elements (the filled circles of the figure).
fn fig2() {
    header("Fig. 2: computation (a) and its lattice (b)");
    let comp = fig2_computation();
    let lat = CutLattice::build(&comp);
    println!("computation: {}", comp.to_dot().lines().count());
    println!("consistent cuts: {}", lat.len());
    let mirr = lat.meet_irreducible_cuts();
    println!("meet-irreducible cuts (filled circles): {}", mirr.len());
    for c in &mirr {
        println!("  M: {c}");
    }
    let direct = meet_irreducibles_direct(&comp);
    assert_eq!(mirr, direct, "direct characterization must agree");
    println!("direct E−↑e characterization matches: true");
    let pc = lat.path_counts();
    println!(
        "maximal paths (observations): {} | widest rank: {}",
        pc.total_paths, pc.widest_rank
    );
    let style = DotStyle {
        filled: lat.meet_irreducible_nodes(),
        patterned: vec![],
    };
    println!(
        "DOT of the lattice: {} lines (see examples/fig2_lattice.rs to dump)",
        lat.to_dot(&style).lines().count()
    );
}

/// Fig. 3: the hardness gadgets — detection time on the gadget grows
/// exponentially with the number of SAT variables, while the verdict
/// tracks DPLL exactly.
fn fig3() {
    header("Fig. 3: SAT→EG and TAUT→AG gadgets (observer-independent)");
    println!(
        "{:>3} {:>9} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "m", "clauses", "lattice", "EG t", "AG t", "EG=SAT", "AG=TAUT"
    );
    for m in [2usize, 4, 6, 8, 10, 12] {
        let cnf = random_3cnf(m.max(3), 2 * m, m as u64);
        let expr = cnf.to_expr();
        let (comp_eg, pred_eg) = sat_to_eg_gadget(&expr, m.max(3));
        let (comp_ag, pred_ag) = tautology_to_ag_gadget(&expr, m.max(3));
        let mc_eg = ModelChecker::new(&comp_eg);
        let mc_ag = ModelChecker::new(&comp_ag);
        let (eg_verdict, eg_t) = time(|| mc_eg.eg(&pred_eg));
        let (ag_verdict, ag_t) = time(|| mc_ag.ag(&pred_ag));
        let sat = dpll_sat(&cnf).is_some();
        let taut = !dpll_negation_sat(&cnf);
        println!(
            "{:>3} {:>9} {:>10} {:>12} {:>12} {:>8} {:>8}",
            m.max(3),
            cnf.clauses.len(),
            mc_eg.num_states(),
            fmt_duration(eg_t),
            fmt_duration(ag_t),
            eg_verdict == sat,
            ag_verdict == taut,
        );
        assert_eq!(eg_verdict, sat);
        assert_eq!(ag_verdict, taut);
    }
}

/// SAT of the negation via brute force (tautology check); kept tiny.
fn dpll_negation_sat(cnf: &hb_reduction::Cnf) -> bool {
    let expr = cnf.to_expr();
    expr.not().brute_force_sat(cnf.num_vars).is_some()
}

/// Fig. 4: the until example — A3 vs the baseline EU.
fn fig4() {
    header("Fig. 4: E[p U q] — Algorithm A3 vs baseline");
    let f = fig4_computation();
    let r = eu_conjunctive_linear(&f.comp, &f.p(), &f.q());
    println!("p = {}", f.p().describe());
    println!("q = {}", f.q().describe());
    println!("E[p U q] = {}", r.holds);
    println!(
        "I_q = {} (paper: {{e1, f1, f2, g1}})",
        r.i_q.clone().unwrap()
    );
    let w = r.witness.unwrap();
    println!(
        "witness path: {}",
        w.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ▷ ")
    );
    println!();
    println!(
        "{:>7} {:>9} {:>10} {:>12} {:>12}",
        "rounds", "|E|", "lattice", "A3 t", "baseline t"
    );
    for rounds in [1usize, 4, 16, 64, 256, 1024] {
        let f = fig4_scaled(rounds);
        let (v, a3_t) = time(|| eu_conjunctive_linear(&f.comp, &f.p(), &f.q()).holds);
        assert!(v);
        let base = ModelChecker::with_limit(&f.comp, 500_000).ok();
        let (lat, base_t) = match &base {
            Some(mc) => {
                let (bv, t) = time(|| mc.eu(&f.p(), &f.q()));
                assert_eq!(bv, v);
                (mc.num_states().to_string(), fmt_duration(t))
            }
            None => ("> 5e5".to_string(), "(explodes)".to_string()),
        };
        println!(
            "{:>7} {:>9} {:>10} {:>12} {:>12}",
            rounds,
            f.comp.num_events(),
            lat,
            fmt_duration(a3_t),
            base_t
        );
    }
}

/// S1: the §5 complexity-improvement ablation — A1 with incremental
/// conjunctive checks vs naive re-evaluation vs the slice-based
/// `EG(regular)` of \[9\].
fn s1() {
    header("S1: A1 ablation — incremental vs naive vs slice-based [9]");
    println!(
        "{:>4} {:>9} {:>12} {:>12} {:>14}",
        "n", "|E|", "A1 incr", "A1 naive", "slice EG [9]"
    );
    for n in [2usize, 4, 8, 16, 32] {
        let t = token_ring_mutex(n.max(2), 6, 3);
        let sane = Conjunctive::new(
            (0..n.max(2))
                .map(|i| (i, LocalExpr::ge(t.try_var, 0)))
                .collect(),
        );
        let (v1, incr) = time(|| eg_conjunctive(&t.comp, &sane).holds);
        let (v2, naive) = time(|| eg_linear(&t.comp, &sane).holds);
        let (v3, slice) = time(|| eg_regular_via_slice(&t.comp, &sane).holds);
        assert!(v1 == v2 && v2 == v3);
        println!(
            "{:>4} {:>9} {:>12} {:>12} {:>14}",
            n.max(2),
            t.comp.num_events(),
            fmt_duration(incr),
            fmt_duration(naive),
            fmt_duration(slice)
        );
    }
}

/// S2: state explosion — lattice size and baseline cost vs the
/// structural algorithms as n grows.
fn s2() {
    header("S2: state explosion — structural EF vs lattice construction");
    println!(
        "{:>4} {:>7} {:>12} {:>14} {:>14} {:>16}",
        "n", "|E|", "lattice", "paths", "EF struct t", "EF baseline t"
    );
    for n in [2usize, 3, 4, 5, 6, 7] {
        let comp = random_computation(RandomSpec {
            processes: n,
            events_per_process: 4,
            send_percent: 20,
            value_range: 3,
            seed: 13,
        });
        let p = conj(&comp, 1);
        let (_, ef_t) = time(|| ef_linear(&comp, &p).holds);
        let baseline = ModelChecker::with_limit(&comp, 3_000_000).ok();
        let (lat, paths, base_t) = match &baseline {
            Some(mc) => {
                let pc = mc.lattice().path_counts();
                let (_, t) = time(|| mc.ef(&p));
                (
                    mc.num_states().to_string(),
                    pc.total_paths.to_string(),
                    fmt_duration(t),
                )
            }
            None => ("> 3e6".into(), "-".into(), "(explodes)".into()),
        };
        println!(
            "{:>4} {:>7} {:>12} {:>14} {:>14} {:>16}",
            n,
            comp.num_events(),
            lat,
            paths,
            fmt_duration(ef_t),
            base_t
        );
    }
}

/// S3: until scaling on the producer/consumer pipeline.
fn s3() {
    header("S3: E[p U q] (A3) and A[p U q] on producer/consumer pipelines");
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12}",
        "procs", "items", "|E|", "A3 EU t", "AU t"
    );
    for (n, items) in [(3usize, 8usize), (3, 64), (4, 256), (6, 1024), (8, 4096)] {
        let t = hb_sim::protocols::producer_consumer(n, items, 17);
        let nothing = Conjunctive::new(vec![(n - 1, LocalExpr::eq(t.consumed_var, 0))]);
        let produced = Conjunctive::new(vec![(0, LocalExpr::eq(t.produced_var, items as i64))]);
        let (v, eu_t) = time(|| eu_conjunctive_linear(&t.comp, &nothing, &produced).holds);
        assert!(v);
        let p = Disjunctive::new(vec![(n - 1, LocalExpr::ge(t.consumed_var, 0))]);
        let q = Disjunctive::new(vec![(n - 1, LocalExpr::eq(t.consumed_var, items as i64))]);
        let (av, au_t) = time(|| hb_detect::au_disjunctive(&t.comp, &p, &q).holds);
        assert!(av);
        println!(
            "{:>6} {:>7} {:>9} {:>12} {:>12}",
            n,
            items,
            t.comp.num_events(),
            fmt_duration(eu_t),
            fmt_duration(au_t)
        );
    }
}
