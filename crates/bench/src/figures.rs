//! Hand-encoded transcriptions of the paper's figures.

use hb_computation::{Computation, ComputationBuilder, VarId};
use hb_predicates::{AndLinear, ChannelsEmpty, Conjunctive, LocalExpr};

/// Fig. 2(a): two processes, three events each, one message `e2 → f2`.
/// Its lattice (Fig. 2b) has 12 consistent cuts, 6 of them
/// meet-irreducible.
pub fn fig2_computation() -> Computation {
    let mut b = ComputationBuilder::new(2);
    b.internal(0).label("e1").done();
    let m = b.send(0).label("e2").done_send();
    b.internal(0).label("e3").done();
    b.internal(1).label("f1").done();
    b.receive(1, m).label("f2").done();
    b.internal(1).label("f3").done();
    b.finish().expect("fig2 is well-formed")
}

/// The Fig. 4 example, reconstructed from the paper's text (see
/// DESIGN.md §5): three processes with variables `x` on `P0`, `z` on
/// `P2`; `P1` sends `m1` to `P2` (received by `g1`) and `m2` to `P0`
/// (received by `e1`, which sets `x = 2`); `e2` raises `x` to 4 and `g2`
/// raises `z` to 6. The least cut satisfying
/// `q = channels-empty ∧ x > 1` is `I_q = {f1, f2, g1, e1}`, matching
/// the paper.
pub struct Fig4 {
    /// The computation.
    pub comp: Computation,
    /// Variable `x` (process 0).
    pub x: VarId,
    /// Variable `z` (process 2).
    pub z: VarId,
}

impl Fig4 {
    /// `p = z@2 < 6 ∧ x@0 < 4` — conjunctive.
    pub fn p(&self) -> Conjunctive {
        Conjunctive::new(vec![
            (2, LocalExpr::lt(self.z, 6)),
            (0, LocalExpr::lt(self.x, 4)),
        ])
    }

    /// `q = channels-empty ∧ x@0 > 1` — linear.
    pub fn q(&self) -> AndLinear<Conjunctive, ChannelsEmpty> {
        AndLinear(
            Conjunctive::new(vec![(0, LocalExpr::gt(self.x, 1))]),
            ChannelsEmpty,
        )
    }
}

/// Builds the Fig. 4 computation.
pub fn fig4_computation() -> Fig4 {
    let mut b = ComputationBuilder::new(3);
    let x = b.var("x");
    let z = b.var("z");
    b.init(2, z, 3);
    let m1 = b.send(1).label("f1").done_send(); // P1 → P2
    let m2 = b.send(1).label("f2").done_send(); // P1 → P0
    b.receive(0, m2).set(x, 2).label("e1").done();
    b.internal(0).set(x, 4).label("e2").done();
    b.receive(2, m1).set(z, 5).label("g1").done();
    b.internal(2).set(z, 6).label("g2").done();
    Fig4 {
        comp: b.finish().expect("fig4 is well-formed"),
        x,
        z,
    }
}

/// A scaled Fig. 4 family for benchmarking: `rounds` copies of the
/// send/receive/raise block chained per process, preserving the shape
/// (conjunctive `p` stays true until late; `q`'s channel conjunct forces
/// receives).
pub fn fig4_scaled(rounds: usize) -> Fig4 {
    let mut b = ComputationBuilder::new(3);
    let x = b.var("x");
    let z = b.var("z");
    b.init(2, z, 3);
    for r in 0..rounds {
        let m1 = b.send(1).done_send();
        let m2 = b.send(1).done_send();
        b.receive(0, m2).set(x, 2).done();
        b.receive(2, m1).set(z, 5).done();
        if r + 1 == rounds {
            b.internal(0).set(x, 4).done();
            b.internal(2).set(z, 6).done();
        } else {
            b.internal(0).set(x, 0).done();
            b.internal(2).set(z, 4).done();
        }
    }
    Fig4 {
        comp: b.finish().expect("scaled fig4 is well-formed"),
        x,
        z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_detect::{eu_conjunctive_linear, ModelChecker};
    use hb_lattice::CutLattice;

    #[test]
    fn fig2_lattice_matches_paper() {
        let comp = fig2_computation();
        let lat = CutLattice::build(&comp);
        assert_eq!(lat.len(), 12);
        assert_eq!(lat.meet_irreducible_nodes().len(), 6);
        assert_eq!(lat.join_irreducible_nodes().len(), 6);
    }

    #[test]
    fn fig4_iq_matches_paper() {
        let f = fig4_computation();
        let r = eu_conjunctive_linear(&f.comp, &f.p(), &f.q());
        assert!(r.holds);
        // I_q = {f1, f2, g1, e1}: counters (1, 2, 1).
        assert_eq!(
            r.i_q.unwrap(),
            hb_computation::Cut::from_counters(vec![1, 2, 1])
        );
        // And the baseline agrees.
        assert!(ModelChecker::new(&f.comp).eu(&f.p(), &f.q()));
    }

    #[test]
    fn fig4_scaled_preserves_the_property() {
        for rounds in [1, 3, 6] {
            let f = fig4_scaled(rounds);
            let r = eu_conjunctive_linear(&f.comp, &f.p(), &f.q());
            assert!(r.holds, "rounds={rounds}");
        }
    }
}
