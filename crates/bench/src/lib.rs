//! Shared workloads and helpers for the benchmark harness.
//!
//! Both the Criterion benches (`benches/*.rs`) and the `tables` binary
//! (which prints the paper-style result tables recorded in
//! `EXPERIMENTS.md`) build their inputs here, so the two always measure
//! the same computations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod workloads;

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the wall-clock duration.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Formats a duration compactly for table cells.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}
