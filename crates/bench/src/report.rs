//! One JSON schema for every `BENCH_*.json` artifact.
//!
//! `monitor_bench`, `pattern_bench`, and `slice_bench` all emit the
//! same record shape through this module, so CI artifact diffing (and
//! any future dashboard) parses one format:
//!
//! ```json
//! {"group":"pattern","processes":8,
//!  "runs":[{"name":"n300000","events":300000,"secs":0.0421,
//!           "ns_per_event":140.3,"throughput":7126},...],
//!  "flatness":1.04}
//! ```
//!
//! Every run carries `name`, `ns_per_event`, and `throughput`; the
//! report carries `flatness` (max/min ns-per-event across runs — 1.0
//! is perfectly linear scaling). Bench-specific numbers such as
//! `reduction_ratio` ride along as extra per-run fields.

/// One measured run: a label, how many events it processed, and how
/// long it took. Derived rates are computed, never stored.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// The run's label, e.g. `n300000` or `batch64`.
    pub name: String,
    /// Events processed in the timed region.
    pub events: u64,
    /// Wall-clock seconds for the timed region.
    pub secs: f64,
    /// Bench-specific extra fields, serialized per run in order.
    pub extras: Vec<(&'static str, f64)>,
}

impl BenchRun {
    /// A run with no extra fields.
    pub fn new(name: impl Into<String>, events: u64, secs: f64) -> Self {
        BenchRun {
            name: name.into(),
            events,
            secs,
            extras: Vec::new(),
        }
    }

    /// Adds a bench-specific field to the run's JSON record.
    #[must_use]
    pub fn with(mut self, key: &'static str, value: f64) -> Self {
        self.extras.push((key, value));
        self
    }

    /// Nanoseconds of wall clock per event.
    pub fn ns_per_event(&self) -> f64 {
        self.secs * 1e9 / self.events.max(1) as f64
    }

    /// Events per second.
    pub fn throughput(&self) -> f64 {
        self.events as f64 / self.secs.max(f64::MIN_POSITIVE)
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":\"{}\",\"events\":{},\"secs\":{:.6},\
             \"ns_per_event\":{:.1},\"throughput\":{:.0}",
            self.name,
            self.events,
            self.secs,
            self.ns_per_event(),
            self.throughput(),
        );
        for (key, value) in &self.extras {
            out.push_str(&format!(",\"{key}\":{value:.3}"));
        }
        out.push('}');
        out
    }
}

/// A whole benchmark's output: workload constants, the runs, and the
/// flatness of ns-per-event across them.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The benchmark family, e.g. `pattern` or `monitor/wire`.
    pub group: String,
    /// Workload constants (process counts and the like), serialized
    /// top-level before `runs`.
    pub meta: Vec<(&'static str, u64)>,
    /// The measured runs, in sweep order.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// An empty report for `group`.
    pub fn new(group: impl Into<String>) -> Self {
        BenchReport {
            group: group.into(),
            meta: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Adds a top-level workload constant.
    #[must_use]
    pub fn meta(mut self, key: &'static str, value: u64) -> Self {
        self.meta.push((key, value));
        self
    }

    /// Appends a measured run.
    pub fn push(&mut self, run: BenchRun) {
        self.runs.push(run);
    }

    /// Max/min ns-per-event across the runs; 1.0 means the sweep
    /// scaled perfectly linearly. 1.0 for fewer than two runs.
    pub fn flatness(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for run in &self.runs {
            let ns = run.ns_per_event();
            min = min.min(ns);
            max = max.max(ns);
        }
        if self.runs.len() < 2 || min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }

    /// The full artifact as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"group\":\"{}\"", self.group);
        for (key, value) in &self.meta {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str(",\"runs\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&run.to_json());
        }
        out.push_str(&format!("],\"flatness\":{:.3}}}", self.flatness()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_derived_from_events_and_secs() {
        let run = BenchRun::new("n1000", 1_000, 0.001);
        assert!((run.ns_per_event() - 1_000.0).abs() < 1e-9);
        assert!((run.throughput() - 1_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn flatness_is_max_over_min_ns_per_event() {
        let mut report = BenchReport::new("test");
        report.push(BenchRun::new("a", 1_000, 0.001)); // 1000 ns/ev
        report.push(BenchRun::new("b", 1_000, 0.0012)); // 1200 ns/ev
        assert!((report.flatness() - 1.2).abs() < 1e-9);
        assert_eq!(BenchReport::new("empty").flatness(), 1.0);
    }

    #[test]
    fn json_carries_the_shared_record_shape() {
        let mut report = BenchReport::new("slice").meta("processes", 8);
        report.push(BenchRun::new("n100", 100, 0.0001).with("reduction_ratio", 6.5));
        let json = report.to_json();
        assert!(json.starts_with("{\"group\":\"slice\",\"processes\":8,\"runs\":["));
        assert!(json.contains("\"name\":\"n100\""));
        assert!(json.contains("\"ns_per_event\":1000.0"));
        assert!(json.contains("\"throughput\":1000000"));
        assert!(json.contains("\"reduction_ratio\":6.500"));
        assert!(json.ends_with("\"flatness\":1.000}"));
    }
}
