//! Canonical benchmark workloads, shared by the Criterion benches and
//! the `tables` binary so both measure identical inputs.

use hb_computation::Computation;
use hb_predicates::{Conjunctive, Disjunctive, LocalExpr};
use hb_sim::{random_computation, RandomSpec};

/// A random trace with `n` processes and `events` events per process
/// (fixed seed, 30% sends, values in `0..3`).
pub fn random(n: usize, events: usize) -> Computation {
    random_computation(RandomSpec {
        processes: n,
        events_per_process: events,
        send_percent: 30,
        value_range: 3,
        seed: 7,
    })
}

/// The all-processes conjunctive predicate `⋀_i x@i ≤ lit` on a random
/// trace (true often, but not always — exercises real walking).
pub fn conj_le(comp: &Computation, lit: i64) -> Conjunctive {
    let x = comp.vars().lookup("x").expect("workload declares x");
    Conjunctive::new(
        (0..comp.num_processes())
            .map(|i| (i, LocalExpr::le(x, lit)))
            .collect(),
    )
}

/// The all-processes disjunctive predicate `⋁_i x@i = lit`.
pub fn disj_eq(comp: &Computation, lit: i64) -> Disjunctive {
    let x = comp.vars().lookup("x").expect("workload declares x");
    Disjunctive::new(
        (0..comp.num_processes())
            .map(|i| (i, LocalExpr::eq(x, lit)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(random(3, 10), random(3, 10));
        let c = random(4, 6);
        assert_eq!(c.num_processes(), 4);
        assert!(c.num_events() >= 24);
    }

    #[test]
    fn predicates_build_for_any_width() {
        let c = random(5, 4);
        assert_eq!(conj_le(&c, 1).clauses().len(), 5);
        assert_eq!(disj_eq(&c, 2).clauses().len(), 5);
    }
}
