//! Command implementations shared by `main` and the tests.

use hb_computation::Computation;
use hb_lattice::CutLattice;
use std::fmt::Write as _;

/// Loads a trace, choosing the format from the file extension
/// (`.json` → JSON, anything else → the text format).
pub fn load_trace(path: &str) -> Result<Computation, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".json") {
        hb_tracefmt::from_json(&data).map_err(|e| e.to_string())
    } else {
        hb_tracefmt::from_text(&data).map_err(|e| e.to_string())
    }
}

/// Saves a trace, choosing the format from the file extension.
pub fn save_trace(comp: &Computation, path: &str) -> Result<(), String> {
    let data = if path.ends_with(".json") {
        hb_tracefmt::to_json(comp)
    } else {
        hb_tracefmt::to_text(comp)
    };
    std::fs::write(path, data).map_err(|e| format!("{path}: {e}"))
}

/// The `info` report: shape of the computation plus lattice statistics
/// when they are cheap enough to compute.
pub fn info(comp: &Computation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "processes: {}", comp.num_processes());
    let _ = writeln!(out, "events:    {}", comp.num_events());
    for i in 0..comp.num_processes() {
        let _ = writeln!(out, "  P{i}: {} events", comp.num_events_of(i));
    }
    let _ = writeln!(out, "messages:  {}", comp.messages().len());
    let vars: Vec<&str> = comp.vars().iter().map(|(_, n)| n).collect();
    let _ = writeln!(
        out,
        "variables: {}",
        if vars.is_empty() {
            "(none)".to_string()
        } else {
            vars.join(", ")
        }
    );
    match CutLattice::try_build(comp, 200_000) {
        Ok(lat) => {
            let pc = lat.path_counts();
            let _ = writeln!(out, "consistent cuts: {}", lat.len());
            let _ = writeln!(out, "observations (maximal paths): {}", pc.total_paths);
            let _ = writeln!(out, "widest rank: {}", pc.widest_rank);
        }
        Err(_) => {
            let _ = writeln!(
                out,
                "consistent cuts: > 200000 (state explosion — use the structural algorithms)"
            );
        }
    }
    out
}

/// Generates a small demo trace for the named protocol.
pub fn simulate(proto: &str) -> Result<Computation, String> {
    match proto {
        "mutex" => Ok(hb_sim::protocols::token_ring_mutex(4, 3, 1).comp),
        "leader" => Ok(hb_sim::protocols::leader_election(5, 1).comp),
        "termination" => Ok(hb_sim::protocols::diffusing_computation(4, 2, 12, 1).comp),
        "pipeline" => Ok(hb_sim::protocols::producer_consumer(3, 8, 1).comp),
        "ra-mutex" => Ok(hb_sim::protocols::ra_mutex(3, 1).comp),
        "barrier" => Ok(hb_sim::protocols::barrier(3, 2, 1).comp),
        "two-phase" => {
            Ok(hb_sim::protocols::two_phase_commit(4, &[true, true, false, true], 1).comp)
        }
        other => Err(format!(
            "unknown protocol '{other}' (try mutex|leader|termination|pipeline|ra-mutex|barrier|two-phase)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("hbtl-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn simulate_save_load_round_trip() {
        for proto in [
            "mutex",
            "leader",
            "termination",
            "pipeline",
            "ra-mutex",
            "barrier",
        ] {
            let comp = simulate(proto).unwrap();
            let json = tmp(&format!("{proto}.json"));
            save_trace(&comp, &json).unwrap();
            let back = load_trace(&json).unwrap();
            assert_eq!(back.num_events(), comp.num_events(), "{proto} json");

            let txt = tmp(&format!("{proto}.txt"));
            save_trace(&comp, &txt).unwrap();
            let back = load_trace(&txt).unwrap();
            // Message *ids* are renumbered by the exporter's topological
            // ordering; the send/receive pairings must survive as a set.
            let mut a = comp.messages().to_vec();
            let mut b = back.messages().to_vec();
            a.sort_by_key(|m| m.send);
            b.sort_by_key(|m| m.send);
            assert_eq!(a, b, "{proto} text");
        }
    }

    #[test]
    fn unknown_protocol_is_an_error() {
        assert!(simulate("raft").is_err());
    }

    #[test]
    fn info_reports_shape_and_lattice() {
        let comp = simulate("mutex").unwrap();
        let report = info(&comp);
        assert!(report.contains("processes: 4"));
        assert!(report.contains("consistent cuts:"));
        assert!(report.contains("crit"));
    }

    #[test]
    fn load_missing_file_is_an_error() {
        assert!(load_trace("/nonexistent/trace.json").is_err());
    }
}
