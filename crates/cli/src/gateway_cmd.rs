//! The `hbtl gateway` subcommand family: the multi-backend front door.
//!
//! ```text
//! hbtl gateway serve <addr> --backend <addr> [--backend <addr>]...
//!                    [--pool N] [--journal-limit N] [--stats-every SECS]
//! hbtl gateway drain <addr> <backend> [--retry N]
//! hbtl gateway stats <addr> [--json | --prometheus] [--retry N]
//! ```
//!
//! `serve` routes every session to one of the named `hb-monitor`
//! backends by rendezvous hashing, journals each session's frames, and
//! fails sessions over (with replay and verdict dedup) when a backend
//! dies. `drain` moves one backend to the removed state once its live
//! sessions close — the reply arrives only after removal, so scripts
//! can chain it with stopping the process. `stats` merges the gateway's
//! own counters with every reachable backend's. A gateway is stopped
//! like a monitor: `hbtl monitor shutdown <addr>` (the wire frame is
//! the same).

use crate::monitor_cmd::{
    connect_retry, fetch_stats, render_stats, take_flag, take_retry, take_switch,
};
use hb_gateway::{GatewayConfig, GatewayService};
use hb_tracefmt::wire::{read_frame, write_frame, ClientMsg, ServerMsg};
use std::io::{BufReader, BufWriter};
use std::net::TcpListener;
use std::time::Duration;

/// Dispatches `hbtl gateway <verb> …`.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("serve") => serve_cmd(&args[1..]),
        Some("drain") => drain_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        _ => Err("gateway needs serve|drain|stats".into()),
    }
}

fn serve_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let mut backends = Vec::new();
    while let Some(b) = take_flag(&mut rest, "--backend")? {
        backends.push(b);
    }
    let pool = take_flag(&mut rest, "--pool")?
        .map(|s| s.parse::<usize>().map_err(|_| "bad --pool".to_string()))
        .transpose()?;
    let journal_limit = take_flag(&mut rest, "--journal-limit")?
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "bad --journal-limit".to_string())
        })
        .transpose()?;
    let stats_every = take_flag(&mut rest, "--stats-every")?
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| "bad --stats-every".to_string())
        })
        .transpose()?;
    let [addr] = rest.as_slice() else {
        return Err("serve needs <addr> --backend <addr> [--backend <addr>]...".into());
    };
    let mut config = GatewayConfig {
        backends,
        stats_interval: stats_every.map(Duration::from_secs),
        ..GatewayConfig::default()
    };
    if let Some(pool) = pool {
        config.pool_size = pool;
    }
    if let Some(limit) = journal_limit {
        config.journal_limit = limit;
    }
    let n = config.backends.len();
    let listener = TcpListener::bind(addr.as_str()).map_err(|e| {
        if e.kind() == std::io::ErrorKind::AddrInUse {
            format!("bind {addr}: address already in use — is another gateway running there?")
        } else {
            format!("bind {addr}: {e}")
        }
    })?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let service = GatewayService::start(config)?;
    eprintln!("hb-gateway: listening on {local} ({n} backends)");
    service.serve(listener).map_err(|e| format!("serve: {e}"))?;
    let stats = service.shutdown();
    Ok(format!("hb-gateway: shut down\nfinal: {stats}\n"))
}

fn drain_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let retries = take_retry(&mut rest)?;
    let [addr, backend] = rest.as_slice() else {
        return Err("drain needs <gateway-addr> <backend-addr> [--retry N]".into());
    };
    let stream = connect_retry(addr, retries)?;
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut r = BufReader::new(stream);
    write_frame(
        &mut w,
        &ClientMsg::Drain {
            backend: backend.clone(),
        },
    )
    .map_err(|e| e.to_string())?;
    // The reply blocks until every session on the backend has closed.
    match read_frame::<_, ServerMsg>(&mut r).map_err(|e| e.to_string())? {
        Some(ServerMsg::Drained { backend, sessions }) => Ok(format!(
            "drained {backend}: waited out {sessions} session(s); backend removed\n"
        )),
        Some(ServerMsg::Error { message, .. }) => Err(format!("drain rejected: {message}")),
        other => Err(format!("unexpected drain reply: {other:?}")),
    }
}

fn stats_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let json = take_switch(&mut rest, "--json");
    let prometheus = take_switch(&mut rest, "--prometheus");
    let retries = take_retry(&mut rest)?;
    let [addr] = rest.as_slice() else {
        return Err("stats needs <addr> [--json | --prometheus] [--retry N]".into());
    };
    if json && prometheus {
        return Err("--json and --prometheus are mutually exclusive".into());
    }
    let counters = fetch_stats(addr, retries)?;
    render_stats(&counters, json, prometheus)
}
