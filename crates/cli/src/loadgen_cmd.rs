//! `hbtl loadgen` — a swarm load generator for the online-detection
//! service (monitor or gateway; both speak the same wire protocol).
//!
//! ```text
//! hbtl loadgen <addr> [--workers M] [--sessions N] [--processes P]
//!              [--events E] [--predicates K] [--window W] [--seed S]
//!              [--batch B] [--distribute K]
//!              [--scenario ordering-violation|sparse-predicate|wide-session]
//!              [--violation-rate PCT] [--json]
//! hbtl loadgen --compare [--workers M] ... [--json]
//! ```
//!
//! `--scenario sparse-predicate` draws values from `0..32` and monitors
//! `x = 31` on every process, so only ~3% of events touch a true local
//! clause — the workload the slicing ingest filter exists for. After
//! the run, loadgen fetches the server's stats and reports the
//! aggregate slice reduction (detector events cut); when the server
//! has slicing on, a reduction below 5x fails the run, so the scenario
//! doubles as an end-to-end check that the filter actually carries its
//! weight under load.
//!
//! `--scenario ordering-violation` switches the workload to two-process
//! sessions carrying a `unlock=1 -> lock=1` **pattern** predicate: each
//! session emits a lock on process 0 and an unlock on process 1, and
//! with probability `--violation-rate` percent (default 30) the unlock
//! is planted *concurrent* with the lock instead of causally after it —
//! a causally-reorderable inversion the delivered order never exhibits,
//! which the predictive detector must still flag. Loadgen knows each
//! session's ground truth and fails loudly on any wrong verdict, so the
//! scenario doubles as an end-to-end differential check under load.
//!
//! `--scenario wide-session` stresses detector *width* instead of
//! session count: each session spans many processes (default 16) that
//! never message each other, and in roughly half the sessions every
//! process plants one `hit = 1` event — pairwise concurrent, so a
//! consistent cut satisfying the conjunctive predicate `wide` exists
//! exactly in the planted sessions. Loadgen checks every verdict
//! against that ground truth. This is the shape distributed detection
//! partitions best, so it pairs naturally with `--distribute`.
//!
//! `--distribute K` opens every session with the SDK's distributed
//! role: a wire-v5 *gateway* fans the event stream out over `K` worker
//! backends (partitioned by process id) and aggregates their slice
//! observations into the same verdicts a single backend would emit. A
//! plain monitor, or any pre-v5 peer, refuses the open — loadgen fails
//! fast with the SDK's handshake error. Pattern predicates cannot be
//! distributed, so `--distribute` rejects `--scenario
//! ordering-violation`.
//!
//! M workers each drive N sessions over one pipelined connection:
//! every session is a seeded `hb-sim` random computation streamed as a
//! causality-respecting shuffle, monitored for K conjunctive predicates
//! that never hold (`x = -1` on every process) — the detector does full
//! work on every event and settles only at close. Reported: session and
//! event throughput plus open→closed latency percentiles, as text or
//! JSON (the shape `store_bench` uses, for CI artifact diffing).
//!
//! Sessions are driven through hb-sdk (`SessionBuilder`, `emit`,
//! `close_reclaim`), so loadgen exercises the exact client stack a real
//! instrumented program uses — the wire frames, batching, and ack
//! barriers all come from the SDK's flusher, not hand-rolled here.
//!
//! `--batch B` sets the SDK's flush-batch cap. The default of 1 keeps
//! every event in its own `event` frame; `--batch 64` lets the flusher
//! coalesce up to 64 events into one wire-v3 `events` frame, which is
//! the knob the batched-vs-unbatched CI comparison turns.
//!
//! `--compare` needs no running servers: it benchmarks a self-hosted
//! single monitor against a self-hosted gateway over two monitors with
//! the *same* workload, and reports the throughput ratio.

use crate::monitor_cmd::{fetch_stats, shutdown_server, state_map, take_flag, take_switch};
use hb_gateway::{GatewayConfig, GatewayService};
use hb_monitor::{MonitorConfig, MonitorService};
use hb_sdk::transport::TcpTransport;
use hb_sdk::{
    RetryPolicy, SessionBuilder, Transport, WireAtom, WireClause, WireMode, WirePattern,
    WirePredicate, WireVerdict,
};
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Which workload the generator plants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Random computations with never-holding conjunctive predicates.
    Impossible,
    /// Two-process lock/unlock sessions with a pattern predicate and a
    /// percentage of planted causally-reorderable inversions.
    OrderingViolation {
        /// Percent of sessions with a planted inversion.
        rate: u32,
    },
    /// Random computations over `0..32` with `x = 31` conjunctive
    /// predicates: ~3% of events touch a true local clause, so the
    /// slicing ingest filter should cut detector work ≥5x.
    SparsePredicate,
    /// One wide session per plan: many message-free processes, a
    /// conjunctive `hit = 1` predicate, and the hits planted (or one
    /// withheld) so every verdict has a known ground truth.
    WideSession,
}

/// The workload shape, fixed up front so repeated runs are identical.
#[derive(Debug, Clone)]
struct LoadSpec {
    workers: usize,
    sessions_per_worker: usize,
    processes: usize,
    events_per_process: usize,
    predicates: usize,
    window: usize,
    seed: u64,
    /// SDK flush-batch cap; 1 = one `event` frame per event.
    batch: usize,
    /// Worker partitions for distributed sessions; 0 = plain sessions.
    distribute: usize,
    scenario: Scenario,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            workers: 4,
            sessions_per_worker: 4,
            processes: 4,
            events_per_process: 32,
            predicates: 4,
            window: 8,
            seed: 1,
            batch: 1,
            distribute: 0,
            scenario: Scenario::Impossible,
        }
    }
}

/// One pre-generated session: name, shape, and the events to emit (in
/// emit order — the SDK stamps nothing; clocks are part of the plan).
struct SessionPlan {
    name: String,
    processes: usize,
    events: Vec<(usize, Vec<u32>, BTreeMap<String, i64>)>,
    /// Planted scenarios know their ground truth: `Some((id, true))` =
    /// predicate `id` must settle Detected, `Some((id, false))` =
    /// Impossible. `None` = no per-session expectation.
    expect: Option<(&'static str, bool)>,
}

/// Aggregate results of one load run.
struct LoadResult {
    sessions: usize,
    events: usize,
    batch: usize,
    wall: Duration,
    /// Open→closed per session, sorted ascending, in milliseconds.
    latencies_ms: Vec<f64>,
}

impl LoadResult {
    fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / self.wall.as_secs_f64()
    }

    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64()
    }

    fn percentile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies_ms.len() - 1) as f64 * q / 100.0).round() as usize;
        self.latencies_ms[idx]
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"events\":{},\"batch\":{},\"wall_secs\":{:.4},\
             \"sessions_per_sec\":{:.2},\"events_per_sec\":{:.1},\
             \"latency_ms\":{{\"p50\":{:.2},\"p90\":{:.2},\"p99\":{:.2},\"max\":{:.2}}}}}",
            self.sessions,
            self.events,
            self.batch,
            self.wall.as_secs_f64(),
            self.sessions_per_sec(),
            self.events_per_sec(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.percentile(100.0),
        )
    }

    fn to_text(&self, label: &str) -> String {
        format!(
            "{label}: {} sessions, {} events in {:.3}s → {:.1} sessions/s, {:.0} events/s\n\
             {label}: open→closed latency p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms\n",
            self.sessions,
            self.events,
            self.wall.as_secs_f64(),
            self.sessions_per_sec(),
            self.events_per_sec(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.percentile(100.0),
        )
    }
}

/// Aggregate slice reduction from a server's stats counters: total
/// events entering the slicing filters over total reaching the
/// detectors. `None` when no slice counters exist (slicing off, or a
/// server predating the filter).
fn slice_reduction(counters: &BTreeMap<String, u64>) -> Option<f64> {
    let (mut events_in, mut filtered) = (0u64, 0u64);
    for (key, &v) in counters {
        if let Some(rest) = key.strip_prefix("slice.") {
            if rest.ends_with(".events_in") {
                events_in += v;
            } else if rest.ends_with(".events_filtered") {
                filtered += v;
            }
        }
    }
    (events_in > 0).then(|| events_in as f64 / events_in.saturating_sub(filtered).max(1) as f64)
}

/// Fetches the server's stats and enforces the sparse-predicate
/// scenario's promise: slicing, when the server has it on, must cut
/// detector work at least 5x. `None` = the server isn't slicing.
fn check_slice_reduction(addr: &str) -> Result<Option<f64>, String> {
    let counters = fetch_stats(addr, 0)?;
    let Some(ratio) = slice_reduction(&counters) else {
        return Ok(None);
    };
    if ratio < 5.0 {
        return Err(format!(
            "sparse-predicate: slice reduction {ratio:.2}x is below the 5x floor"
        ));
    }
    Ok(Some(ratio))
}

/// The per-session seed: the run seed mixed with the session index.
fn session_seed(spec: &LoadSpec, w: usize, s: usize) -> u64 {
    spec.seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((w * spec.sessions_per_worker + s) as u64)
}

/// Deterministically builds every worker's session plans.
fn build_plans(spec: &LoadSpec) -> Vec<Vec<SessionPlan>> {
    (0..spec.workers)
        .map(|w| {
            (0..spec.sessions_per_worker)
                .map(|s| {
                    let seed = session_seed(spec, w, s);
                    let name = format!("lg-{w}-{s}");
                    match spec.scenario {
                        Scenario::Impossible => random_plan(spec, seed, name, 4),
                        Scenario::SparsePredicate => random_plan(spec, seed, name, 32),
                        Scenario::OrderingViolation { rate } => {
                            ordering_violation_plan(spec, seed, rate, name)
                        }
                        Scenario::WideSession => wide_session_plan(spec, seed, name),
                    }
                })
                .collect()
        })
        .collect()
}

/// The default workload: a seeded random computation streamed as a
/// causality-respecting shuffle of full-state events. `value_range`
/// sets how sparse any given value is — 4 for the impossible-predicate
/// scenario, 32 for the sparse-predicate one.
fn random_plan(spec: &LoadSpec, seed: u64, name: String, value_range: i64) -> SessionPlan {
    let comp = random_computation(RandomSpec {
        processes: spec.processes,
        events_per_process: spec.events_per_process,
        send_percent: 30,
        value_range,
        seed,
    });
    let order = causal_shuffle(&comp, seed ^ 0xdead_beef, spec.window);
    SessionPlan {
        name,
        processes: spec.processes,
        events: order
            .into_iter()
            .map(|e| {
                (
                    e.process,
                    comp.clock(e).components().to_vec(),
                    state_map(&comp, e),
                )
            })
            .collect(),
        expect: None,
    }
}

/// The ordering-violation workload: process 0 emits `lock=1` as its
/// first event, process 1 emits `unlock=1` as its first — causally
/// *after* the lock in a clean session, *concurrent* with it in a
/// planted one. Everything else is filler that matches no atom. The
/// emit order always shows the lock first, so in a planted session the
/// inversion exists only in the causal reordering, never in the
/// delivered interleaving.
fn ordering_violation_plan(spec: &LoadSpec, seed: u64, rate: u32, name: String) -> SessionPlan {
    let planted = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) % 100 < u64::from(rate);
    let e = spec.events_per_process.max(1);
    let mut events = Vec::with_capacity(2 * e);
    let set = |pairs: &[(&str, i64)]| -> BTreeMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    };
    // Process 0: lock first, then filler.
    for k in 1..=e {
        let payload = if k == 1 {
            set(&[("lock", 1)])
        } else {
            set(&[("x", k as i64)])
        };
        events.push((0, vec![k as u32, 0], payload));
    }
    // Process 1: unlock first (receiving the lock unless planted), then
    // filler along the same line.
    let cross = u32::from(!planted);
    for k in 1..=e {
        let payload = if k == 1 {
            set(&[("unlock", 1)])
        } else {
            set(&[("x", k as i64)])
        };
        events.push((1, vec![cross, k as u32], payload));
    }
    SessionPlan {
        name,
        processes: 2,
        events,
        expect: Some(("inv", planted)),
    }
}

/// The wide-session workload: one session spanning every process (so
/// vector clocks are `--processes` wide), built to stress detector
/// width rather than session count. The processes never message each
/// other; each emits filler, and its final event carries `hit = 1` —
/// except that an unplanted session withholds the hit on the last
/// process. The hits are pairwise concurrent, so a consistent cut
/// satisfying the conjunctive predicate `wide` exists exactly when the
/// session is planted (roughly half are, by seed). Events are emitted
/// round-robin across processes so a distributed gateway exercises
/// every worker partition throughout the stream.
fn wide_session_plan(spec: &LoadSpec, seed: u64, name: String) -> SessionPlan {
    let planted = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) % 100 < 50;
    let procs = spec.processes.max(2);
    let e = spec.events_per_process.max(1);
    let mut events = Vec::with_capacity(procs * e);
    for k in 1..=e {
        for p in 0..procs {
            let mut clock = vec![0u32; procs];
            clock[p] = k as u32;
            let payload: BTreeMap<String, i64> = if k == e && (planted || p + 1 < procs) {
                [("hit".to_string(), 1)].into_iter().collect()
            } else {
                [("x".to_string(), k as i64)].into_iter().collect()
            };
            events.push((p, clock, payload));
        }
    }
    SessionPlan {
        name,
        processes: procs,
        events,
        expect: Some(("wide", planted)),
    }
}

/// `K` conjunctive predicates wanting `x = value` on every process.
fn conjunctive_predicates(spec: &LoadSpec, value: i64) -> Vec<WirePredicate> {
    (0..spec.predicates)
        .map(|k| WirePredicate {
            id: format!("p{k}"),
            mode: WireMode::Conjunctive,
            clauses: (0..spec.processes)
                .map(|p| WireClause {
                    process: p,
                    var: "x".into(),
                    op: "=".into(),
                    value,
                })
                .collect(),
            pattern: None,
        })
        .collect()
}

/// The scenario's predicate set, shared by every session.
fn scenario_predicates(spec: &LoadSpec) -> Vec<WirePredicate> {
    match spec.scenario {
        // Predicates that never settle early: `x = -1` on every process
        // while values are drawn from `0..range` — the detector does
        // full work on every event and settles only at close.
        Scenario::Impossible => conjunctive_predicates(spec, -1),
        // Sparse but reachable: `x = 31` with values drawn from `0..32`
        // — each local clause holds on ~3% of events, so the slicing
        // filter admits a trickle and the detector works on the slice.
        Scenario::SparsePredicate => conjunctive_predicates(spec, 31),
        // One conjunctive predicate wanting `hit = 1` everywhere — the
        // planted cut in half the sessions, unreachable in the rest.
        Scenario::WideSession => vec![WirePredicate {
            id: "wide".into(),
            mode: WireMode::Conjunctive,
            clauses: (0..spec.processes.max(2))
                .map(|p| WireClause {
                    process: p,
                    var: "hit".into(),
                    op: "=".into(),
                    value: 1,
                })
                .collect(),
            pattern: None,
        }],
        // One pattern predicate: an unlock linearizable before a lock.
        Scenario::OrderingViolation { .. } => vec![WirePredicate {
            id: "inv".into(),
            mode: WireMode::Pattern,
            clauses: Vec::new(),
            pattern: Some(WirePattern {
                atoms: vec![
                    WireAtom {
                        process: None,
                        var: "unlock".into(),
                        op: "=".into(),
                        value: 1,
                        causal: false,
                    },
                    WireAtom {
                        process: None,
                        var: "lock".into(),
                        op: "=".into(),
                        value: 1,
                        causal: false,
                    },
                ],
            }),
        }],
    }
}

/// The variables a scenario's sessions declare.
fn scenario_vars(spec: &LoadSpec) -> &'static [&'static str] {
    match spec.scenario {
        Scenario::Impossible | Scenario::SparsePredicate => &["x"],
        Scenario::OrderingViolation { .. } => &["x", "unlock", "lock"],
        Scenario::WideSession => &["x", "hit"],
    }
}

/// Drives every worker against `addr` and merges their measurements.
fn run_load(addr: &str, plans: &[Vec<SessionPlan>], spec: &LoadSpec) -> Result<LoadResult, String> {
    let predicates = scenario_predicates(spec);
    let vars = scenario_vars(spec);
    let started = Instant::now();
    let results: Vec<Result<Vec<f64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|sessions| {
                let predicates = predicates.clone();
                scope.spawn(move || drive_worker(addr, sessions, &predicates, vars, spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let wall = started.elapsed();
    let mut latencies_ms = Vec::new();
    for r in results {
        latencies_ms.extend(r?);
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Ok(LoadResult {
        sessions: plans.iter().map(Vec::len).sum(),
        events: plans.iter().flatten().map(|p| p.events.len()).sum(),
        batch: spec.batch,
        wall,
        latencies_ms,
    })
}

/// One worker: a single handshaken connection, sessions driven
/// back-to-back through the SDK (`close_reclaim` hands the transport
/// from one session to the next, so frames stay pipelined on one
/// socket exactly as before).
fn drive_worker(
    addr: &str,
    sessions: &[SessionPlan],
    predicates: &[WirePredicate],
    vars: &[&str],
    spec: &LoadSpec,
) -> Result<Vec<f64>, String> {
    let mut transport: Box<dyn Transport> = Box::new(
        TcpTransport::dial(addr, RetryPolicy::with_retries(3)).map_err(|e| e.to_string())?,
    );
    let mut latencies = Vec::with_capacity(sessions.len());
    for plan in sessions {
        let t0 = Instant::now();
        let mut builder = SessionBuilder::new(&plan.name, plan.processes)
            .batch_max(spec.batch)
            .distributed(spec.distribute);
        for v in vars {
            builder = builder.var(v);
        }
        for p in predicates {
            builder = builder.predicate(p.clone());
        }
        let (session, _tracers) = builder.open(transport).map_err(|e| e.to_string())?;
        for (process, clock, payload) in &plan.events {
            let accepted = session.emit(*process, clock.clone(), payload.clone());
            if !accepted {
                return Err(format!("{}: event dropped by the SDK queue", plan.name));
            }
        }
        let (report, reclaimed) = session.close_reclaim().map_err(|e| e.to_string())?;
        transport = reclaimed;
        if let Some(message) = report.errors.first() {
            return Err(format!("server error on {}: {message}", plan.name));
        }
        if report.verdicts.len() != predicates.len() {
            return Err(format!(
                "{}: expected {} verdicts, saw {}",
                plan.name,
                predicates.len(),
                report.verdicts.len()
            ));
        }
        // Planted scenarios know each session's ground truth: a wrong
        // verdict is a detector bug, not a load artifact — fail loudly.
        if let Some((id, expect)) = plan.expect {
            let got = matches!(report.verdicts.get(id), Some(WireVerdict::Detected(_)));
            if got != expect {
                return Err(format!(
                    "{}: verdict mismatch on '{id}' — expected detected={expect}, got {:?}",
                    plan.name,
                    report.verdicts.get(id)
                ));
            }
        }
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    Ok(latencies)
}

// ---- self-hosted servers for --compare ------------------------------------

struct HostedMonitor {
    addr: String,
    service: MonitorService,
    thread: std::thread::JoinHandle<()>,
}

fn host_monitor() -> Result<HostedMonitor, String> {
    let service = MonitorService::start(MonitorConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    let handle = service.handle();
    let thread = std::thread::spawn(move || {
        let _ = hb_monitor::serve(listener, handle);
    });
    Ok(HostedMonitor {
        addr,
        service,
        thread,
    })
}

impl HostedMonitor {
    fn stop(self) -> Result<(), String> {
        shutdown_server(&self.addr, 0)?;
        self.thread.join().map_err(|_| "monitor serve panicked")?;
        self.service.shutdown();
        Ok(())
    }
}

fn compare_cmd(spec: &LoadSpec, json: bool) -> Result<String, String> {
    let plans = build_plans(spec);

    // Leg 1: every worker against one monitor, directly. The hosted
    // monitor slices by default, so the sparse scenario's reduction
    // floor is checked here before the server goes away.
    let (single_result, reduction) = {
        let m = host_monitor()?;
        let r = run_load(&m.addr, &plans, spec)?;
        let reduction = if spec.scenario == Scenario::SparsePredicate {
            check_slice_reduction(&m.addr)?
        } else {
            None
        };
        m.stop()?;
        (r, reduction)
    };

    // Leg 2: the same workload through a gateway over two monitors.
    let gateway_result = {
        let a = host_monitor()?;
        let b = host_monitor()?;
        let gw = std::sync::Arc::new(GatewayService::start(GatewayConfig {
            backends: vec![a.addr.clone(), b.addr.clone()],
            ..GatewayConfig::default()
        })?);
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
        let gw_addr = listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .to_string();
        let gw_thread = {
            let gw = std::sync::Arc::clone(&gw);
            std::thread::spawn(move || {
                let _ = gw.serve(listener);
            })
        };
        let r = run_load(&gw_addr, &plans, spec)?;
        shutdown_server(&gw_addr, 0)?;
        gw_thread.join().map_err(|_| "gateway serve panicked")?;
        // Tear the gateway down *before* stopping the backends: its pool
        // connections must close or the monitors' accept loops would
        // block joining the connection threads that serve them.
        let gw = std::sync::Arc::try_unwrap(gw).map_err(|_| "gateway still referenced")?;
        let _ = gw.shutdown();
        a.stop()?;
        b.stop()?;
        r
    };

    let speedup = gateway_result.sessions_per_sec() / single_result.sessions_per_sec();
    if json {
        let slice = reduction
            .map(|r| format!(",\"slice_reduction\":{r:.2}"))
            .unwrap_or_default();
        Ok(format!(
            "{{\"workers\":{},\"single\":{},\"gateway\":{},\"speedup\":{speedup:.3}{slice}}}\n",
            spec.workers,
            single_result.to_json(),
            gateway_result.to_json(),
        ))
    } else {
        let mut out = String::new();
        out.push_str(&single_result.to_text("single-monitor"));
        out.push_str(&gateway_result.to_text("gateway+2-backends"));
        let _ = writeln!(out, "speedup: {speedup:.2}x (gateway vs single)");
        if let Some(r) = reduction {
            let _ = writeln!(out, "slice reduction: {r:.1}x (detector events cut)");
        }
        Ok(out)
    }
}

/// Dispatches `hbtl loadgen …`.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let compare = take_switch(&mut rest, "--compare");
    let json = take_switch(&mut rest, "--json");
    let mut spec = LoadSpec::default();
    if let Some(v) = take_flag(&mut rest, "--workers")? {
        spec.workers = v.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(v) = take_flag(&mut rest, "--sessions")? {
        spec.sessions_per_worker = v.parse().map_err(|_| "bad --sessions")?;
    }
    let processes_flag = take_flag(&mut rest, "--processes")?;
    if let Some(v) = &processes_flag {
        spec.processes = v.parse().map_err(|_| "bad --processes")?;
    }
    if let Some(v) = take_flag(&mut rest, "--events")? {
        spec.events_per_process = v.parse().map_err(|_| "bad --events")?;
    }
    if let Some(v) = take_flag(&mut rest, "--predicates")? {
        spec.predicates = v.parse().map_err(|_| "bad --predicates")?;
    }
    if let Some(v) = take_flag(&mut rest, "--window")? {
        spec.window = v.parse().map_err(|_| "bad --window")?;
    }
    if let Some(v) = take_flag(&mut rest, "--seed")? {
        spec.seed = v.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(v) = take_flag(&mut rest, "--batch")? {
        spec.batch = v.parse().map_err(|_| "bad --batch")?;
    }
    if let Some(v) = take_flag(&mut rest, "--distribute")? {
        spec.distribute = v.parse().map_err(|_| "bad --distribute")?;
    }
    let scenario = take_flag(&mut rest, "--scenario")?;
    let rate = take_flag(&mut rest, "--violation-rate")?;
    match scenario.as_deref() {
        None => {
            if rate.is_some() {
                return Err("--violation-rate needs --scenario ordering-violation".into());
            }
        }
        Some("ordering-violation") => {
            let rate = match rate {
                Some(v) => {
                    let pct: u32 = v.parse().map_err(|_| "bad --violation-rate")?;
                    if pct > 100 {
                        return Err("--violation-rate is a percent (0..=100)".into());
                    }
                    pct
                }
                None => 30,
            };
            spec.scenario = Scenario::OrderingViolation { rate };
        }
        Some("sparse-predicate") => {
            if rate.is_some() {
                return Err("--violation-rate needs --scenario ordering-violation".into());
            }
            spec.scenario = Scenario::SparsePredicate;
        }
        Some("wide-session") => {
            if rate.is_some() {
                return Err("--violation-rate needs --scenario ordering-violation".into());
            }
            spec.scenario = Scenario::WideSession;
            // Width is the point: without an explicit --processes, go
            // wide rather than inheriting the narrow default.
            if processes_flag.is_none() {
                spec.processes = 16;
            }
        }
        Some(other) => {
            return Err(format!(
                "unknown --scenario '{other}' (expected: ordering-violation, \
                 sparse-predicate, wide-session)"
            ));
        }
    }
    if spec.distribute > 0 && matches!(spec.scenario, Scenario::OrderingViolation { .. }) {
        return Err("--distribute supports conjunctive predicates only; \
                    --scenario ordering-violation uses a pattern predicate"
            .into());
    }
    if spec.workers == 0 || spec.sessions_per_worker == 0 || spec.predicates == 0 {
        return Err("--workers, --sessions, and --predicates must be at least 1".into());
    }
    if spec.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if compare {
        let [] = rest.as_slice() else {
            return Err("--compare hosts its own servers; no <addr> expected".into());
        };
        if spec.distribute > 0 {
            return Err(
                "--compare's single-monitor leg cannot serve distributed sessions; \
                 point --distribute at a gateway instead"
                    .into(),
            );
        }
        return compare_cmd(&spec, json);
    }
    let [addr] = rest.as_slice() else {
        return Err("loadgen needs <addr> (or --compare)".into());
    };
    let plans = build_plans(&spec);
    let result = run_load(addr, &plans, &spec)?;
    let reduction = if spec.scenario == Scenario::SparsePredicate {
        check_slice_reduction(addr)?
    } else {
        None
    };
    if json {
        Ok(match reduction {
            Some(r) => format!(
                "{{\"load\":{},\"slice_reduction\":{r:.2}}}\n",
                result.to_json()
            ),
            None => format!("{}\n", result.to_json()),
        })
    } else {
        let mut out = result.to_text("loadgen");
        match (spec.scenario, reduction) {
            (_, Some(r)) => {
                let _ = writeln!(out, "slice reduction: {r:.1}x (detector events cut)");
            }
            (Scenario::SparsePredicate, None) => {
                let _ = writeln!(out, "slice reduction: n/a (server has slicing off)");
            }
            _ => {}
        }
        Ok(out)
    }
}
