//! `hbtl` — the trace-debugging command line.
//!
//! The paper's conclusion announces "a debugging environment for the
//! happened-before model making use of the algorithms presented here";
//! this binary is that environment: load a recorded trace, ask CTL
//! questions, inspect witnesses, dump diagrams.
//!
//! ```text
//! hbtl check <trace> "<formula>" [--nested]
//!                                    evaluate a CTL formula (prints
//!                                    verdict, engine, and evidence);
//!                                    --nested allows nested temporal
//!                                    operators via the baseline
//! hbtl info <trace>                  processes/events/messages/variables
//!                                    and lattice statistics (capped)
//! hbtl dot <trace>                   Graphviz of the computation
//! hbtl lattice <trace> [limit] [--highlight "<state formula>"]
//!                                    Graphviz of the cut lattice
//!                                    (meet-irreducibles filled; cuts
//!                                    satisfying the formula patterned)
//! hbtl convert <in> <out>            convert between .json and .txt
//! hbtl simulate <proto> <out.json>   generate a demo trace
//!                                    (proto: mutex|leader|termination|pipeline)
//! hbtl monitor serve <addr>          run the online-detection service
//!                                    (--data-dir makes it durable:
//!                                    WAL + snapshots + crash recovery)
//! hbtl monitor send <addr> <trace>   replay a trace into a session
//!                                    (causality-respecting shuffle;
//!                                    --pattern registers a predictive
//!                                    pattern predicate)
//! hbtl monitor stats <addr>          query service counters
//!                                    (--json | --prometheus)
//! hbtl monitor shutdown <addr>       stop a running service
//! hbtl slice inspect <trace>         offline slice w.r.t. a conjunctive
//!                                    predicate: Birkhoff cuts I_p/F_p,
//!                                    slice size vs the cut-lattice
//!                                    bound (--conj "p:var=v,..."; --json)
//! hbtl gateway serve <addr>          front a fleet of monitors: route
//!                                    sessions by rendezvous hash, fail
//!                                    over with journal replay when a
//!                                    backend dies (--backend ADDR ...)
//! hbtl gateway drain <addr> <b>      retire one backend gracefully
//! hbtl gateway stats <addr>          gateway + summed backend counters
//!                                    (--json | --prometheus)
//! hbtl loadgen <addr>                swarm load generator; --compare
//!                                    benchmarks gateway vs one monitor;
//!                                    --scenario ordering-violation
//!                                    plants causally-reorderable
//!                                    inversions under a pattern
//!                                    predicate and checks every verdict;
//!                                    --scenario sparse-predicate checks
//!                                    the slicing filter's ≥5x reduction;
//!                                    --scenario wide-session plants a
//!                                    conjunctive cut across many
//!                                    processes (ground-truth-checked);
//!                                    --distribute K opens each session
//!                                    distributed over K worker backends
//!                                    (needs a wire-v5 gateway)
//! hbtl store inspect <dir>           read-only look at a data dir (--json)
//! hbtl store verify <dir>            CRC-check every WAL record
//!                                    (--repair truncates a damaged tail)
//! hbtl store compact <dir>           drop snapshot-covered segments
//! ```
//!
//! Trace files ending in `.json` use the JSON interchange format; any
//! other extension is parsed as the line-oriented text format.

use hb_computation::Computation;
use hb_ctl::{evaluate, parse, Evidence};
use hb_lattice::{CutLattice, DotStyle};
use std::fmt::Write as _;
use std::process::ExitCode;

mod commands;
mod gateway_cmd;
mod loadgen_cmd;
mod monitor_cmd;
mod slice_cmd;
mod store_cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("hbtl: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  hbtl check <trace> \"<formula>\"\n  hbtl info <trace>\n  hbtl dot <trace>\n  hbtl lattice <trace> [limit]\n  hbtl convert <in> <out>\n  hbtl simulate <mutex|leader|termination|pipeline> <out.json>\n  hbtl monitor serve <addr> [--shards N] [--capacity N] [--stats-every SECS]\n                    [--data-dir DIR] [--sync always|os|interval:<ms>] [--snapshot-every N] [--wire-version V] [--par-threads N]\n  hbtl monitor send <addr> <trace> --session NAME (--conj|--disj \"p:var=v,...\" | --pattern \"a=1 -> b=2\")...\n                    [--seed S] [--window W] [--retry N]\n  hbtl monitor stats <addr> [--json | --prometheus] [--retry N]\n  hbtl monitor shutdown <addr> [--retry N]\n  hbtl slice inspect <trace> --conj \"p:var=v,...\" [--json]\n  hbtl gateway serve <addr> --backend <addr> [--backend <addr>]... [--pool N] [--journal-limit N] [--stats-every SECS]\n  hbtl gateway drain <addr> <backend> [--retry N]\n  hbtl gateway stats <addr> [--json | --prometheus] [--retry N]\n  hbtl loadgen <addr> [--workers M] [--sessions N] [--processes P] [--events E] [--predicates K] [--batch B]\n                    [--distribute K] [--scenario ordering-violation|sparse-predicate|wide-session]\n                    [--violation-rate PCT] [--json]\n  hbtl loadgen --compare [--workers M] [--sessions N] ... [--json]\n  hbtl store inspect <dir> [--json]\n  hbtl store verify <dir> [--repair] [--json]\n  hbtl store compact <dir>"
}

/// Dispatches a command line; returns the text to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut out = String::new();
    match args.first().map(String::as_str) {
        Some("check") => {
            // check <trace> <formula> [--nested]
            let (trace, formula, nested) = match args {
                [_, trace, formula] => (trace, formula, false),
                [_, trace, formula, flag] if flag == "--nested" => (trace, formula, true),
                _ => return Err("check needs <trace> and <formula> [--nested]".into()),
            };
            let comp = commands::load_trace(trace)?;
            let f = parse(formula).map_err(|e| e.to_string())?;
            let r = if nested {
                hb_ctl::evaluate_nested(&comp, &f).map_err(|e| e.to_string())?
            } else {
                evaluate(&comp, &f).map_err(|e| {
                    if matches!(e, hb_ctl::EvalError::NestedTemporal) {
                        format!("{e} — pass --nested to use the full-CTL baseline")
                    } else {
                        e.to_string()
                    }
                })?
            };
            let _ = writeln!(out, "{f} = {}", r.verdict);
            let _ = writeln!(out, "engine: {}", r.engine);
            match r.evidence {
                Some(Evidence::Cut(c)) => {
                    let _ = writeln!(out, "evidence cut: {c}");
                    let _ = writeln!(
                        out,
                        "frontier: {}",
                        comp.frontier(&c)
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
                Some(Evidence::Path(p)) => {
                    let _ = writeln!(out, "evidence path ({} cuts):", p.len());
                    for (i, c) in p.iter().enumerate() {
                        let _ = writeln!(out, "  G{i} = {c}");
                    }
                }
                None => {}
            }
            Ok(out)
        }
        Some("info") => {
            let [_, trace] = args else {
                return Err("info needs <trace>".into());
            };
            let comp = commands::load_trace(trace)?;
            Ok(commands::info(&comp))
        }
        Some("dot") => {
            let [_, trace] = args else {
                return Err("dot needs <trace>".into());
            };
            let comp = commands::load_trace(trace)?;
            Ok(comp.to_dot())
        }
        Some("lattice") => {
            // lattice <trace> [limit] [--highlight "<state formula>"]
            let mut rest: Vec<&String> = args[1..].iter().collect();
            let mut highlight = None;
            if let Some(pos) = rest.iter().position(|a| *a == "--highlight") {
                if pos + 1 >= rest.len() {
                    return Err("--highlight needs a state formula".into());
                }
                highlight = Some(rest[pos + 1].clone());
                rest.drain(pos..=pos + 1);
            }
            let (trace, limit) = match rest.as_slice() {
                [trace] => (*trace, 100_000usize),
                [trace, limit] => (*trace, limit.parse().map_err(|_| "bad limit".to_string())?),
                _ => return Err("lattice needs <trace> [limit] [--highlight <formula>]".into()),
            };
            let comp = commands::load_trace(trace)?;
            let lat = CutLattice::try_build(&comp, limit)
                .map_err(|e| format!("{e} (raise the limit?)"))?;
            // Patterned circles mark the satisfying cuts, as in the
            // paper's Fig. 4(b).
            let patterned = match highlight {
                Some(src) => {
                    let f = parse(&src).map_err(|e| e.to_string())?;
                    let p = hb_ctl::compile_state_formula(&comp, &f).map_err(|e| e.to_string())?;
                    use hb_predicates::Predicate as _;
                    (0..lat.len())
                        .filter(|&i| p.eval(&comp, lat.cut(i)))
                        .collect()
                }
                None => vec![],
            };
            let style = DotStyle {
                filled: lat.meet_irreducible_nodes(),
                patterned,
            };
            Ok(lat.to_dot(&style))
        }
        Some("convert") => {
            let [_, input, output] = args else {
                return Err("convert needs <in> <out>".into());
            };
            let comp = commands::load_trace(input)?;
            commands::save_trace(&comp, output)?;
            Ok(format!("wrote {output}\n"))
        }
        Some("simulate") => {
            let [_, proto, output] = args else {
                return Err("simulate needs <proto> and <out.json>".into());
            };
            let comp = commands::simulate(proto)?;
            commands::save_trace(&comp, output)?;
            Ok(format!(
                "simulated '{proto}': {} processes, {} events → {output}\n",
                comp.num_processes(),
                comp.num_events()
            ))
        }
        Some("monitor") => monitor_cmd::run(&args[1..]),
        Some("slice") => slice_cmd::run(&args[1..]),
        Some("gateway") => gateway_cmd::run(&args[1..]),
        Some("loadgen") => loadgen_cmd::run(&args[1..]),
        Some("store") => store_cmd::run(&args[1..]),
        _ => Err("missing or unknown command".into()),
    }
}

// Re-exported for the integration tests.
pub use commands::{info, load_trace, save_trace, simulate};

#[allow(dead_code)]
fn _assert_types(_: &Computation) {}
