//! The `hbtl monitor` subcommand family: the online-detection service.
//!
//! ```text
//! hbtl monitor serve <addr> [--shards N] [--capacity N] [--stats-every SECS]
//!                   [--data-dir DIR] [--sync always|os|interval:<ms>]
//!                   [--snapshot-every N] [--wire-version V] [--no-slice]
//!                   [--par-threads N]
//! hbtl monitor send <addr> <trace> --session NAME
//!                   (--conj SPEC | --disj SPEC | --pattern SPEC)...
//!                   [--seed S] [--window W] [--retry N]
//! hbtl monitor stats <addr> [--json | --prometheus] [--retry N]
//! hbtl monitor shutdown <addr> [--retry N]
//! ```
//!
//! `--retry N` retries the initial connect up to N extra times with
//! capped exponential backoff and jitter — for scripts that race a
//! `serve` that is still binding, and for riding out a gateway failover.
//!
//! With `--data-dir`, every accepted message is write-ahead logged
//! before it is acknowledged and all sessions are snapshotted
//! periodically; restarting `serve` on the same directory recovers
//! every open session and resumes exactly where the crash interrupted
//! it (see `hbtl store` for offline inspection of the directory).
//!
//! Regular (conjunctive) predicates are detected on their computation
//! slice: an ingest filter drops slice-irrelevant events before the
//! detector (verdicts are provably unchanged). `--no-slice` turns the
//! filter off — the differential test suite uses it to pit sliced and
//! unsliced servers against each other. `stats --json` reports the
//! per-predicate filter counters plus a derived
//! `slice.<pred>.reduction_ratio` (events in ÷ events reaching the
//! detector).
//!
//! `--par-threads N` switches sessions to the `hb-par` parallel
//! detectors and evaluates independent predicates of one delivery
//! batch on N worker threads. Verdicts, witness cuts, and snapshot
//! bytes are identical at every setting — snapshots written by a
//! parallel server restore into a sequential one and vice versa.
//!
//! `send` replays a recorded trace as a live computation would emit it:
//! a seeded causality-respecting shuffle of the events (bounded
//! transport reordering on top of a random linearization) streamed over
//! the wire protocol, with per-process finish markers and a final close.
//!
//! A `--conj`/`--disj` SPEC is comma-separated `process:var op value`
//! clauses, e.g. `--conj "0:x=2,1:x=1"`. Operators: `= != < <= > >=`.
//! A `--pattern` SPEC is the hb-pattern grammar — atoms joined by `->`
//! (linearized-after) or `~>` (causally-after), e.g.
//! `--pattern "unlock=1 -> lock=1"` — matched against event *deltas*
//! predictively, over every linearization of the causal order. Note
//! `send` replays full state maps per event, so every still-set
//! variable re-matches at each event; patterns over monotone flags
//! (e.g. `err=1` written once) behave as expected.

use hb_computation::{Computation, EventId};
use hb_monitor::{serve, MonitorConfig, MonitorService, PersistConfig, SessionLimits};
use hb_sim::causal_shuffle;
use hb_store::{StoreError, SyncPolicy};
use hb_tracefmt::dial::{connect_with_retry, RetryPolicy};
use hb_tracefmt::wire::{
    self, read_frame, write_frame, ClientMsg, ServerMsg, WireClause, WireMode, WirePredicate,
    WireVerdict,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Dispatches `hbtl monitor <verb> …`.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("serve") => serve_cmd(&args[1..]),
        Some("send") => send_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        Some("shutdown") => {
            let mut rest = args[1..].to_vec();
            let retries = take_retry(&mut rest)?;
            let [addr] = rest.as_slice() else {
                return Err("shutdown needs <addr> [--retry N]".into());
            };
            shutdown_server(addr, retries)?;
            Ok("server shut down\n".into())
        }
        _ => Err("monitor needs serve|send|stats|shutdown".into()),
    }
}

/// Pulls `--flag value` out of an argument list, leaving positionals.
pub(crate) fn take_flag(rest: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a == flag) {
        Some(i) if i + 1 < rest.len() => {
            rest.remove(i);
            Ok(Some(rest.remove(i)))
        }
        Some(_) => Err(format!("{flag} needs a value")),
        None => Ok(None),
    }
}

/// Parses `--retry N` (default 0: a single attempt).
pub(crate) fn take_retry(rest: &mut Vec<String>) -> Result<u32, String> {
    Ok(take_flag(rest, "--retry")?
        .map(|s| s.parse::<u32>().map_err(|_| "bad --retry".to_string()))
        .transpose()?
        .unwrap_or(0))
}

/// Connects with `retries` extra attempts (backoff + jitter) — the same
/// dialer the gateway uses for its backends.
pub(crate) fn connect_retry(addr: &str, retries: u32) -> Result<TcpStream, String> {
    connect_with_retry(addr, &RetryPolicy::with_retries(retries))
}

/// One `stats` request/reply exchange.
pub(crate) fn fetch_stats(addr: &str, retries: u32) -> Result<BTreeMap<String, u64>, String> {
    let stream = connect_retry(addr, retries)?;
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut r = BufReader::new(stream);
    write_frame(&mut w, &ClientMsg::Stats).map_err(|e| e.to_string())?;
    match read_frame::<_, ServerMsg>(&mut r).map_err(|e| e.to_string())? {
        Some(ServerMsg::Stats { counters }) => Ok(counters),
        other => Err(format!("unexpected stats reply: {other:?}")),
    }
}

/// Renders a counter map as aligned text, flat JSON, or Prometheus
/// text exposition.
pub(crate) fn render_stats(
    counters: &BTreeMap<String, u64>,
    json: bool,
    prometheus: bool,
) -> Result<String, String> {
    if json && prometheus {
        return Err("--json and --prometheus are mutually exclusive".into());
    }
    let mut out = String::new();
    if prometheus {
        out.push_str(&hb_tracefmt::prom::render(counters));
    } else if json {
        // One flat JSON object, counter name → integer value, plus a
        // derived float `slice.<pred>.reduction_ratio` per sliced
        // predicate: events in ÷ events that reached the detector.
        use serde::Serialize as _;
        let mut entries: Vec<(String, serde::Value)> = counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        for (k, &events_in) in counters.range("slice.".to_string()..) {
            let Some(pred) = k
                .strip_prefix("slice.")
                .and_then(|r| r.strip_suffix(".events_in"))
            else {
                continue;
            };
            let filtered = counters
                .get(&format!("slice.{pred}.events_filtered"))
                .copied()
                .unwrap_or(0);
            let kept = events_in.saturating_sub(filtered).max(1);
            entries.push((
                format!("slice.{pred}.reduction_ratio"),
                serde::Value::Float(events_in as f64 / kept as f64),
            ));
        }
        let value = serde::Value::Object(entries);
        let _ = writeln!(
            out,
            "{}",
            serde_json::to_string(&value).map_err(|e| e.to_string())?
        );
    } else {
        for (k, v) in counters {
            let _ = writeln!(out, "{k:>24}  {v}");
        }
    }
    Ok(out)
}

fn serve_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let shards = take_flag(&mut rest, "--shards")?
        .map(|s| s.parse::<usize>().map_err(|_| "bad --shards".to_string()))
        .transpose()?
        .unwrap_or(4);
    let capacity = take_flag(&mut rest, "--capacity")?
        .map(|s| s.parse::<usize>().map_err(|_| "bad --capacity".to_string()))
        .transpose()?
        .unwrap_or(SessionLimits::default().buffer_capacity);
    let stats_every = take_flag(&mut rest, "--stats-every")?
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| "bad --stats-every".to_string())
        })
        .transpose()?;
    let data_dir = take_flag(&mut rest, "--data-dir")?;
    let sync = take_flag(&mut rest, "--sync")?
        .map(|s| SyncPolicy::parse(&s))
        .transpose()?;
    let snapshot_every = take_flag(&mut rest, "--snapshot-every")?
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| "bad --snapshot-every".to_string())
        })
        .transpose()?;
    if data_dir.is_none() && (sync.is_some() || snapshot_every.is_some()) {
        return Err("--sync and --snapshot-every need --data-dir".into());
    }
    let no_slice = take_switch(&mut rest, "--no-slice");
    let par_threads = take_flag(&mut rest, "--par-threads")?
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| "bad --par-threads".to_string())
        })
        .transpose()?
        .unwrap_or(0);
    // Compatibility-testing knob: serve as if this were an older build
    // (caps the handshake and refuses frames that version lacked).
    let wire_version = take_flag(&mut rest, "--wire-version")?
        .map(|s| {
            s.parse::<u32>()
                .map_err(|_| "bad --wire-version".to_string())
        })
        .transpose()?
        .unwrap_or(wire::WIRE_VERSION);
    let persist = data_dir.map(|dir| {
        let mut p = PersistConfig::new(dir.into());
        if let Some(sync) = sync {
            p.sync = sync;
        }
        if let Some(every) = snapshot_every {
            p.snapshot_every = every.max(1);
        }
        p
    });
    let [addr] = rest.as_slice() else {
        return Err("serve needs <addr> (e.g. 127.0.0.1:7474)".into());
    };
    let listener = TcpListener::bind(addr.as_str()).map_err(|e| {
        if e.kind() == std::io::ErrorKind::AddrInUse {
            format!("bind {addr}: address already in use — is another monitor running there?")
        } else {
            format!("bind {addr}: {e}")
        }
    })?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let durable = persist.is_some();
    let service = MonitorService::open(MonitorConfig {
        shards,
        limits: SessionLimits {
            buffer_capacity: capacity,
            slice: !no_slice,
            parallel: par_threads,
            ..SessionLimits::default()
        },
        stats_interval: stats_every.map(Duration::from_secs),
        persist,
        wire_version,
    })
    .map_err(|e| match e {
        StoreError::Locked { path, pid } => format!(
            "data directory is locked ({}){} — another monitor owns it; \
             stop that process or pick a different --data-dir",
            path.display(),
            pid.map(|p| format!(" by pid {p}")).unwrap_or_default(),
        ),
        other => format!("open data dir: {other}"),
    })?;
    if durable {
        let m = service.metrics();
        eprintln!(
            "hb-monitor: recovered {} session(s), replayed {} record(s) in {} ms",
            m.sessions_recovered, m.recovery_replayed, m.recovery_millis
        );
    }
    eprintln!("hb-monitor: listening on {local} ({shards} shards)");
    serve(listener, service.handle()).map_err(|e| format!("serve: {e}"))?;
    let stats = service.shutdown();
    Ok(format!("hb-monitor: shut down\nfinal: {stats}\n"))
}

/// Parses `process:var op value` (e.g. `0:x>=2`).
pub(crate) fn parse_clause(src: &str) -> Result<WireClause, String> {
    let bad = || format!("bad clause '{src}' (want process:var<op>value)");
    let (proc_part, rest) = src.split_once(':').ok_or_else(bad)?;
    let process = proc_part.trim().parse::<usize>().map_err(|_| bad())?;
    // Two-char operators first so `<=` does not parse as `<`.
    for op in ["<=", ">=", "!=", "==", "=", "<", ">"] {
        if let Some(i) = rest.find(op) {
            let var = rest[..i].trim();
            let value = rest[i + op.len()..]
                .trim()
                .parse::<i64>()
                .map_err(|_| bad())?;
            if var.is_empty() {
                return Err(bad());
            }
            return Ok(WireClause {
                process,
                var: var.to_string(),
                op: op.to_string(),
                value,
            });
        }
    }
    Err(bad())
}

fn parse_spec(id: String, mode: WireMode, src: &str) -> Result<WirePredicate, String> {
    let clauses = src
        .split(',')
        .map(parse_clause)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WirePredicate {
        id,
        mode,
        clauses,
        pattern: None,
    })
}

/// The full local state after an event, as a wire `set` map. Sending
/// the complete state (rather than a delta) keeps replay insensitive to
/// which variables an event actually touched.
pub(crate) fn state_map(comp: &Computation, e: EventId) -> BTreeMap<String, i64> {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    comp.vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect()
}

fn describe_verdict(v: &WireVerdict) -> String {
    match v {
        WireVerdict::Detected(cut) => format!(
            "detected at cut [{}]",
            cut.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        WireVerdict::Impossible => "impossible".into(),
        WireVerdict::Pending => "pending".into(),
    }
}

fn send_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let session = take_flag(&mut rest, "--session")?.unwrap_or_else(|| "default".to_string());
    let seed = take_flag(&mut rest, "--seed")?
        .map(|s| s.parse::<u64>().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(0);
    let window = take_flag(&mut rest, "--window")?
        .map(|s| s.parse::<usize>().map_err(|_| "bad --window".to_string()))
        .transpose()?
        .unwrap_or(8);
    let mut predicates = Vec::new();
    loop {
        let next = predicates.len();
        if let Some(spec) = take_flag(&mut rest, "--conj")? {
            predicates.push(parse_spec(
                format!("p{next}"),
                WireMode::Conjunctive,
                &spec,
            )?);
        } else if let Some(spec) = take_flag(&mut rest, "--disj")? {
            predicates.push(parse_spec(
                format!("p{next}"),
                WireMode::Disjunctive,
                &spec,
            )?);
        } else if let Some(spec) = take_flag(&mut rest, "--pattern")? {
            let pattern = hb_pattern::parse_pattern(&spec)?;
            predicates.push(WirePredicate {
                id: format!("p{next}"),
                mode: WireMode::Pattern,
                clauses: Vec::new(),
                pattern: Some(pattern),
            });
        } else {
            break;
        }
    }
    if predicates.is_empty() {
        return Err("send needs at least one --conj, --disj, or --pattern predicate".into());
    }
    let retries = take_retry(&mut rest)?;
    let [addr, trace] = rest.as_slice() else {
        return Err("send needs <addr> <trace> --session NAME (--conj|--disj SPEC)...".into());
    };
    let comp = crate::commands::load_trace(trace)?;
    let n = comp.num_processes();

    let stream = connect_retry(addr, retries)?;
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut r = BufReader::new(stream);
    let recv = |r: &mut BufReader<TcpStream>| -> Result<ServerMsg, String> {
        read_frame::<_, ServerMsg>(r)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "server closed the connection".to_string())
    };

    // Version handshake: announce ours, confirm the server's is usable.
    write_frame(
        &mut w,
        &ClientMsg::Hello {
            version: wire::WIRE_VERSION,
        },
    )
    .map_err(|e| e.to_string())?;
    match recv(&mut r)? {
        ServerMsg::Welcome { version } => wire::check_version(version)?,
        ServerMsg::Error { message, .. } => return Err(format!("handshake rejected: {message}")),
        other => return Err(format!("unexpected reply to hello: {other:?}")),
    }

    // Open: declare shape, initial states, and predicates.
    let vars: Vec<String> = comp
        .vars()
        .iter()
        .map(|(_, name)| name.to_string())
        .collect();
    let initial: Vec<BTreeMap<String, i64>> = (0..n)
        .map(|p| {
            let s = comp.local_state(p, 0);
            comp.vars()
                .iter()
                .map(|(id, name)| (name.to_string(), s.get(id)))
                .collect()
        })
        .collect();
    write_frame(
        &mut w,
        &ClientMsg::Open {
            session: session.clone(),
            processes: n,
            vars,
            initial,
            predicates,
            dist: None,
        },
    )
    .map_err(|e| e.to_string())?;
    match recv(&mut r)? {
        ServerMsg::Opened { .. } => {}
        ServerMsg::Error { message, .. } => return Err(format!("open rejected: {message}")),
        other => return Err(format!("unexpected reply to open: {other:?}")),
    }

    // Stream the causality-respecting shuffle, then finish each process.
    let order = causal_shuffle(&comp, seed, window);
    let total = order.len();
    for e in order {
        write_frame(
            &mut w,
            &ClientMsg::Event {
                session: session.clone(),
                p: e.process,
                clock: comp.clock(e).components().to_vec(),
                set: state_map(&comp, e),
            },
        )
        .map_err(|err| err.to_string())?;
    }
    for p in 0..n {
        write_frame(
            &mut w,
            &ClientMsg::FinishProcess {
                session: session.clone(),
                p,
            },
        )
        .map_err(|e| e.to_string())?;
    }
    write_frame(
        &mut w,
        &ClientMsg::Close {
            session: session.clone(),
        },
    )
    .map_err(|e| e.to_string())?;

    // Collect verdicts until the close acknowledgement.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sent {total} events over '{session}' (seed {seed}, window {window})"
    );
    loop {
        match recv(&mut r)? {
            ServerMsg::Verdict {
                predicate, verdict, ..
            } => {
                let _ = writeln!(out, "{predicate}: {}", describe_verdict(&verdict));
            }
            ServerMsg::Closed { discarded, .. } => {
                if discarded > 0 {
                    let _ = writeln!(out, "warning: {discarded} events discarded at close");
                }
                break;
            }
            ServerMsg::Error { message, .. } => {
                let _ = writeln!(out, "server error: {message}");
            }
            other => return Err(format!("unexpected server message: {other:?}")),
        }
    }
    Ok(out)
}

/// Takes a bare `--flag` (no value); returns whether it was present.
pub(crate) fn take_switch(rest: &mut Vec<String>, flag: &str) -> bool {
    match rest.iter().position(|a| a == flag) {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    }
}

fn stats_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let json = take_switch(&mut rest, "--json");
    let prometheus = take_switch(&mut rest, "--prometheus");
    let retries = take_retry(&mut rest)?;
    let [addr] = rest.as_slice() else {
        return Err("stats needs <addr> [--json | --prometheus] [--retry N]".into());
    };
    if json && prometheus {
        return Err("--json and --prometheus are mutually exclusive".into());
    }
    let counters = fetch_stats(addr, retries)?;
    render_stats(&counters, json, prometheus)
}

/// Sends a shutdown frame to a running server (used by tests and
/// scripted benchmarks; exposed as `hbtl monitor stats`' sibling).
pub fn shutdown_server(addr: &str, retries: u32) -> Result<(), String> {
    let stream = connect_retry(addr, retries)?;
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut r = BufReader::new(stream);
    write_frame(&mut w, &ClientMsg::Shutdown).map_err(|e| e.to_string())?;
    // Wait for the acknowledgement so the caller knows the server saw it.
    let _ = read_frame::<_, ServerMsg>(&mut r);
    Ok(())
}
