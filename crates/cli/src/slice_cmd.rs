//! `hbtl slice inspect` — run the offline slicer on a recorded trace.
//!
//! ```text
//! hbtl slice inspect <trace> --conj "p:var=v,..." [--json]
//! ```
//!
//! Computes the slice of the trace's computation with respect to a
//! conjunctive predicate (the regular class the online ingest filter
//! slices too) and reports how much of the cut lattice it rules out:
//! the Birkhoff data `I_p` / `F_p`, how many events belong to the
//! slice, and the slice's cut-count bound against the full lattice's —
//! the same numbers that justify routing detection through the slice.
//!
//! Bounds are the box bounds `Π (span_i + 1)`: every consistent cut
//! lies in the full box, and every satisfying cut lies in the
//! `[I_p, F_p]` box, so `full / slice` understates nothing.

use crate::commands;
use crate::monitor_cmd::{parse_clause, take_switch};
use hb_computation::{Computation, EventId};
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_slicer::Slice;
use std::fmt::Write as _;

/// Parses `"p:var=v,..."` into the offline conjunctive predicate,
/// resolving variable names against the trace's declarations.
fn parse_conjunctive(comp: &Computation, src: &str) -> Result<Conjunctive, String> {
    let mut clauses = Vec::new();
    for part in src.split(',') {
        let c = parse_clause(part)?;
        if c.process >= comp.num_processes() {
            return Err(format!(
                "clause '{part}': process {} out of range (trace has {})",
                c.process,
                comp.num_processes()
            ));
        }
        let var = comp
            .vars()
            .lookup(&c.var)
            .ok_or_else(|| format!("clause '{part}': variable '{}' not in the trace", c.var))?;
        let op = match c.op.as_str() {
            "=" | "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            other => return Err(format!("clause '{part}': unknown operator '{other}'")),
        };
        clauses.push((c.process, LocalExpr::Cmp(var, op, c.value)));
    }
    if clauses.is_empty() {
        return Err("--conj needs at least one clause".into());
    }
    Ok(Conjunctive::new(clauses))
}

/// `Π (spans + 1)`, saturating: the box bound on cut counts.
fn box_bound(spans: impl Iterator<Item = u64>) -> u128 {
    spans.fold(1u128, |acc, s| acc.saturating_mul(u128::from(s) + 1))
}

fn inspect(trace: &str, conj_src: &str, json: bool) -> Result<String, String> {
    let comp = commands::load_trace(trace)?;
    let pred = parse_conjunctive(&comp, conj_src)?;
    let slice = Slice::compute(&comp, &pred);

    let slice_events: usize = (0..comp.num_processes())
        .map(|i| {
            (0..comp.num_events_of(i))
                .filter(|&k| slice.j_cut(EventId::new(i, k)).is_some())
                .count()
        })
        .sum();
    let full_bound = box_bound((0..comp.num_processes()).map(|i| comp.num_events_of(i) as u64));
    let slice_bound = match (&slice.i_p, &slice.f_p) {
        (Some(i_p), Some(f_p)) => box_bound(
            (0..comp.num_processes()).map(|i| u64::from(f_p.get(i)) - u64::from(i_p.get(i))),
        ),
        _ => 0,
    };
    let reduction = (slice_bound > 0).then(|| full_bound as f64 / slice_bound as f64);

    let cut_json = |c: &hb_computation::Cut| {
        let parts: Vec<String> = (0..c.width()).map(|i| c.get(i).to_string()).collect();
        format!("[{}]", parts.join(","))
    };
    if json {
        let mut out = format!(
            "{{\"trace\":\"{trace}\",\"processes\":{},\"events\":{},\
             \"empty\":{},\"slice_events\":{slice_events},\
             \"lattice_bound\":{full_bound},\"slice_bound\":{slice_bound}",
            comp.num_processes(),
            comp.num_events(),
            slice.is_empty(),
        );
        if let (Some(i_p), Some(f_p)) = (&slice.i_p, &slice.f_p) {
            let _ = write!(out, ",\"i\":{},\"f\":{}", cut_json(i_p), cut_json(f_p));
        }
        if let Some(r) = reduction {
            let _ = write!(out, ",\"reduction\":{r:.2}");
        }
        out.push_str("}\n");
        return Ok(out);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "slice of {trace} w.r.t. [{conj_src}]: {} processes, {} events",
        comp.num_processes(),
        comp.num_events(),
    );
    if slice.is_empty() {
        let _ = writeln!(
            out,
            "slice: empty — no consistent cut satisfies the predicate"
        );
        return Ok(out);
    }
    let (i_p, f_p) = (slice.i_p.as_ref().unwrap(), slice.f_p.as_ref().unwrap());
    let _ = writeln!(out, "I_p = {i_p}   F_p = {f_p}");
    let _ = writeln!(
        out,
        "slice events: {slice_events} of {} belong to some satisfying cut",
        comp.num_events()
    );
    let _ = writeln!(
        out,
        "cut-lattice bound: {full_bound} cuts; slice bound: {slice_bound} cuts ({}x reduction)",
        reduction.map_or_else(|| "inf".into(), |r| format!("{r:.1}")),
    );
    Ok(out)
}

/// Dispatches `hbtl slice …`.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("inspect") => {
            let mut rest = args[1..].to_vec();
            let json = take_switch(&mut rest, "--json");
            let conj = crate::monitor_cmd::take_flag(&mut rest, "--conj")?
                .ok_or("slice inspect needs --conj \"p:var=v,...\"")?;
            let [trace] = rest.as_slice() else {
                return Err("slice inspect needs <trace> --conj \"p:var=v,...\" [--json]".into());
            };
            inspect(trace, &conj, json)
        }
        _ => Err("slice needs a subcommand: inspect".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    /// Two processes, x climbing 0→2 on each; the predicate wants
    /// `x = 2` on both, so the slice pins the tail of the lattice.
    fn sample_trace(path: &std::path::Path) {
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        for i in 0..2 {
            b.internal(i).set(x, 1).done();
            b.internal(i).set(x, 2).done();
        }
        let comp = b.finish().unwrap();
        commands::save_trace(&comp, path.to_str().unwrap()).unwrap();
    }

    #[test]
    fn inspect_reports_slice_bounds() {
        let dir = std::env::temp_dir().join(format!("hbtl-slice-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        sample_trace(&trace);
        let args: Vec<String> = ["inspect", trace.to_str().unwrap(), "--conj", "0:x=2,1:x=2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args).unwrap();
        assert!(out.contains("I_p = (2,2)"), "{out}");
        assert!(out.contains("F_p = (2,2)"), "{out}");
        // Box bounds: full (2+1)^2 = 9, slice a single cut.
        assert!(
            out.contains("cut-lattice bound: 9 cuts; slice bound: 1 cuts"),
            "{out}"
        );

        let mut args = args;
        args.push("--json".into());
        let js = run(&args).unwrap();
        assert!(js.contains("\"empty\":false"), "{js}");
        assert!(js.contains("\"lattice_bound\":9,\"slice_bound\":1"), "{js}");
        assert!(js.contains("\"i\":[2,2],\"f\":[2,2]"), "{js}");
        assert!(js.contains("\"reduction\":9.00"), "{js}");

        // An unsatisfiable predicate yields the empty slice.
        let args: Vec<String> = ["inspect", trace.to_str().unwrap(), "--conj", "0:x=7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&args).unwrap();
        assert!(out.contains("slice: empty"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
