//! The `hbtl store` subcommand family: offline tooling for a monitor
//! data directory.
//!
//! ```text
//! hbtl store inspect <dir> [--json]   list segments/snapshots read-only
//! hbtl store verify <dir> [--repair] [--json]
//!                                     CRC-check every record; --repair
//!                                     locks the store and truncates a
//!                                     damaged tail
//! hbtl store compact <dir>            drop segments covered by the
//!                                     newest snapshot
//! ```
//!
//! `inspect` never locks the directory, so it is safe against a running
//! monitor (it may see a torn in-flight tail — that is reported, not
//! repaired). `verify --repair` and `compact` take the store lock and
//! refuse to run while a monitor owns the directory.

use hb_store::{inspect, render_report, verify, Store, StoreOptions, StoreReport};
use serde::Serialize as _;
use std::path::Path;

/// Dispatches `hbtl store <verb> …`.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("inspect") => inspect_cmd(&args[1..]),
        Some("verify") => verify_cmd(&args[1..]),
        Some("compact") => compact_cmd(&args[1..]),
        _ => Err("store needs inspect|verify|compact".into()),
    }
}

fn take_switch(rest: &mut Vec<String>, flag: &str) -> bool {
    match rest.iter().position(|a| a == flag) {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    }
}

fn render(report: &StoreReport, json: bool) -> String {
    if json {
        let mut text = serde_json::to_string(&report.to_value()).expect("store report serializes");
        text.push('\n');
        text
    } else {
        render_report(report)
    }
}

fn inspect_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let json = take_switch(&mut rest, "--json");
    let [dir] = rest.as_slice() else {
        return Err("store inspect needs <dir> [--json]".into());
    };
    let report = inspect(Path::new(dir)).map_err(|e| e.to_string())?;
    Ok(render(&report, json))
}

fn verify_cmd(args: &[String]) -> Result<String, String> {
    let mut rest = args.to_vec();
    let json = take_switch(&mut rest, "--json");
    let repair = take_switch(&mut rest, "--repair");
    let [dir] = rest.as_slice() else {
        return Err("store verify needs <dir> [--repair] [--json]".into());
    };
    let report = verify(Path::new(dir), repair).map_err(|e| e.to_string())?;
    let mut out = render(&report, json);
    if !json && report.bad_bytes == 0 && report.repaired_bytes == 0 {
        out.push_str("verification passed: every record checks out\n");
    }
    Ok(out)
}

fn compact_cmd(args: &[String]) -> Result<String, String> {
    let [dir] = args else {
        return Err("store compact needs <dir>".into());
    };
    let mut store =
        Store::open(Path::new(dir), StoreOptions::default()).map_err(|e| e.to_string())?;
    let removed = store.compact().map_err(|e| e.to_string())?;
    let stats = store.stats();
    Ok(format!(
        "compacted: removed {removed} segment(s), {} live ({} bytes)\n",
        stats.segments, stats.live_bytes
    ))
}
