//! Differential equivalence for wire batching: the same simulated
//! computations stream through a live `hbtl monitor serve` process
//! twice — once with the SDK's flush batching enabled (`--batch 64`
//! semantics, `batch_max(64)`) and once frame-per-event
//! (`batch_max(1)`) — and both runs must settle to verdict sequences
//! that are **byte-identical** to each other and to the sequence the
//! offline oracle (`ef_linear`) predicts.
//!
//! Batching is a transport concern; this test is the lock that keeps it
//! one. Each leg gets its own freshly spawned monitor on its own port,
//! so the two legs can use identical session names and the comparison
//! covers every byte of every `verdict` frame, session field included.

#![cfg(unix)]

use hb_computation::{Computation, EventId};
use hb_detect::ef_linear;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sdk::{SessionBuilder, WireVerdict};
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use hb_tracefmt::wire::{read_frame, write_frame, ClientMsg, ServerMsg, WIRE_VERSION};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};

const PROCESSES: usize = 4;
const EVENTS_PER_PROCESS: usize = 64;
const SESSIONS: usize = 3;
/// The batched leg's flush cap — the `--batch 64` of the CI comparison.
const BATCH: usize = 64;

/// One pre-planned session: the computation, a causality-respecting
/// delivery order, and the verdict map the offline oracle predicts.
struct Plan {
    name: String,
    comp: Computation,
    order: Vec<EventId>,
    expected: BTreeMap<String, WireVerdict>,
}

/// Conjunctive `x = k` on processes 0 and 1 for k in 0..3 (each may or
/// may not have a satisfying cut — the oracle decides), plus an
/// impossible all-process `x = -1` that forces the detector through the
/// entire computation.
fn predicate_clauses(comp: &Computation) -> Vec<(String, Vec<(usize, i64)>)> {
    let mut preds: Vec<(String, Vec<(usize, i64)>)> = (0..3)
        .map(|k| (format!("p{k}"), vec![(0, k as i64), (1, k as i64)]))
        .collect();
    preds.push((
        "nope".into(),
        (0..comp.num_processes()).map(|p| (p, -1)).collect(),
    ));
    preds
}

/// What the online monitor must settle to, per the offline detector:
/// the least satisfying cut when `EF(φ)` holds, `Impossible` once the
/// whole (finite) computation is delivered and no cut satisfied it.
fn oracle_verdicts(comp: &Computation) -> BTreeMap<String, WireVerdict> {
    let x = comp.vars().lookup("x").expect("sim computations declare x");
    predicate_clauses(comp)
        .into_iter()
        .map(|(id, clauses)| {
            let goal = Conjunctive::new(
                clauses
                    .into_iter()
                    .map(|(p, v)| (p, LocalExpr::Cmp(x, CmpOp::Eq, v)))
                    .collect(),
            );
            let offline = ef_linear(comp, &goal);
            let verdict = match offline.witness {
                Some(least) if offline.holds => WireVerdict::Detected(least.counters().to_vec()),
                _ => WireVerdict::Impossible,
            };
            (id, verdict)
        })
        .collect()
}

fn build_plans() -> Vec<Plan> {
    (0..SESSIONS as u64)
        .map(|s| {
            let comp = random_computation(RandomSpec {
                processes: PROCESSES,
                events_per_process: EVENTS_PER_PROCESS,
                send_percent: 30,
                value_range: 4,
                seed: 0xeb_u64.wrapping_add(s * 7919),
            });
            let order = causal_shuffle(&comp, s ^ 0xbeef, 8);
            let expected = oracle_verdicts(&comp);
            Plan {
                name: format!("s{s}"),
                comp,
                order,
                expected,
            }
        })
        .collect()
}

/// The full state map at an event, exactly as an instrumented program
/// would report it.
fn state_map(comp: &Computation, e: EventId) -> BTreeMap<String, i64> {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    comp.vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect()
}

/// Serializes a settled verdict map as the wire frames the server sends
/// at close, in predicate order. Two runs agree iff these bytes agree.
fn verdict_bytes(session: &str, verdicts: &BTreeMap<String, WireVerdict>) -> Vec<u8> {
    let mut buf = Vec::new();
    for (predicate, verdict) in verdicts {
        write_frame(
            &mut buf,
            &ServerMsg::Verdict {
                session: session.to_string(),
                predicate: predicate.clone(),
                verdict: verdict.clone(),
            },
        )
        .expect("verdict frames encode");
    }
    buf
}

/// Spawns `hbtl monitor serve` on a fresh port and waits for its
/// banner. No data dir: durability is not under test here.
#[allow(clippy::zombie_processes)]
fn spawn_monitor() -> (Child, String) {
    let port = TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
        .port();
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(["monitor", "serve", &addr])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if line.contains("listening on ") {
            return (child, addr);
        }
    }
}

/// Fetches the server's counters over a raw handshaken connection.
fn fetch_counters(addr: &str) -> BTreeMap<String, u64> {
    let stream = TcpStream::connect(addr).expect("connect for stats");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .expect("hello");
    match read_frame::<_, ServerMsg>(&mut reader).expect("welcome frame") {
        Some(ServerMsg::Welcome { .. }) => {}
        other => panic!("expected welcome, got {other:?}"),
    }
    write_frame(&mut writer, &ClientMsg::Stats).expect("stats request");
    match read_frame::<_, ServerMsg>(&mut reader).expect("stats frame") {
        Some(ServerMsg::Stats { counters }) => counters,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// What one leg produced: the concatenated verdict frames of every
/// session (in plan order) and the SDK/server-side frame accounting.
struct LegOutcome {
    bytes: Vec<u8>,
    wire_batches_sent: u64,
    server_counters: BTreeMap<String, u64>,
}

/// Streams every plan through a fresh live monitor with the given
/// flush-batch cap and collects the settled verdict sequence.
fn run_leg(batch: usize) -> LegOutcome {
    let (mut child, addr) = spawn_monitor();
    let plans = build_plans();
    let mut bytes = Vec::new();
    let mut wire_batches_sent = 0;
    for plan in &plans {
        let mut builder = SessionBuilder::new(&plan.name, plan.comp.num_processes())
            .var("x")
            .batch_max(batch);
        for (id, clauses) in predicate_clauses(&plan.comp) {
            let clauses: Vec<(usize, &str, &str, i64)> =
                clauses.iter().map(|&(p, v)| (p, "x", "=", v)).collect();
            builder = builder.conjunctive(&id, &clauses);
        }
        let (session, _tracers) = builder.connect(&addr).expect("open over TCP");
        for &e in &plan.order {
            let accepted = session.emit(
                e.process,
                plan.comp.clock(e).components().to_vec(),
                state_map(&plan.comp, e),
            );
            assert!(accepted, "{}: event dropped by the SDK queue", plan.name);
        }
        let report = session.close().expect("close settles");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.discarded, 0, "every event deliverable");
        wire_batches_sent += report.metrics.wire_batches_sent;
        bytes.extend(verdict_bytes(&plan.name, &report.verdicts));
    }
    let server_counters = fetch_counters(&addr);
    child.kill().expect("cleanup kill");
    child.wait().expect("cleanup reap");
    LegOutcome {
        bytes,
        wire_batches_sent,
        server_counters,
    }
}

#[test]
fn batched_and_unbatched_streams_settle_to_identical_verdict_bytes() {
    // Offline ground truth, serialized to the exact bytes a correct
    // server must have sent at close.
    let plans = build_plans();
    let oracle: Vec<u8> = plans
        .iter()
        .flat_map(|p| verdict_bytes(&p.name, &p.expected))
        .collect();
    // Guard against a degenerate fixture: the workload must exercise
    // both verdict kinds or the equivalence proves little.
    let all_expected: Vec<&WireVerdict> = plans.iter().flat_map(|p| p.expected.values()).collect();
    assert!(
        all_expected
            .iter()
            .any(|v| matches!(v, WireVerdict::Detected(_))),
        "at least one predicate should be detected"
    );
    assert!(
        all_expected
            .iter()
            .any(|v| matches!(v, &&WireVerdict::Impossible)),
        "at least one predicate should be impossible"
    );

    let batched = run_leg(BATCH);
    let unbatched = run_leg(1);

    // The differential claim, byte for byte.
    assert_eq!(
        batched.bytes, unbatched.bytes,
        "batched and unbatched verdict sequences must be byte-identical"
    );
    assert_eq!(
        batched.bytes, oracle,
        "online verdict sequence must be byte-identical to the offline oracle"
    );

    // And the two legs really took different wire paths.
    let total: u64 = plans.iter().map(|p| p.order.len() as u64).sum();
    assert_eq!(unbatched.wire_batches_sent, 0, "batch_max(1) never batches");
    assert!(
        batched.wire_batches_sent > 0,
        "the batched leg should coalesce at least one events frame"
    );
    assert_eq!(batched.server_counters["events_ingested"], total);
    assert_eq!(unbatched.server_counters["events_ingested"], total);
    assert!(
        batched.server_counters["batches_ingested"] > 0,
        "the batched leg's monitor should see events frames: {:?}",
        batched.server_counters
    );
    assert_eq!(
        unbatched.server_counters["batches_ingested"], 0,
        "the unbatched leg's monitor should see only singles"
    );
}
