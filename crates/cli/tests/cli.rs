//! End-to-end tests of the `hbtl` binary itself.

use std::process::Command;

fn hbtl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hbtl"))
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("hbtl-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn simulate_then_check_mutual_exclusion() {
    let trace = tmp("mutex.json");
    let out = hbtl()
        .args(["simulate", "mutex", &trace])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = hbtl()
        .args(["check", &trace, "AG(!(crit@0 = 1 & crit@1 = 1))"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("= true"), "{text}");
    assert!(text.contains("engine:"), "{text}");
}

#[test]
fn check_prints_violation_evidence() {
    // A hand-written racy trace in the text format.
    let trace = tmp("racy.txt");
    std::fs::write(
        &trace,
        "processes 2\nvars crit\nevent p0 internal crit=1\nevent p0 internal crit=0\nevent p1 internal crit=1\nevent p1 internal crit=0\n",
    )
    .unwrap();
    let out = hbtl()
        .args(["check", &trace, "EF(crit@0 = 1 & crit@1 = 1)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("= true"), "{text}");
    assert!(text.contains("evidence cut: (1,1)"), "{text}");
    assert!(text.contains("frontier:"), "{text}");
}

#[test]
fn info_and_dot_and_lattice() {
    let trace = tmp("leader.json");
    assert!(hbtl()
        .args(["simulate", "leader", &trace])
        .output()
        .unwrap()
        .status
        .success());

    let info = hbtl().args(["info", &trace]).output().unwrap();
    assert!(info.status.success());
    assert!(String::from_utf8_lossy(&info.stdout).contains("processes: 5"));

    let dot = hbtl().args(["dot", &trace]).output().unwrap();
    assert!(String::from_utf8_lossy(&dot.stdout).contains("digraph computation"));

    let lat = hbtl().args(["lattice", &trace, "100000"]).output().unwrap();
    assert!(
        String::from_utf8_lossy(&lat.stdout).contains("digraph lattice") || !lat.status.success() // explosion beyond the limit is fine
    );
}

#[test]
fn convert_between_formats() {
    let json = tmp("pipe.json");
    let txt = tmp("pipe.txt");
    assert!(hbtl()
        .args(["simulate", "pipeline", &json])
        .output()
        .unwrap()
        .status
        .success());
    assert!(hbtl()
        .args(["convert", &json, &txt])
        .output()
        .unwrap()
        .status
        .success());
    let back = tmp("pipe2.json");
    assert!(hbtl()
        .args(["convert", &txt, &back])
        .output()
        .unwrap()
        .status
        .success());
    // Both JSON files describe the same computation.
    let a = hb_tracefmt::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let b = hb_tracefmt::from_json(&std::fs::read_to_string(&back).unwrap()).unwrap();
    assert_eq!(a.num_events(), b.num_events());
    assert_eq!(a.messages(), b.messages());
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = hbtl().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = hbtl()
        .args(["check", "/nonexistent", "true"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn check_reports_parse_errors() {
    let trace = tmp("mutex2.json");
    assert!(hbtl()
        .args(["simulate", "mutex", &trace])
        .output()
        .unwrap()
        .status
        .success());
    let out = hbtl().args(["check", &trace, "AG((("]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}

#[test]
fn lattice_highlight_patterns_satisfying_cuts() {
    let trace = tmp("hl.txt");
    std::fs::write(
        &trace,
        "processes 2\nvars x\nevent p0 internal x=1\nevent p1 internal x=1\n",
    )
    .unwrap();
    let out = hbtl()
        .args(["lattice", &trace, "--highlight", "x@0 = 1 & x@1 = 1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Exactly one of the four cuts satisfies the conjunction.
    assert_eq!(text.matches("style=dashed").count(), 1, "{text}");
}

#[test]
fn simulate_supports_all_protocols() {
    for proto in ["ra-mutex", "barrier"] {
        let trace = tmp(&format!("{proto}.json"));
        let out = hbtl().args(["simulate", proto, &trace]).output().unwrap();
        assert!(out.status.success(), "{proto}");
    }
}

#[test]
fn nested_formulas_require_the_flag() {
    let trace = tmp("nested.json");
    assert!(hbtl()
        .args(["simulate", "mutex", &trace])
        .output()
        .unwrap()
        .status
        .success());
    let denied = hbtl()
        .args(["check", &trace, "AG(EF(crit@0 = 1))"])
        .output()
        .unwrap();
    assert!(!denied.status.success());
    assert!(String::from_utf8_lossy(&denied.stderr).contains("--nested"));
    let ok = hbtl()
        .args(["check", &trace, "AG(EF(crit@0 = 1))", "--nested"])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("baseline"));
}

#[test]
fn monitor_serve_send_stats_shutdown_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    // Fig. 2(a)-style trace in the text format: the monitor must find
    // EF(x@0=2 ∧ x@1=1) at the least cut (2,1) even though `send`
    // replays the events through a causality-respecting shuffle.
    let trace = tmp("monitor-fig2.txt");
    std::fs::write(
        &trace,
        "processes 2\nvars x\n\
         event p0 internal x=1\nevent p0 send m0 x=2\nevent p0 internal x=3\n\
         event p1 internal x=1\nevent p1 recv m0 x=2\nevent p1 internal x=3\n",
    )
    .unwrap();

    // Port 0: the server prints the OS-assigned address on stderr.
    let mut server = hbtl()
        .args(["monitor", "serve", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut first_line = String::new();
    BufReader::new(server.stderr.take().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line
        .split_whitespace()
        .find(|w| w.parse::<std::net::SocketAddr>().is_ok())
        .expect("address in banner")
        .to_string();

    let send = hbtl()
        .args([
            "monitor",
            "send",
            &addr,
            &trace,
            "--session",
            "fig2",
            "--conj",
            "0:x=2,1:x=1",
            "--seed",
            "11",
            "--window",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        send.status.success(),
        "{}",
        String::from_utf8_lossy(&send.stderr)
    );
    let text = String::from_utf8_lossy(&send.stdout);
    assert!(text.contains("sent 6 events"), "{text}");
    assert!(text.contains("p0: detected at cut [2, 1]"), "{text}");

    let stats = hbtl().args(["monitor", "stats", &addr]).output().unwrap();
    assert!(stats.status.success());
    let stats_text = String::from_utf8_lossy(&stats.stdout);
    assert!(stats_text.contains("events_ingested"), "{stats_text}");
    assert!(stats_text.contains("events_delivered  6"), "{stats_text}");
    assert!(stats_text.contains("events_held  0"), "{stats_text}");

    let down = hbtl()
        .args(["monitor", "shutdown", &addr])
        .output()
        .unwrap();
    assert!(down.status.success());
    let status = server.wait().expect("server exits after shutdown");
    assert!(status.success());
}

#[test]
fn monitor_send_rejects_bad_predicate_spec() {
    let out = hbtl()
        .args([
            "monitor",
            "send",
            "127.0.0.1:1",
            "nope.json",
            "--conj",
            "zebra",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad clause"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn usage_mentions_monitor_commands() {
    let out = hbtl().output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("monitor serve"), "{text}");
    assert!(text.contains("monitor send"), "{text}");
}

#[test]
fn usage_mentions_gateway_and_loadgen_commands() {
    let out = hbtl().output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("gateway serve"), "{text}");
    assert!(text.contains("gateway drain"), "{text}");
    assert!(text.contains("loadgen"), "{text}");
    assert!(text.contains("--retry"), "{text}");
    assert!(text.contains("--prometheus"), "{text}");
}

#[test]
fn gateway_serve_requires_a_backend() {
    let out = hbtl()
        .args(["gateway", "serve", "127.0.0.1:0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--backend"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stats_flags_are_mutually_exclusive() {
    let out = hbtl()
        .args(["monitor", "stats", "127.0.0.1:1", "--json", "--prometheus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_retry_value_is_rejected() {
    let out = hbtl()
        .args(["monitor", "stats", "127.0.0.1:1", "--retry", "lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad --retry"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
