//! End-to-end tests of the `hbtl` binary itself.

use std::process::Command;

fn hbtl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hbtl"))
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("hbtl-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn simulate_then_check_mutual_exclusion() {
    let trace = tmp("mutex.json");
    let out = hbtl()
        .args(["simulate", "mutex", &trace])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = hbtl()
        .args(["check", &trace, "AG(!(crit@0 = 1 & crit@1 = 1))"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("= true"), "{text}");
    assert!(text.contains("engine:"), "{text}");
}

#[test]
fn check_prints_violation_evidence() {
    // A hand-written racy trace in the text format.
    let trace = tmp("racy.txt");
    std::fs::write(
        &trace,
        "processes 2\nvars crit\nevent p0 internal crit=1\nevent p0 internal crit=0\nevent p1 internal crit=1\nevent p1 internal crit=0\n",
    )
    .unwrap();
    let out = hbtl()
        .args(["check", &trace, "EF(crit@0 = 1 & crit@1 = 1)"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("= true"), "{text}");
    assert!(text.contains("evidence cut: (1,1)"), "{text}");
    assert!(text.contains("frontier:"), "{text}");
}

#[test]
fn info_and_dot_and_lattice() {
    let trace = tmp("leader.json");
    assert!(hbtl()
        .args(["simulate", "leader", &trace])
        .output()
        .unwrap()
        .status
        .success());

    let info = hbtl().args(["info", &trace]).output().unwrap();
    assert!(info.status.success());
    assert!(String::from_utf8_lossy(&info.stdout).contains("processes: 5"));

    let dot = hbtl().args(["dot", &trace]).output().unwrap();
    assert!(String::from_utf8_lossy(&dot.stdout).contains("digraph computation"));

    let lat = hbtl().args(["lattice", &trace, "100000"]).output().unwrap();
    assert!(
        String::from_utf8_lossy(&lat.stdout).contains("digraph lattice") || !lat.status.success() // explosion beyond the limit is fine
    );
}

#[test]
fn convert_between_formats() {
    let json = tmp("pipe.json");
    let txt = tmp("pipe.txt");
    assert!(hbtl()
        .args(["simulate", "pipeline", &json])
        .output()
        .unwrap()
        .status
        .success());
    assert!(hbtl()
        .args(["convert", &json, &txt])
        .output()
        .unwrap()
        .status
        .success());
    let back = tmp("pipe2.json");
    assert!(hbtl()
        .args(["convert", &txt, &back])
        .output()
        .unwrap()
        .status
        .success());
    // Both JSON files describe the same computation.
    let a = hb_tracefmt::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let b = hb_tracefmt::from_json(&std::fs::read_to_string(&back).unwrap()).unwrap();
    assert_eq!(a.num_events(), b.num_events());
    assert_eq!(a.messages(), b.messages());
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = hbtl().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = hbtl()
        .args(["check", "/nonexistent", "true"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn check_reports_parse_errors() {
    let trace = tmp("mutex2.json");
    assert!(hbtl()
        .args(["simulate", "mutex", &trace])
        .output()
        .unwrap()
        .status
        .success());
    let out = hbtl().args(["check", &trace, "AG((("]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}

#[test]
fn lattice_highlight_patterns_satisfying_cuts() {
    let trace = tmp("hl.txt");
    std::fs::write(
        &trace,
        "processes 2\nvars x\nevent p0 internal x=1\nevent p1 internal x=1\n",
    )
    .unwrap();
    let out = hbtl()
        .args(["lattice", &trace, "--highlight", "x@0 = 1 & x@1 = 1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Exactly one of the four cuts satisfies the conjunction.
    assert_eq!(text.matches("style=dashed").count(), 1, "{text}");
}

#[test]
fn simulate_supports_all_protocols() {
    for proto in ["ra-mutex", "barrier"] {
        let trace = tmp(&format!("{proto}.json"));
        let out = hbtl().args(["simulate", proto, &trace]).output().unwrap();
        assert!(out.status.success(), "{proto}");
    }
}

#[test]
fn nested_formulas_require_the_flag() {
    let trace = tmp("nested.json");
    assert!(hbtl()
        .args(["simulate", "mutex", &trace])
        .output()
        .unwrap()
        .status
        .success());
    let denied = hbtl()
        .args(["check", &trace, "AG(EF(crit@0 = 1))"])
        .output()
        .unwrap();
    assert!(!denied.status.success());
    assert!(String::from_utf8_lossy(&denied.stderr).contains("--nested"));
    let ok = hbtl()
        .args(["check", &trace, "AG(EF(crit@0 = 1))", "--nested"])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("baseline"));
}
