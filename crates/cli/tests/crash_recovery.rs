//! Crash-recovery acceptance test for the durable monitor.
//!
//! The scenario the WAL exists for: a real `hbtl monitor serve
//! --data-dir` process ingests half a trace over TCP, is SIGKILLed
//! mid-session, restarts on the same directory, receives the rest of
//! the trace from a fresh connection — and the verdict it settles names
//! the *same least satisfying cut* the offline detector computes on the
//! complete recorded trace.

#![cfg(unix)]

use hb_computation::{Computation, ComputationBuilder, VarId};
use hb_detect::ef_linear;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sim::causal_shuffle;
use hb_tracefmt::wire::{
    read_frame, write_frame, ClientMsg, ServerMsg, WireClause, WireMode, WirePredicate, WireVerdict,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Fig. 2(a) of the paper with a per-process step counter.
fn fig2a() -> (Computation, VarId, VarId) {
    let mut b = ComputationBuilder::new(2);
    let x0 = b.var("x0");
    let x1 = b.var("x1");
    b.internal(0).label("e1").set(x0, 1).done();
    let m = b.send(0).label("e2").set(x0, 2).done_send();
    b.internal(0).label("e3").set(x0, 3).done();
    b.internal(1).label("f1").set(x1, 1).done();
    b.receive(1, m).label("f2").set(x1, 2).done();
    b.internal(1).label("f3").set(x1, 3).done();
    (b.finish().expect("fig 2(a) is well-formed"), x0, x1)
}

struct Server {
    child: Child,
    addr: String,
    stderr: BufReader<std::process::ChildStderr>,
}

/// Spawns `hbtl monitor serve 127.0.0.1:0 --data-dir …` and parses the
/// actual address from the startup banner — no port-picking races.
fn spawn_server(data_dir: &Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args([
            "monitor",
            "serve",
            "127.0.0.1:0",
            "--data-dir",
            &data_dir.to_string_lossy(),
            "--sync",
            "always",
            "--snapshot-every",
            "3",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address in banner")
                .to_string();
        }
    };
    Server {
        child,
        addr,
        stderr,
    }
}

fn connect(addr: &str) -> (BufWriter<TcpStream>, BufReader<TcpStream>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let w = BufWriter::new(s.try_clone().expect("clone stream"));
                return (w, BufReader::new(s));
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn recv(r: &mut BufReader<TcpStream>) -> ServerMsg {
    read_frame::<_, ServerMsg>(r)
        .expect("well-formed frame")
        .expect("server still connected")
}

fn event_msg(comp: &Computation, e: hb_computation::EventId) -> ClientMsg {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    let set: BTreeMap<String, i64> = comp
        .vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect();
    ClientMsg::Event {
        session: "crash".into(),
        p: e.process,
        clock: comp.clock(e).components().to_vec(),
        set,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hbtl-crash-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_mid_trace_then_recover_matches_offline_least_cut() {
    let (comp, x0, x1) = fig2a();

    // Offline ground truth on the complete trace.
    let p = Conjunctive::new(vec![
        (0, LocalExpr::Cmp(x0, CmpOp::Eq, 2)),
        (1, LocalExpr::Cmp(x1, CmpOp::Eq, 1)),
    ]);
    let offline = ef_linear(&comp, &p);
    assert!(offline.holds);
    let least = offline.witness.expect("witness cut");
    assert_eq!(least.counters(), &[2, 1]);

    let data_dir = fresh_dir("sigkill");
    let order = causal_shuffle(&comp, 0xdead, 4);
    let (first_half, second_half) = order.split_at(order.len() / 2);

    // Phase 1: open the session and stream the first half.
    let server = spawn_server(&data_dir);
    {
        let (mut w, mut r) = connect(&server.addr);
        write_frame(
            &mut w,
            &ClientMsg::Open {
                session: "crash".into(),
                processes: 2,
                vars: vec!["x0".into(), "x1".into()],
                initial: vec![],
                predicates: vec![WirePredicate {
                    id: "ef".into(),
                    mode: WireMode::Conjunctive,
                    clauses: vec![
                        WireClause {
                            process: 0,
                            var: "x0".into(),
                            op: "=".into(),
                            value: 2,
                        },
                        WireClause {
                            process: 1,
                            var: "x1".into(),
                            op: "=".into(),
                            value: 1,
                        },
                    ],
                    pattern: None,
                }],
                dist: None,
            },
        )
        .expect("open frame");
        assert!(matches!(recv(&mut r), ServerMsg::Opened { .. }));
        for e in first_half {
            write_frame(&mut w, &event_msg(&comp, *e)).expect("event frame");
        }
        // Durability barrier: frames on one connection are ingested in
        // order and every message is WAL-appended (fsync: always)
        // before it is acted on, so once the stats reply arrives the
        // first half is on disk. The predicate can already be detected
        // inside the first half, and the shard pushes that verdict to
        // this connection asynchronously — it may land just before the
        // stats reply, so skip past it.
        write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
        loop {
            match recv(&mut r) {
                ServerMsg::Stats { .. } => break,
                ServerMsg::Verdict { .. } => {}
                other => panic!("unexpected message before stats: {other:?}"),
            }
        }
    }

    // Phase 2: SIGKILL — no shutdown hook runs, no snapshot is taken.
    let mut child = server.child;
    child.kill().expect("sigkill");
    child.wait().expect("reap");
    drop(server.stderr);

    // Phase 3: restart on the same directory; the banner reports what
    // recovery rebuilt.
    let mut server = spawn_server(&data_dir);
    {
        // The session must come back without a new Open: the first
        // frame that names it re-attaches this connection as its sink.
        let (mut w, mut r) = connect(&server.addr);
        for e in second_half {
            write_frame(&mut w, &event_msg(&comp, *e)).expect("event frame");
        }
        write_frame(
            &mut w,
            &ClientMsg::Close {
                session: "crash".into(),
            },
        )
        .expect("close frame");

        let mut verdicts: Vec<(String, WireVerdict)> = Vec::new();
        let discarded = loop {
            match recv(&mut r) {
                ServerMsg::Verdict {
                    predicate, verdict, ..
                } => verdicts.push((predicate, verdict)),
                ServerMsg::Closed { discarded, .. } => break discarded,
                ServerMsg::Error { message, .. } => panic!("server error: {message}"),
                other => panic!("unexpected message: {other:?}"),
            }
        };
        assert_eq!(discarded, 0, "the shuffle is a permutation");
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].0, "ef");
        // The online verdict across the crash equals the offline least
        // satisfying cut on the uninterrupted trace.
        assert_eq!(
            verdicts[0].1,
            WireVerdict::Detected(least.counters().to_vec())
        );
    }

    // Phase 4: graceful shutdown, then the offline tooling agrees the
    // directory is healthy.
    let (mut w, mut r) = connect(&server.addr);
    write_frame(&mut w, &ClientMsg::Shutdown).expect("shutdown frame");
    let _ = read_frame::<_, ServerMsg>(&mut r);
    server.child.wait().expect("graceful exit");

    let verify = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(["store", "verify", &data_dir.to_string_lossy()])
        .output()
        .expect("hbtl store verify runs");
    assert!(
        verify.status.success(),
        "{}",
        String::from_utf8_lossy(&verify.stderr)
    );
    assert!(
        String::from_utf8_lossy(&verify.stdout).contains("verification passed"),
        "{}",
        String::from_utf8_lossy(&verify.stdout)
    );
}

/// The restart banner must actually report recovered state — this pins
/// the recovery path (vs. silently starting empty, which would also
/// pass the verdict check if the second half alone satisfied EF).
#[test]
fn restart_banner_reports_recovered_sessions() {
    let (comp, _, _) = fig2a();
    let data_dir = fresh_dir("banner");

    let server = spawn_server(&data_dir);
    {
        let (mut w, mut r) = connect(&server.addr);
        write_frame(
            &mut w,
            &ClientMsg::Open {
                session: "crash".into(),
                processes: 2,
                vars: vec!["x0".into(), "x1".into()],
                initial: vec![],
                predicates: vec![],
                dist: None,
            },
        )
        .expect("open frame");
        assert!(matches!(recv(&mut r), ServerMsg::Opened { .. }));
        // One event only: Open + Event = 2 records, below the
        // --snapshot-every 3 threshold, so recovery must come from WAL
        // replay rather than a snapshot.
        for e in causal_shuffle(&comp, 1, 2).iter().take(1) {
            write_frame(&mut w, &event_msg(&comp, *e)).expect("event frame");
        }
        write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
        assert!(matches!(recv(&mut r), ServerMsg::Stats { .. }));
    }
    let mut child = server.child;
    child.kill().expect("sigkill");
    child.wait().expect("reap");

    let mut server = spawn_server(&data_dir);
    // spawn_server consumed lines up to "listening on"; recovery is
    // announced *before* that, so re-reading is impossible — instead,
    // ask the live service: the recovery counters are in the metrics.
    let (mut w, mut r) = connect(&server.addr);
    write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
    let ServerMsg::Stats { counters } = recv(&mut r) else {
        panic!("expected stats reply");
    };
    assert_eq!(counters.get("sessions_recovered"), Some(&1));
    assert!(counters.get("recovery_replayed").copied().unwrap_or(0) >= 2);

    write_frame(&mut w, &ClientMsg::Shutdown).expect("shutdown frame");
    let _ = read_frame::<_, ServerMsg>(&mut r);
    server.child.wait().expect("graceful exit");
}
