//! Differential equivalence for distributed detection: the same
//! simulated computations stream through real `hbtl` processes — once
//! against a single `monitor serve` backend, and once as distributed
//! sessions through `gateway serve` over K+1 backends for K = 2 and
//! K = 3 — and every run must settle to verdict sequences that are
//! **byte-identical** to each other and to the sequence the offline
//! oracle (`ef_linear`) predicts.
//!
//! Distribution is a deployment choice; this test is the lock that
//! keeps it invisible in the verdicts. A second scenario SIGKILLs a
//! *worker-only* backend (found via the gateway's topology counters,
//! never the aggregator) mid-stream: the gateway re-derives the lost
//! partition from its journal onto a surviving backend, and the
//! verdicts across the crash still match the oracle byte for byte.

#![cfg(unix)]

use hb_computation::{Computation, EventId};
use hb_detect::ef_linear;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sdk::{SessionBuilder, WireVerdict};
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use hb_tracefmt::wire::{read_frame, write_frame, ClientMsg, ServerMsg, WIRE_VERSION};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};

const PROCESSES: usize = 4;
const EVENTS_PER_PROCESS: usize = 32;
const SESSIONS: usize = 2;

/// One pre-planned session: the computation, a causality-respecting
/// delivery order, and the verdict map the offline oracle predicts.
struct Plan {
    name: String,
    comp: Computation,
    order: Vec<EventId>,
    expected: BTreeMap<String, WireVerdict>,
}

/// Conjunctive `x = k` on processes 0 and 1 for k in 0..3 — sparse
/// enough (values drawn from 6) that verdicts go both ways — plus an
/// impossible all-process `x = -1` that must settle Impossible from
/// pure absence.
fn predicate_clauses(comp: &Computation) -> Vec<(String, Vec<(usize, i64)>)> {
    let mut preds: Vec<(String, Vec<(usize, i64)>)> = (0..3)
        .map(|k| (format!("p{k}"), vec![(0, k as i64), (1, k as i64)]))
        .collect();
    preds.push((
        "nope".into(),
        (0..comp.num_processes()).map(|p| (p, -1)).collect(),
    ));
    preds
}

/// What every online run must settle to, per the offline detector.
fn oracle_verdicts(comp: &Computation) -> BTreeMap<String, WireVerdict> {
    let x = comp.vars().lookup("x").expect("sim computations declare x");
    predicate_clauses(comp)
        .into_iter()
        .map(|(id, clauses)| {
            let goal = Conjunctive::new(
                clauses
                    .into_iter()
                    .map(|(p, v)| (p, LocalExpr::Cmp(x, CmpOp::Eq, v)))
                    .collect(),
            );
            let offline = ef_linear(comp, &goal);
            let verdict = match offline.witness {
                Some(least) if offline.holds => WireVerdict::Detected(least.counters().to_vec()),
                _ => WireVerdict::Impossible,
            };
            (id, verdict)
        })
        .collect()
}

fn build_plans() -> Vec<Plan> {
    (0..SESSIONS as u64)
        .map(|s| {
            let comp = random_computation(RandomSpec {
                processes: PROCESSES,
                events_per_process: EVENTS_PER_PROCESS,
                send_percent: 30,
                value_range: 6,
                seed: 0x00d1_57e9_u64.wrapping_add(s * 7919),
            });
            let order = causal_shuffle(&comp, s ^ 0xd157, 8);
            let expected = oracle_verdicts(&comp);
            Plan {
                name: format!("d{s}"),
                comp,
                order,
                expected,
            }
        })
        .collect()
}

/// The full state map at an event, exactly as an instrumented program
/// would report it.
fn state_map(comp: &Computation, e: EventId) -> BTreeMap<String, i64> {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    comp.vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect()
}

/// Serializes a settled verdict map as the wire frames the server sends
/// at close, in predicate order. Two runs agree iff these bytes agree.
fn verdict_bytes(session: &str, verdicts: &BTreeMap<String, WireVerdict>) -> Vec<u8> {
    let mut buf = Vec::new();
    for (predicate, verdict) in verdicts {
        write_frame(
            &mut buf,
            &ServerMsg::Verdict {
                session: session.to_string(),
                predicate: predicate.clone(),
                verdict: verdict.clone(),
            },
        )
        .expect("verdict frames encode");
    }
    buf
}

/// Spawns an `hbtl` server subcommand and waits for its banner,
/// returning the child and the address it listens on.
#[allow(clippy::zombie_processes)]
fn spawn_server(args: &[&str], addr: &str) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("{addr}: server exited before listening: {status}");
        }
        if line.contains("listening on ") {
            return child;
        }
    }
}

fn ephemeral_addr() -> String {
    let port = TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
        .port();
    format!("127.0.0.1:{port}")
}

fn spawn_monitor() -> (Child, String) {
    let addr = ephemeral_addr();
    let child = spawn_server(&["monitor", "serve", addr.as_str()], &addr);
    (child, addr)
}

fn spawn_gateway(backends: &[String]) -> (Child, String) {
    let addr = ephemeral_addr();
    let mut args = vec!["gateway", "serve", addr.as_str()];
    for b in backends {
        args.push("--backend");
        args.push(b.as_str());
    }
    let child = spawn_server(&args, &addr);
    (child, addr)
}

/// Fetches aggregated counters over a raw handshaken connection.
fn fetch_counters(addr: &str) -> BTreeMap<String, u64> {
    let stream = TcpStream::connect(addr).expect("connect for stats");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .expect("hello");
    match read_frame::<_, ServerMsg>(&mut reader).expect("welcome frame") {
        Some(ServerMsg::Welcome { .. }) => {}
        other => panic!("expected welcome, got {other:?}"),
    }
    write_frame(&mut writer, &ClientMsg::Stats).expect("stats request");
    match read_frame::<_, ServerMsg>(&mut reader).expect("stats frame") {
        Some(ServerMsg::Stats { counters }) => counters,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Opens one plan's session over the SDK (distributed over `k` workers
/// when `k > 0`) against `addr`.
fn open_plan(addr: &str, plan: &Plan, k: usize) -> hb_sdk::SdkSession {
    let mut builder = SessionBuilder::new(&plan.name, plan.comp.num_processes())
        .var("x")
        .distributed(k);
    for (id, clauses) in predicate_clauses(&plan.comp) {
        let clauses: Vec<(usize, &str, &str, i64)> =
            clauses.iter().map(|&(p, v)| (p, "x", "=", v)).collect();
        builder = builder.conjunctive(&id, &clauses);
    }
    let (session, _tracers) = builder.connect(addr).expect("open over TCP");
    session
}

/// Streams every plan through `addr` and returns the concatenated
/// settled-verdict bytes in plan order.
fn run_sessions(addr: &str, k: usize, plans: &[Plan]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for plan in plans {
        let session = open_plan(addr, plan, k);
        for &e in &plan.order {
            let accepted = session.emit(
                e.process,
                plan.comp.clock(e).components().to_vec(),
                state_map(&plan.comp, e),
            );
            assert!(accepted, "{}: event dropped by the SDK queue", plan.name);
        }
        let report = session.close().expect("close settles");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.discarded, 0, "every event deliverable");
        bytes.extend(verdict_bytes(&plan.name, &report.verdicts));
    }
    bytes
}

fn reap(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// K = 2 and K = 3 distributed sessions (through a live gateway over
/// K+1 live backends) settle to the same verdict bytes as a
/// single-backend run and as the offline oracle.
#[test]
fn distributed_sessions_settle_to_the_single_backend_bytes() {
    let plans = build_plans();
    let oracle: Vec<u8> = plans
        .iter()
        .flat_map(|p| verdict_bytes(&p.name, &p.expected))
        .collect();
    // Guard against a degenerate fixture: both verdict kinds must occur.
    let all: Vec<&WireVerdict> = plans.iter().flat_map(|p| p.expected.values()).collect();
    assert!(all.iter().any(|v| matches!(v, WireVerdict::Detected(_))));
    assert!(all.iter().any(|v| matches!(v, &&WireVerdict::Impossible)));

    // Leg 1: one plain backend, no gateway.
    let single = {
        let (child, addr) = spawn_monitor();
        let bytes = run_sessions(&addr, 0, &plans);
        reap(child);
        bytes
    };
    assert_eq!(
        single, oracle,
        "single-backend verdicts must match the offline oracle"
    );

    // Legs 2 and 3: distributed over k workers, k+1 live backends.
    let total_events: u64 = plans.iter().map(|p| p.order.len() as u64).sum();
    for k in [2usize, 3] {
        let monitors: Vec<(Child, String)> = (0..=k).map(|_| spawn_monitor()).collect();
        let backends: Vec<String> = monitors.iter().map(|(_, a)| a.clone()).collect();
        let (gw_child, gw_addr) = spawn_gateway(&backends);
        let bytes = run_sessions(&gw_addr, k, &plans);
        assert_eq!(
            bytes, oracle,
            "k={k}: distributed verdicts must be byte-identical to the oracle"
        );
        let counters = fetch_counters(&gw_addr);
        assert_eq!(counters["gateway_dist_sessions_routed"], SESSIONS as u64);
        assert!(
            counters["gateway_dist_updates_relayed"] >= total_events,
            "k={k}: one slice-update per event must have crossed the gateway"
        );
        assert_eq!(counters["gateway_sessions_dropped"], 0, "k={k}");
        assert_eq!(counters["gateway_partitions_failed_over"], 0, "k={k}");
        reap(gw_child);
        for (child, _) in monitors {
            reap(child);
        }
    }
}

/// SIGKILL a worker-only backend mid-session: the gateway re-derives
/// the lost partition from its journal onto a survivor, and the
/// settled verdicts still match the offline oracle byte for byte. The
/// victim is found through the gateway's own topology counters — the
/// deployment-facing way to ask "which process may I lose?".
#[test]
fn worker_backend_sigkill_mid_stream_keeps_the_oracle_verdicts() {
    let plan = &build_plans()[0];
    let oracle = verdict_bytes(&plan.name, &plan.expected);
    let mut monitors: Vec<Option<(Child, String)>> =
        (0..3).map(|_| Some(spawn_monitor())).collect();
    let backends: Vec<String> = monitors
        .iter()
        .map(|m| m.as_ref().expect("just spawned").1.clone())
        .collect();
    let (gw_child, gw_addr) = spawn_gateway(&backends);

    let session = open_plan(&gw_addr, plan, 2);
    let (first_half, second_half) = plan.order.split_at(plan.order.len() / 2);
    for &e in first_half {
        let accepted = session.emit(
            e.process,
            plan.comp.clock(e).components().to_vec(),
            state_map(&plan.comp, e),
        );
        assert!(accepted, "event dropped by the SDK queue");
    }

    // Ask the gateway where the session lives, and kill a backend that
    // holds only worker partitions (the aggregator does not fail over).
    let counters = fetch_counters(&gw_addr);
    let agg = counters[&format!("dist.{}.aggregator", plan.name)];
    let victim = (0..2u64)
        .map(|w| counters[&format!("dist.{}.w{w}", plan.name)])
        .find(|&b| b != agg)
        .expect("with 3 backends and k=2 some worker is not on the aggregator")
        as usize;
    let (victim_child, _) = monitors[victim].take().expect("victim still alive");
    reap(victim_child);

    for &e in second_half {
        let accepted = session.emit(
            e.process,
            plan.comp.clock(e).components().to_vec(),
            state_map(&plan.comp, e),
        );
        assert!(accepted, "event dropped by the SDK queue");
    }
    let report = session.close().expect("close settles across the crash");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.discarded, 0);
    assert_eq!(
        verdict_bytes(&plan.name, &report.verdicts),
        oracle,
        "verdicts across a worker SIGKILL must match the offline oracle"
    );

    let counters = fetch_counters(&gw_addr);
    assert!(
        counters["gateway_partitions_failed_over"] >= 1,
        "the lost partition was re-derived, not silently dropped"
    );
    assert_eq!(counters["gateway_sessions_dropped"], 0);
    assert_eq!(
        counters["gateway_sessions_failed_over"], 0,
        "the aggregator never moved"
    );

    reap(gw_child);
    for m in monitors.into_iter().flatten() {
        reap(m.0);
    }
}
