//! Failover acceptance test for the gateway, end to end over real
//! processes.
//!
//! Two `hbtl monitor serve` backends sit behind one `hbtl gateway
//! serve` process. A client streams half of Fig. 2(a) into a session,
//! then the backend that owns the session is SIGKILLed — no shutdown
//! hook, no session flush. The gateway must re-place the session on the
//! survivor, replay its journal, and finish the trace so that the
//! client sees exactly one verdict (equal to the offline detector's
//! least cut) and exactly one `Closed` — no duplicates, nothing lost.

#![cfg(unix)]

use hb_computation::{Computation, ComputationBuilder, VarId};
use hb_detect::ef_linear;
use hb_gateway::rendezvous;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sim::causal_shuffle;
use hb_tracefmt::wire::{
    read_frame, write_frame, ClientMsg, ServerMsg, WireClause, WireMode, WirePredicate, WireVerdict,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Fig. 2(a) of the paper.
fn fig2a() -> (Computation, VarId, VarId) {
    let mut b = ComputationBuilder::new(2);
    let x0 = b.var("x0");
    let x1 = b.var("x1");
    b.internal(0).label("e1").set(x0, 1).done();
    let m = b.send(0).label("e2").set(x0, 2).done_send();
    b.internal(0).label("e3").set(x0, 3).done();
    b.internal(1).label("f1").set(x1, 1).done();
    b.receive(1, m).label("f2").set(x1, 2).done();
    b.internal(1).label("f3").set(x1, 3).done();
    (b.finish().expect("fig 2(a) is well-formed"), x0, x1)
}

struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns an `hbtl` server subcommand on port 0 and parses the actual
/// address from the startup banner — no port-picking races.
fn spawn_server(args: &[&str]) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address in banner")
                .to_string();
        }
    };
    // Let the banner keep flowing to nowhere rather than filling a pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while stderr.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Server { child, addr }
}

fn spawn_monitor() -> Server {
    spawn_server(&["monitor", "serve", "127.0.0.1:0"])
}

fn spawn_gateway(backends: &[&str]) -> Server {
    let mut args = vec!["gateway", "serve", "127.0.0.1:0"];
    for b in backends {
        args.push("--backend");
        args.push(b);
    }
    // Probe fast so the test does not wait out the default backoff.
    spawn_server(&args)
}

fn connect(addr: &str) -> (BufWriter<TcpStream>, BufReader<TcpStream>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                let w = BufWriter::new(s.try_clone().expect("clone stream"));
                return (w, BufReader::new(s));
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn recv(r: &mut BufReader<TcpStream>) -> ServerMsg {
    read_frame::<_, ServerMsg>(r)
        .expect("well-formed frame")
        .expect("server still connected")
}

fn event_msg(session: &str, comp: &Computation, e: hb_computation::EventId) -> ClientMsg {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    let set: BTreeMap<String, i64> = comp
        .vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect();
    ClientMsg::Event {
        session: session.into(),
        p: e.process,
        clock: comp.clock(e).components().to_vec(),
        set,
    }
}

/// A session name the gateway's rendezvous hash places on `target`.
fn name_on(addrs: &[&str], target: usize) -> String {
    for i in 0.. {
        let name = format!("failover-{i}");
        let picked = rendezvous::pick(addrs.iter().enumerate().map(|(j, a)| (j, *a)), &name);
        if picked == Some(target) {
            return name;
        }
    }
    unreachable!()
}

fn gateway_stats(addr: &str) -> BTreeMap<String, u64> {
    let (mut w, mut r) = connect(addr);
    write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
    match recv(&mut r) {
        ServerMsg::Stats { counters } => counters,
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn sigkill_owner_backend_mid_trace_fails_over_without_verdict_loss() {
    let (comp, x0, x1) = fig2a();

    // Offline ground truth on the complete trace.
    let p = Conjunctive::new(vec![
        (0, LocalExpr::Cmp(x0, CmpOp::Eq, 2)),
        (1, LocalExpr::Cmp(x1, CmpOp::Eq, 1)),
    ]);
    let offline = ef_linear(&comp, &p);
    assert!(offline.holds);
    let least = offline.witness.expect("witness cut");
    assert_eq!(least.counters(), &[2, 1]);

    let backend_a = spawn_monitor();
    let backend_b = spawn_monitor();
    let addrs = [backend_a.addr.as_str(), backend_b.addr.as_str()];
    let gateway = spawn_gateway(&addrs);

    // Place the session on backend A by name, so the test knows which
    // process to kill without reaching into the gateway.
    let session = name_on(&addrs, 0);

    let (mut w, mut r) = connect(&gateway.addr);
    write_frame(
        &mut w,
        &ClientMsg::Open {
            session: session.clone(),
            processes: 2,
            vars: vec!["x0".into(), "x1".into()],
            initial: vec![],
            predicates: vec![WirePredicate {
                id: "ef".into(),
                mode: WireMode::Conjunctive,
                clauses: vec![
                    WireClause {
                        process: 0,
                        var: "x0".into(),
                        op: "=".into(),
                        value: 2,
                    },
                    WireClause {
                        process: 1,
                        var: "x1".into(),
                        op: "=".into(),
                        value: 1,
                    },
                ],
                pattern: None,
            }],
            dist: None,
        },
    )
    .expect("open frame");
    assert!(matches!(recv(&mut r), ServerMsg::Opened { .. }));

    let order = causal_shuffle(&comp, 0xfa11, 4);
    let (first_half, second_half) = order.split_at(order.len() / 2);
    for e in first_half {
        write_frame(&mut w, &event_msg(&session, &comp, *e)).expect("event frame");
    }
    // Settle the pipeline: a stats exchange proves the gateway has
    // dispatched everything the client sent so far.
    let before = gateway_stats(&gateway.addr);
    assert!(before.get("gateway_sessions_routed") >= Some(&1));

    // SIGKILL the owner — abrupt death, no session flush.
    let mut owner = backend_a;
    owner.child.kill().expect("sigkill backend");
    owner.child.wait().expect("reap backend");

    // Finish the trace through the same client connection. The gateway
    // notices the dead backend (send error or reader EOF), re-places
    // the session on the survivor, and replays the journal.
    for e in second_half {
        write_frame(&mut w, &event_msg(&session, &comp, *e)).expect("event frame");
    }
    write_frame(
        &mut w,
        &ClientMsg::Close {
            session: session.clone(),
        },
    )
    .expect("close frame");

    let mut verdicts: Vec<(String, WireVerdict)> = Vec::new();
    let mut closes = 0usize;
    while closes == 0 {
        match recv(&mut r) {
            ServerMsg::Verdict {
                predicate, verdict, ..
            } => verdicts.push((predicate, verdict)),
            ServerMsg::Closed { discarded, .. } => {
                assert_eq!(discarded, 0, "the shuffle is a permutation");
                closes += 1;
            }
            ServerMsg::Error { message, .. } => panic!("gateway error: {message}"),
            other => panic!("unexpected message: {other:?}"),
        }
    }

    // Exactly one verdict — the failover replay must not re-announce —
    // and it equals the offline least satisfying cut.
    assert_eq!(verdicts.len(), 1, "verdicts: {verdicts:?}");
    assert_eq!(verdicts[0].0, "ef");
    assert_eq!(
        verdicts[0].1,
        WireVerdict::Detected(least.counters().to_vec())
    );

    // The gateway accounted the failover and replay.
    let after = gateway_stats(&gateway.addr);
    assert!(
        after
            .get("gateway_sessions_failed_over")
            .copied()
            .unwrap_or(0)
            >= 1,
        "stats: {after:?}"
    );
    assert!(
        after.get("gateway_frames_replayed").copied().unwrap_or(0) >= 1,
        "stats: {after:?}"
    );
    assert_eq!(after.get("gateway_backends_healthy"), Some(&1));

    // A fresh session still works against the degraded fleet.
    let (mut w2, mut r2) = connect(&gateway.addr);
    write_frame(
        &mut w2,
        &ClientMsg::Open {
            session: "post-failover".into(),
            processes: 2,
            vars: vec!["x0".into(), "x1".into()],
            initial: vec![],
            predicates: vec![],
            dist: None,
        },
    )
    .expect("open frame");
    assert!(matches!(recv(&mut r2), ServerMsg::Opened { .. }));
    write_frame(
        &mut w2,
        &ClientMsg::Close {
            session: "post-failover".into(),
        },
    )
    .expect("close frame");
    assert!(matches!(recv(&mut r2), ServerMsg::Closed { .. }));
}
