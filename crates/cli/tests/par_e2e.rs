//! Differential end-to-end equivalence for in-session parallel
//! detection: the same wide (24-process) simulated computations stream
//! through a live `hbtl monitor serve` twice — once sequential (the
//! default) and once with `--par-threads 4` — and both runs must
//! settle to **byte-identical** verdict sequences, with the
//! conjunctive subset also matching the offline oracle (`ef_linear`).
//!
//! Parallel detection is a latency optimisation; this test is the lock
//! that keeps it one. The crash scenario goes further: it SIGKILLs a
//! durable server mid-stream and restarts it on the same data
//! directory with the *opposite* parallelism setting — a parallel
//! server's snapshots restored by a sequential one, and vice versa —
//! because `DetectorState` is byte-compatible across the two detector
//! families. Both crossings must settle to the verdicts of an
//! uninterrupted sequential run.

#![cfg(unix)]

use hb_computation::{Computation, EventId};
use hb_detect::ef_linear;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sdk::{SessionBuilder, WireVerdict};
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use hb_tracefmt::wire::{
    read_frame, write_frame, ClientMsg, ServerMsg, WireAtom, WireClause, WireMode, WirePattern,
    WirePredicate,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Wide enough to engage the parallel dead-front search and candidate
/// scans (`PAR_MIN_PROCESSES` = 16), not just the fan-out across
/// monitors.
const PROCESSES: usize = 24;
const EVENTS_PER_PROCESS: usize = 16;
const SESSIONS: usize = 2;
const PAR_FLAGS: [&str; 2] = ["--par-threads", "4"];

struct Plan {
    name: String,
    comp: Computation,
    order: Vec<EventId>,
}

/// Conjunctive predicate mix: cheap pairs, one predicate spanning half
/// the processes (wide membership), and an impossible all-process one.
fn conjunctive_clauses(comp: &Computation) -> Vec<(String, Vec<(usize, i64)>)> {
    let mut preds: Vec<(String, Vec<(usize, i64)>)> = (0..3)
        .map(|k| (format!("p{k}"), vec![(0, k as i64), (1, k as i64)]))
        .collect();
    preds.push(("wide".into(), (0..PROCESSES / 2).map(|p| (p, 1)).collect()));
    preds.push((
        "nope".into(),
        (0..comp.num_processes()).map(|p| (p, -1)).collect(),
    ));
    preds
}

/// What the online monitor must settle the conjunctive predicates to,
/// per the offline detector.
fn oracle_verdicts(comp: &Computation) -> BTreeMap<String, WireVerdict> {
    let x = comp.vars().lookup("x").expect("sim computations declare x");
    conjunctive_clauses(comp)
        .into_iter()
        .map(|(id, clauses)| {
            let goal = Conjunctive::new(
                clauses
                    .into_iter()
                    .map(|(p, v)| (p, LocalExpr::Cmp(x, CmpOp::Eq, v)))
                    .collect(),
            );
            let offline = ef_linear(comp, &goal);
            let verdict = match offline.witness {
                Some(least) if offline.holds => WireVerdict::Detected(least.counters().to_vec()),
                _ => WireVerdict::Impossible,
            };
            (id, verdict)
        })
        .collect()
}

fn build_plans() -> Vec<Plan> {
    (0..SESSIONS as u64)
        .map(|s| {
            let comp = random_computation(RandomSpec {
                processes: PROCESSES,
                events_per_process: EVENTS_PER_PROCESS,
                send_percent: 30,
                value_range: 6,
                seed: 0x9a7_u64.wrapping_add(s * 7919),
            });
            let order = causal_shuffle(&comp, s ^ 0x9a7a11e1, 8);
            Plan {
                name: format!("w{s}"),
                comp,
                order,
            }
        })
        .collect()
}

/// The full state map at an event, exactly as an instrumented program
/// would report it.
fn state_map(comp: &Computation, e: EventId) -> BTreeMap<String, i64> {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    comp.vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect()
}

/// Serializes a settled verdict map as wire frames in predicate order.
/// Two runs agree iff these bytes agree.
fn verdict_bytes(session: &str, verdicts: &BTreeMap<String, WireVerdict>) -> Vec<u8> {
    let mut buf = Vec::new();
    for (predicate, verdict) in verdicts {
        write_frame(
            &mut buf,
            &ServerMsg::Verdict {
                session: session.to_string(),
                predicate: predicate.clone(),
                verdict: verdict.clone(),
            },
        )
        .expect("verdict frames encode");
    }
    buf
}

/// Spawns `hbtl monitor serve` with extra flags and waits for its
/// banner.
#[allow(clippy::zombie_processes)]
fn spawn_monitor(extra: &[&str]) -> (Child, String) {
    let port = TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
        .port();
    let addr = format!("127.0.0.1:{port}");
    let mut args = vec!["monitor", "serve", addr.as_str()];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if line.contains("listening on ") {
            return (child, addr);
        }
    }
}

/// Streams every plan — conjunctive + disjunctive + pattern predicates
/// — through a fresh live monitor over the SDK and collects the
/// settled verdict bytes.
fn run_leg(extra: &[&str]) -> Vec<(String, BTreeMap<String, WireVerdict>)> {
    let (mut child, addr) = spawn_monitor(extra);
    let plans = build_plans();
    let mut out = Vec::new();
    for plan in &plans {
        let mut builder = SessionBuilder::new(&plan.name, plan.comp.num_processes()).var("x");
        for (id, clauses) in conjunctive_clauses(&plan.comp) {
            let clauses: Vec<(usize, &str, &str, i64)> =
                clauses.iter().map(|&(p, v)| (p, "x", "=", v)).collect();
            builder = builder.conjunctive(&id, &clauses);
        }
        let disj: Vec<(usize, &str, &str, i64)> = (0..6).map(|p| (p, "x", "=", 5)).collect();
        builder = builder
            .disjunctive("anyhigh", &disj)
            .pattern("chain", "x=2 -> x=3")
            .expect("pattern parses");
        let (session, _tracers) = builder.connect(&addr).expect("open over TCP");
        for &e in &plan.order {
            let accepted = session.emit(
                e.process,
                plan.comp.clock(e).components().to_vec(),
                state_map(&plan.comp, e),
            );
            assert!(accepted, "{}: event dropped by the SDK queue", plan.name);
        }
        let report = session.close().expect("close settles");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.discarded, 0, "every event deliverable");
        out.push((plan.name.clone(), report.verdicts));
    }
    child.kill().expect("cleanup kill");
    child.wait().expect("cleanup reap");
    out
}

fn leg_bytes(leg: &[(String, BTreeMap<String, WireVerdict>)]) -> Vec<u8> {
    leg.iter()
        .flat_map(|(name, verdicts)| verdict_bytes(name, verdicts))
        .collect()
}

/// A wide session through a live `--par-threads 4` monitor settles to
/// exactly the bytes the sequential monitor settles to, across all
/// three detector families, and the conjunctive subset matches the
/// offline oracle.
#[test]
fn wide_session_parallel_server_matches_sequential_byte_for_byte() {
    let plans = build_plans();
    // Guard against a degenerate fixture: both verdict kinds occur
    // among the conjunctive predicates.
    let all_expected: Vec<WireVerdict> = plans
        .iter()
        .flat_map(|p| oracle_verdicts(&p.comp).into_values())
        .collect();
    assert!(all_expected
        .iter()
        .any(|v| matches!(v, WireVerdict::Detected(_))));
    assert!(all_expected
        .iter()
        .any(|v| matches!(v, WireVerdict::Impossible)));

    let sequential = run_leg(&[]);
    let parallel = run_leg(&PAR_FLAGS);
    assert_eq!(
        leg_bytes(&parallel),
        leg_bytes(&sequential),
        "parallel and sequential verdict sequences must be byte-identical"
    );

    // The parallel leg is also honest in absolute terms: every
    // conjunctive verdict is the offline detector's.
    for ((name, verdicts), plan) in parallel.iter().zip(&plans) {
        for (id, want) in oracle_verdicts(&plan.comp) {
            assert_eq!(
                verdicts.get(&id),
                Some(&want),
                "{name}/{id}: parallel verdict must match the offline oracle"
            );
        }
    }
}

// ---- crash / cross-restore leg --------------------------------------------

fn connect(addr: &str) -> (BufWriter<TcpStream>, BufReader<TcpStream>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let w = BufWriter::new(s.try_clone().expect("clone stream"));
                return (w, BufReader::new(s));
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn recv(r: &mut BufReader<TcpStream>) -> ServerMsg {
    read_frame::<_, ServerMsg>(r)
        .expect("well-formed frame")
        .expect("server still connected")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hbtl-par-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_msg(plan: &Plan) -> ClientMsg {
    let mut predicates: Vec<WirePredicate> = conjunctive_clauses(&plan.comp)
        .into_iter()
        .map(|(id, clauses)| WirePredicate {
            id,
            mode: WireMode::Conjunctive,
            clauses: clauses
                .into_iter()
                .map(|(process, value)| WireClause {
                    process,
                    var: "x".into(),
                    op: "=".into(),
                    value,
                })
                .collect(),
            pattern: None,
        })
        .collect();
    predicates.push(WirePredicate {
        id: "anyhigh".into(),
        mode: WireMode::Disjunctive,
        clauses: (0..6)
            .map(|process| WireClause {
                process,
                var: "x".into(),
                op: "=".into(),
                value: 5,
            })
            .collect(),
        pattern: None,
    });
    predicates.push(WirePredicate {
        id: "chain".into(),
        mode: WireMode::Pattern,
        clauses: vec![],
        pattern: Some(WirePattern {
            atoms: [2, 3]
                .into_iter()
                .map(|value| WireAtom {
                    process: None,
                    var: "x".into(),
                    op: "=".into(),
                    value,
                    causal: false,
                })
                .collect(),
        }),
    });
    ClientMsg::Open {
        session: plan.name.clone(),
        processes: plan.comp.num_processes(),
        vars: vec!["x".into()],
        initial: vec![],
        predicates,
        dist: None,
    }
}

fn event_msg(plan: &Plan, e: EventId) -> ClientMsg {
    ClientMsg::Event {
        session: plan.name.clone(),
        p: e.process,
        clock: plan.comp.clock(e).components().to_vec(),
        set: state_map(&plan.comp, e),
    }
}

/// Streams the first half of the plan into a durable server spawned
/// with `first_extra`, SIGKILLs it, restarts on the same directory
/// with `second_extra`, finishes the stream, and returns the settled
/// verdict bytes.
fn crash_leg(tag: &str, plan: &Plan, first_extra: &[&str], second_extra: &[&str]) -> Vec<u8> {
    let data_dir = fresh_dir(tag);
    let dir_arg = data_dir.to_string_lossy().to_string();
    let persist_flags = [
        "--data-dir",
        dir_arg.as_str(),
        "--sync",
        "always",
        "--snapshot-every",
        "17",
    ];
    let (first_half, second_half) = plan.order.split_at(plan.order.len() / 2);

    // Phase 1: open and stream the first half.
    let mut flags: Vec<&str> = persist_flags.to_vec();
    flags.extend_from_slice(first_extra);
    let (mut child, addr) = spawn_monitor(&flags);
    {
        let (mut w, mut r) = connect(&addr);
        write_frame(&mut w, &open_msg(plan)).expect("open frame");
        assert!(matches!(recv(&mut r), ServerMsg::Opened { .. }));
        for &e in first_half {
            write_frame(&mut w, &event_msg(plan, e)).expect("event frame");
        }
        // Durability barrier: the stats reply proves every prior frame
        // on this connection was WAL-appended (sync: always).
        write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
        loop {
            match recv(&mut r) {
                ServerMsg::Stats { .. } => break,
                ServerMsg::Verdict { .. } => {}
                other => panic!("unexpected message before stats: {other:?}"),
            }
        }
    }

    // Phase 2: SIGKILL — no shutdown hook, no parting snapshot.
    child.kill().expect("sigkill");
    child.wait().expect("reap");

    // Phase 3: restart with the opposite parallelism setting and
    // finish the stream.
    let mut flags: Vec<&str> = persist_flags.to_vec();
    flags.extend_from_slice(second_extra);
    let (mut child, addr) = spawn_monitor(&flags);
    let verdicts = {
        let (mut w, mut r) = connect(&addr);
        for &e in second_half {
            write_frame(&mut w, &event_msg(plan, e)).expect("event frame");
        }
        write_frame(
            &mut w,
            &ClientMsg::Close {
                session: plan.name.clone(),
            },
        )
        .expect("close frame");
        let mut verdicts: BTreeMap<String, WireVerdict> = BTreeMap::new();
        loop {
            match recv(&mut r) {
                ServerMsg::Verdict {
                    predicate, verdict, ..
                } => {
                    verdicts.insert(predicate, verdict);
                }
                ServerMsg::Closed { discarded, .. } => {
                    assert_eq!(discarded, 0, "the shuffle is a permutation");
                    break;
                }
                ServerMsg::Error { message, .. } => panic!("server error: {message}"),
                other => panic!("unexpected message: {other:?}"),
            }
        }
        verdicts
    };
    // Graceful shutdown so the next leg can reuse nothing.
    let (mut w, mut r) = connect(&addr);
    write_frame(&mut w, &ClientMsg::Shutdown).expect("shutdown frame");
    let _ = read_frame::<_, ServerMsg>(&mut r);
    child.wait().expect("graceful exit");
    verdict_bytes(&plan.name, &verdicts)
}

/// Snapshots cross-restore between the detector families: a parallel
/// server's WAL + snapshots finish under a sequential server (and the
/// reverse) to the exact verdicts of an uninterrupted sequential run.
#[test]
fn parallel_snapshots_cross_restore_across_sigkill() {
    let plan = &build_plans()[0];
    // Reference: the same plan, same split, no crash, sequential —
    // driven over the same raw-wire path.
    let reference = crash_leg("reference", plan, &[], &[]);
    let par_then_seq = crash_leg("par-then-seq", plan, &PAR_FLAGS, &[]);
    assert_eq!(
        par_then_seq, reference,
        "a parallel server's snapshots must restore into a sequential server"
    );
    let seq_then_par = crash_leg("seq-then-par", plan, &[], &PAR_FLAGS);
    assert_eq!(
        seq_then_par, reference,
        "a sequential server's snapshots must restore into a parallel server"
    );
}
