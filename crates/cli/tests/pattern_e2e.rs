//! Predictive pattern detection, end-to-end, across a crash.
//!
//! The acceptance differential for hb-pattern: a real `hbtl monitor
//! serve --data-dir` process registers pattern predicates, ingests half
//! a random trace over TCP, is SIGKILLed mid-session (exercising
//! export/restore of the Pareto-frontier detector state through WAL
//! replay and snapshots), restarts on the same directory, receives the
//! rest — and for every trace in the corpus its online verdict equals
//! the brute-force linearization-enumeration oracle run offline on the
//! complete event set. The oracle enumerates linear extensions
//! directly and never uses the pairwise chain lemma the online
//! algorithm is built on, so agreement checks the lemma too.

#![cfg(unix)]

use hb_computation::Computation;
use hb_pattern::{linearization_oracle, PatternEvent};
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use hb_tracefmt::wire::{
    read_frame, write_frame, ClientMsg, ServerMsg, WireAtom, WireMode, WirePattern, WirePredicate,
    WireVerdict,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The two patterns every trace is checked against: one purely
/// linearized chain and one with a causally-ordered (`~>`) edge.
/// Values come from `0..3`, so both verdicts occur across the corpus.
const PATTERNS: [(&str, &[(i64, bool)]); 2] = [
    ("lin", &[(1, false), (2, false)]), // x=1 -> x=2
    ("caus", &[(2, false), (0, true)]), // x=2 ~> x=0
];

fn wire_patterns() -> Vec<WirePredicate> {
    PATTERNS
        .iter()
        .map(|(id, atoms)| WirePredicate {
            id: (*id).into(),
            mode: WireMode::Pattern,
            clauses: Vec::new(),
            pattern: Some(WirePattern {
                atoms: atoms
                    .iter()
                    .map(|&(value, causal)| WireAtom {
                        process: None,
                        var: "x".into(),
                        op: "=".into(),
                        value,
                        causal,
                    })
                    .collect(),
            }),
        })
        .collect()
}

/// The value an event writes to `x` — every random-computation event
/// sets it, so the emitted delta is exactly `{x: value}`.
fn written_value(comp: &Computation, e: hb_computation::EventId) -> i64 {
    let x = comp.vars().iter().next().expect("the x variable").0;
    comp.local_state(e.process, e.index as u32 + 1).get(x)
}

/// Ground truth for one predicate on the complete trace, by brute
/// force over linear extensions.
fn oracle_verdict(comp: &Computation, atoms: &[(i64, bool)]) -> bool {
    let causal: Vec<bool> = atoms.iter().map(|&(_, c)| c).collect();
    let events: Vec<PatternEvent> = comp
        .event_ids()
        .map(|id| {
            let v = written_value(comp, id);
            let mask = atoms
                .iter()
                .enumerate()
                .filter(|&(_, &(value, _))| v == value)
                .fold(0u64, |m, (k, _)| m | 1 << k);
            PatternEvent {
                process: id.process,
                clock: comp.clock(id).components().to_vec(),
                mask,
            }
        })
        .collect();
    linearization_oracle(&causal, &events, 50_000_000).expect("budget suffices for 9 events")
}

// ---- server process + raw wire client (the crash_recovery idiom) ----------

struct Server {
    child: Child,
    addr: String,
    stderr: BufReader<std::process::ChildStderr>,
}

fn spawn_server(data_dir: &Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args([
            "monitor",
            "serve",
            "127.0.0.1:0",
            "--data-dir",
            &data_dir.to_string_lossy(),
            "--sync",
            "always",
            "--snapshot-every",
            "4",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address in banner")
                .to_string();
        }
    };
    Server {
        child,
        addr,
        stderr,
    }
}

fn connect(addr: &str) -> (BufWriter<TcpStream>, BufReader<TcpStream>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let w = BufWriter::new(s.try_clone().expect("clone stream"));
                return (w, BufReader::new(s));
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn recv(r: &mut BufReader<TcpStream>) -> ServerMsg {
    read_frame::<_, ServerMsg>(r)
        .expect("well-formed frame")
        .expect("server still connected")
}

fn event_msg(comp: &Computation, e: hb_computation::EventId) -> ClientMsg {
    ClientMsg::Event {
        session: "pattern".into(),
        p: e.process,
        clock: comp.clock(e).components().to_vec(),
        set: [("x".to_string(), written_value(comp, e))]
            .into_iter()
            .collect(),
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hbtl-pattern-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one trace through open → half the events → SIGKILL → restart →
/// rest → finish → close, returning the settled verdict per predicate.
fn run_trace_with_crash(comp: &Computation, seed: u64) -> BTreeMap<String, WireVerdict> {
    let data_dir = fresh_dir(&format!("seed-{seed}"));
    let order = causal_shuffle(comp, seed ^ 0xbeef, 4);
    let (first_half, second_half) = order.split_at(order.len() / 2);

    let server = spawn_server(&data_dir);
    {
        let (mut w, mut r) = connect(&server.addr);
        write_frame(
            &mut w,
            &ClientMsg::Open {
                session: "pattern".into(),
                processes: comp.num_processes(),
                vars: vec!["x".into()],
                initial: vec![],
                predicates: wire_patterns(),
                dist: None,
            },
        )
        .expect("open frame");
        assert!(matches!(recv(&mut r), ServerMsg::Opened { .. }));
        for e in first_half {
            write_frame(&mut w, &event_msg(comp, *e)).expect("event frame");
        }
        // Durability barrier (see crash_recovery.rs): a verdict for an
        // already-detected pattern may race the stats reply.
        write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
        loop {
            match recv(&mut r) {
                ServerMsg::Stats { .. } => break,
                ServerMsg::Verdict { .. } => {}
                other => panic!("unexpected message before stats: {other:?}"),
            }
        }
    }

    let mut child = server.child;
    child.kill().expect("sigkill");
    child.wait().expect("reap");
    drop(server.stderr);

    let mut server = spawn_server(&data_dir);
    let verdicts = {
        let (mut w, mut r) = connect(&server.addr);
        for e in second_half {
            write_frame(&mut w, &event_msg(comp, *e)).expect("event frame");
        }
        // A pattern stays Pending until every process is finished (a
        // future event could still extend a chain), so finish them all
        // before closing.
        for p in 0..comp.num_processes() {
            write_frame(
                &mut w,
                &ClientMsg::FinishProcess {
                    session: "pattern".into(),
                    p,
                },
            )
            .expect("finish frame");
        }
        write_frame(
            &mut w,
            &ClientMsg::Close {
                session: "pattern".into(),
            },
        )
        .expect("close frame");
        let mut verdicts = BTreeMap::new();
        loop {
            match recv(&mut r) {
                ServerMsg::Verdict {
                    predicate, verdict, ..
                } => {
                    verdicts.insert(predicate, verdict);
                }
                ServerMsg::Closed { discarded, .. } => {
                    assert_eq!(discarded, 0, "the shuffle is a permutation");
                    break;
                }
                ServerMsg::Error { message, .. } => panic!("server error: {message}"),
                other => panic!("unexpected message: {other:?}"),
            }
        }
        verdicts
    };

    let (mut w, mut r) = connect(&server.addr);
    write_frame(&mut w, &ClientMsg::Shutdown).expect("shutdown frame");
    let _ = read_frame::<_, ServerMsg>(&mut r);
    server.child.wait().expect("graceful exit");
    verdicts
}

#[test]
fn pattern_verdicts_across_sigkill_match_the_linearization_oracle() {
    // Per-outcome coverage so the corpus can't silently degenerate into
    // all-Detected (or all-Impossible) and prove nothing.
    let mut saw = BTreeMap::from([(true, 0u32), (false, 0u32)]);
    for seed in 0..6u64 {
        let comp = random_computation(RandomSpec {
            processes: 3,
            events_per_process: 3,
            send_percent: 40,
            value_range: 3,
            seed,
        });
        let online = run_trace_with_crash(&comp, seed);
        assert_eq!(online.len(), PATTERNS.len(), "one verdict per pattern");
        for (id, atoms) in PATTERNS {
            let expected = oracle_verdict(&comp, atoms);
            *saw.get_mut(&expected).expect("both keys present") += 1;
            let got = match &online[id] {
                WireVerdict::Detected(_) => true,
                WireVerdict::Impossible => false,
                WireVerdict::Pending => panic!("{id} still pending after close (seed {seed})"),
            };
            assert_eq!(
                got, expected,
                "seed {seed}, pattern {id}: online disagrees with the \
                 linearization-enumeration oracle"
            );
        }
    }
    assert!(
        saw[&true] > 0 && saw[&false] > 0,
        "corpus must exercise both verdicts, saw {saw:?}"
    );
}
