//! End-to-end acceptance test for the instrumentation SDK: a real
//! multi-threaded program, traced with `hb_sdk`, streams to a real
//! `hbtl monitor serve --data-dir` process that is SIGKILLed and
//! restarted mid-trace. The SDK must reconnect, re-attach the
//! recovered session, replay its unacknowledged tail, and settle to
//! exactly the verdicts the offline detector computes on the same
//! computation.
//!
//! The program is a three-process token ring: each round, P0 sends a
//! token to P1, P1 forwards to P2, P2 returns it to P0, every hop
//! recorded through the traced-channel wrappers. The offline twin is
//! the identical event sequence built with `ComputationBuilder`; both
//! follow the Fidge/Mattern stamping discipline, so their clocks — and
//! therefore their least satisfying cuts — must agree.

#![cfg(unix)]

use hb_computation::{Computation, ComputationBuilder};
use hb_detect::ef_linear;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sdk::channel::traced_channel;
use hb_sdk::{SessionBuilder, Tracer, WireVerdict};
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const ROUNDS: usize = 4;
/// The ring pauses (and the monitor dies) after this round.
const KILL_AFTER_ROUND: usize = 2;
/// Events per round: two per process (P0 send+recv, P1 recv+send,
/// P2 recv+send).
const EVENTS_PER_ROUND: usize = 6;

/// The offline twin of the traced ring below — same events, same
/// values, same message topology.
fn offline_ring() -> Computation {
    let mut b = ComputationBuilder::new(3);
    let x = b.var("x");
    for r in 1..=ROUNDS as i64 {
        let v = 10 * r;
        let m1 = b.send(0).set(x, v).done_send();
        b.receive(1, m1).set(x, v + 1).done();
        let m2 = b.send(1).set(x, v + 2).done_send();
        b.receive(2, m2).set(x, v + 3).done();
        let m3 = b.send(2).set(x, v + 4).done_send();
        b.receive(0, m3).set(x, v + 5).done();
    }
    b.finish().expect("the ring is well-formed")
}

/// Runs the instrumented ring on three real threads. Every thread
/// parks on `pause` twice at the end of round [`KILL_AFTER_ROUND`]; the
/// test thread joins both waits to kill and restart the monitor while
/// the program is quiescent.
fn run_ring(mut tracers: Vec<Tracer>, pause: Arc<Barrier>) -> Vec<std::thread::JoinHandle<()>> {
    let mut t2 = tracers.pop().expect("tracer for p2");
    let mut t1 = tracers.pop().expect("tracer for p1");
    let mut t0 = tracers.pop().expect("tracer for p0");
    let (tx01, rx01) = traced_channel::<i64>();
    let (tx12, rx12) = traced_channel::<i64>();
    let (tx20, rx20) = traced_channel::<i64>();
    let (b0, b1, b2) = (Arc::clone(&pause), Arc::clone(&pause), pause);
    let h0 = std::thread::spawn(move || {
        for r in 1..=ROUNDS {
            let v = 10 * r as i64;
            tx01.send_with(&mut t0, v, &[("x", v)]).expect("p1 alive");
            rx20.recv_with(&mut t0, &[("x", v + 5)]).expect("p2 sent");
            if r == KILL_AFTER_ROUND {
                b0.wait();
                b0.wait();
            }
        }
    });
    let h1 = std::thread::spawn(move || {
        for r in 1..=ROUNDS {
            let v = 10 * r as i64;
            rx01.recv_with(&mut t1, &[("x", v + 1)]).expect("p0 sent");
            tx12.send_with(&mut t1, v, &[("x", v + 2)])
                .expect("p2 alive");
            if r == KILL_AFTER_ROUND {
                b1.wait();
                b1.wait();
            }
        }
    });
    let h2 = std::thread::spawn(move || {
        for r in 1..=ROUNDS {
            let v = 10 * r as i64;
            rx12.recv_with(&mut t2, &[("x", v + 3)]).expect("p1 sent");
            tx20.send_with(&mut t2, v, &[("x", v + 4)])
                .expect("p0 alive");
            if r == KILL_AFTER_ROUND {
                b2.wait();
                b2.wait();
            }
        }
    });
    vec![h0, h1, h2]
}

/// Spawns `hbtl monitor serve` on a fixed address (so the SDK's
/// reconnect finds the restarted process) and waits for its banner.
/// The caller owns the child: the test kills and reaps it explicitly
/// on every path.
#[allow(clippy::zombie_processes)]
fn spawn_server(addr: &str, data_dir: &Path) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args([
            "monitor",
            "serve",
            addr,
            "--data-dir",
            &data_dir.to_string_lossy(),
            "--sync",
            "always",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if line.contains("listening on ") {
            return child;
        }
    }
}

/// A free TCP port the restarted server can re-bind.
fn reserve_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
        .port()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hbtl-sdk-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn instrumented_ring_survives_monitor_sigkill_and_matches_offline() {
    // Offline ground truth. The goal predicate names two concurrent
    // states of round 2 — P0 holding x=20 (its round-2 send) while P2
    // still holds x=14 (its round-1 return) — so detection requires an
    // actual consistent-cut search, not just a local scan.
    let comp = offline_ring();
    let x = comp.vars().lookup("x").expect("ring declares x");
    let goal = Conjunctive::new(vec![
        (0, LocalExpr::Cmp(x, CmpOp::Eq, 20)),
        (2, LocalExpr::Cmp(x, CmpOp::Eq, 14)),
    ]);
    let offline = ef_linear(&comp, &goal);
    assert!(offline.holds, "the goal cut exists in the ring");
    let least = offline.witness.expect("witness cut");

    let data_dir = fresh_dir("ring");
    let addr = format!("127.0.0.1:{}", reserve_port());
    let child = spawn_server(&addr, &data_dir);

    // The default ack_every (256) far exceeds the trace, so nothing is
    // acknowledged before the crash and the reconnect must replay the
    // *entire* prefix.
    let (session, tracers) = SessionBuilder::new("ring", 3)
        .var("x")
        .conjunctive("goal", &[(0, "x", "=", 20), (2, "x", "=", 14)])
        .conjunctive("never", &[(0, "x", "=", -1)])
        .connect(&addr)
        .expect("open over TCP");

    let pause = Arc::new(Barrier::new(4));
    let handles = run_ring(tracers, Arc::clone(&pause));

    // First barrier: the program is quiescent at the end of the kill
    // round. Wait for the flusher to have written everything produced
    // so far — otherwise the kill proves nothing about replay.
    pause.wait();
    let sent_target = (KILL_AFTER_ROUND * EVENTS_PER_ROUND) as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while session.metrics().events_sent < sent_target {
        assert!(
            Instant::now() < deadline,
            "flusher never drained the first half: {:?}",
            session.metrics()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // SIGKILL: no shutdown hook, no final snapshot. Restart on the
    // same address and data directory.
    let mut child = child;
    child.kill().expect("sigkill");
    child.wait().expect("reap");
    let mut child = spawn_server(&addr, &data_dir);

    // Second barrier: release the ring for the remaining rounds. The
    // flusher discovers the dead peer, re-dials, re-attaches the
    // recovered session, and replays the unacknowledged tail.
    pause.wait();
    for h in handles {
        h.join().expect("ring thread");
    }

    let report = session.close().expect("close settles across the crash");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.discarded, 0, "replay restores every event");
    assert!(
        !report.recreated,
        "a durable server re-attaches the recovered session instead of recreating it"
    );
    assert_eq!(report.verdicts.len(), 2);
    assert_eq!(
        report.verdicts["goal"],
        WireVerdict::Detected(least.counters().to_vec()),
        "online least cut across the crash equals offline detection"
    );
    assert_eq!(report.verdicts["never"], WireVerdict::Impossible);
    let m = report.metrics;
    assert!(m.reconnects >= 1, "the crash forced a reconnect: {m:?}");
    assert!(m.events_resent > 0, "the unacked tail was replayed: {m:?}");
    assert_eq!(m.events_enqueued, (ROUNDS * EVENTS_PER_ROUND) as u64);
    assert_eq!(m.events_dropped, 0);

    child.kill().expect("cleanup kill");
    child.wait().expect("cleanup reap");
}
