//! Differential equivalence for computation slicing: the same
//! simulated computations stream through a live `hbtl monitor serve`
//! process twice — once with the slicing ingest filter on (the
//! default) and once with `--no-slice` — and both runs must settle to
//! verdict sequences that are **byte-identical** to each other and to
//! the sequence the offline oracle (`ef_linear`) predicts.
//!
//! Slicing is a monitor-local optimisation; this test is the lock that
//! keeps it one. A second scenario SIGKILLs the sliced durable server
//! mid-stream and restarts it on the same data directory: the filter
//! state rides the WAL snapshots, so the verdicts across the crash
//! still match the oracle byte for byte.

#![cfg(unix)]

use hb_computation::{Computation, EventId};
use hb_detect::ef_linear;
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sdk::{SessionBuilder, WireVerdict};
use hb_sim::{causal_shuffle, random_computation, RandomSpec};
use hb_tracefmt::wire::{read_frame, write_frame, ClientMsg, ServerMsg, WIRE_VERSION};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROCESSES: usize = 4;
const EVENTS_PER_PROCESS: usize = 48;
const SESSIONS: usize = 3;

/// One pre-planned session: the computation, a causality-respecting
/// delivery order, and the verdict map the offline oracle predicts.
struct Plan {
    name: String,
    comp: Computation,
    order: Vec<EventId>,
    expected: BTreeMap<String, WireVerdict>,
}

/// Conjunctive `x = k` on processes 0 and 1 for k in 0..3 — with
/// `value_range` 6 most events leave the clauses false, so the filter
/// has real work to do — plus an impossible all-process `x = -1`
/// whose events are *all* filtered (the detector learns the verdict
/// purely from skips and finishes).
fn predicate_clauses(comp: &Computation) -> Vec<(String, Vec<(usize, i64)>)> {
    let mut preds: Vec<(String, Vec<(usize, i64)>)> = (0..3)
        .map(|k| (format!("p{k}"), vec![(0, k as i64), (1, k as i64)]))
        .collect();
    preds.push((
        "nope".into(),
        (0..comp.num_processes()).map(|p| (p, -1)).collect(),
    ));
    preds
}

/// What the online monitor must settle to, per the offline detector.
fn oracle_verdicts(comp: &Computation) -> BTreeMap<String, WireVerdict> {
    let x = comp.vars().lookup("x").expect("sim computations declare x");
    predicate_clauses(comp)
        .into_iter()
        .map(|(id, clauses)| {
            let goal = Conjunctive::new(
                clauses
                    .into_iter()
                    .map(|(p, v)| (p, LocalExpr::Cmp(x, CmpOp::Eq, v)))
                    .collect(),
            );
            let offline = ef_linear(comp, &goal);
            let verdict = match offline.witness {
                Some(least) if offline.holds => WireVerdict::Detected(least.counters().to_vec()),
                _ => WireVerdict::Impossible,
            };
            (id, verdict)
        })
        .collect()
}

fn build_plans() -> Vec<Plan> {
    (0..SESSIONS as u64)
        .map(|s| {
            let comp = random_computation(RandomSpec {
                processes: PROCESSES,
                events_per_process: EVENTS_PER_PROCESS,
                send_percent: 30,
                value_range: 6,
                seed: 0x51_1ce_u64.wrapping_add(s * 7919),
            });
            let order = causal_shuffle(&comp, s ^ 0x5eed, 8);
            let expected = oracle_verdicts(&comp);
            Plan {
                name: format!("s{s}"),
                comp,
                order,
                expected,
            }
        })
        .collect()
}

/// The full state map at an event, exactly as an instrumented program
/// would report it.
fn state_map(comp: &Computation, e: EventId) -> BTreeMap<String, i64> {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    comp.vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect()
}

/// Serializes a settled verdict map as the wire frames the server sends
/// at close, in predicate order. Two runs agree iff these bytes agree.
fn verdict_bytes(session: &str, verdicts: &BTreeMap<String, WireVerdict>) -> Vec<u8> {
    let mut buf = Vec::new();
    for (predicate, verdict) in verdicts {
        write_frame(
            &mut buf,
            &ServerMsg::Verdict {
                session: session.to_string(),
                predicate: predicate.clone(),
                verdict: verdict.clone(),
            },
        )
        .expect("verdict frames encode");
    }
    buf
}

/// Spawns `hbtl monitor serve` with extra flags and waits for its
/// banner, returning the actual listening address.
#[allow(clippy::zombie_processes)]
fn spawn_monitor(extra: &[&str]) -> (Child, String) {
    let port = TcpListener::bind("127.0.0.1:0")
        .expect("bind ephemeral")
        .local_addr()
        .expect("local addr")
        .port();
    let addr = format!("127.0.0.1:{port}");
    let mut args = vec!["monitor", "serve", addr.as_str()];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("hbtl spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).expect("read banner") == 0 {
            let status = child.wait().expect("child reaped");
            panic!("server exited before listening: {status}");
        }
        if line.contains("listening on ") {
            return (child, addr);
        }
    }
}

/// Fetches the server's counters over a raw handshaken connection.
fn fetch_counters(addr: &str) -> BTreeMap<String, u64> {
    let stream = TcpStream::connect(addr).expect("connect for stats");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
        },
    )
    .expect("hello");
    match read_frame::<_, ServerMsg>(&mut reader).expect("welcome frame") {
        Some(ServerMsg::Welcome { .. }) => {}
        other => panic!("expected welcome, got {other:?}"),
    }
    write_frame(&mut writer, &ClientMsg::Stats).expect("stats request");
    match read_frame::<_, ServerMsg>(&mut reader).expect("stats frame") {
        Some(ServerMsg::Stats { counters }) => counters,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// What one leg produced: the concatenated settled-verdict frames of
/// every session (in plan order) and the server-side counters.
struct LegOutcome {
    bytes: Vec<u8>,
    server_counters: BTreeMap<String, u64>,
}

/// Streams every plan through a fresh live monitor spawned with the
/// given flags and collects the settled verdict sequence over the SDK.
fn run_leg(extra: &[&str]) -> LegOutcome {
    let (mut child, addr) = spawn_monitor(extra);
    let plans = build_plans();
    let mut bytes = Vec::new();
    for plan in &plans {
        let mut builder = SessionBuilder::new(&plan.name, plan.comp.num_processes()).var("x");
        for (id, clauses) in predicate_clauses(&plan.comp) {
            let clauses: Vec<(usize, &str, &str, i64)> =
                clauses.iter().map(|&(p, v)| (p, "x", "=", v)).collect();
            builder = builder.conjunctive(&id, &clauses);
        }
        let (session, _tracers) = builder.connect(&addr).expect("open over TCP");
        for &e in &plan.order {
            let accepted = session.emit(
                e.process,
                plan.comp.clock(e).components().to_vec(),
                state_map(&plan.comp, e),
            );
            assert!(accepted, "{}: event dropped by the SDK queue", plan.name);
        }
        let report = session.close().expect("close settles");
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.discarded, 0, "every event deliverable");
        bytes.extend(verdict_bytes(&plan.name, &report.verdicts));
    }
    let server_counters = fetch_counters(&addr);
    child.kill().expect("cleanup kill");
    child.wait().expect("cleanup reap");
    LegOutcome {
        bytes,
        server_counters,
    }
}

#[test]
fn sliced_and_unsliced_servers_settle_to_identical_verdict_bytes() {
    // Offline ground truth, serialized to the exact bytes a correct
    // server must have settled to at close.
    let plans = build_plans();
    let oracle: Vec<u8> = plans
        .iter()
        .flat_map(|p| verdict_bytes(&p.name, &p.expected))
        .collect();
    // Guard against a degenerate fixture: both verdict kinds must occur.
    let all_expected: Vec<&WireVerdict> = plans.iter().flat_map(|p| p.expected.values()).collect();
    assert!(all_expected
        .iter()
        .any(|v| matches!(v, WireVerdict::Detected(_))));
    assert!(all_expected
        .iter()
        .any(|v| matches!(v, &&WireVerdict::Impossible)));

    let sliced = run_leg(&[]);
    let unsliced = run_leg(&["--no-slice"]);

    // The differential claim, byte for byte.
    assert_eq!(
        sliced.bytes, unsliced.bytes,
        "sliced and unsliced verdict sequences must be byte-identical"
    );
    assert_eq!(
        sliced.bytes, oracle,
        "online verdict sequence must be byte-identical to the offline oracle"
    );

    // And the sliced leg really filtered: the equivalence is not
    // vacuous. Every `nope` event is clause-false, so its filter drops
    // the whole stream.
    let total: u64 = plans.iter().map(|p| p.order.len() as u64).sum();
    assert_eq!(sliced.server_counters["events_ingested"], total);
    assert_eq!(unsliced.server_counters["events_ingested"], total);
    assert_eq!(sliced.server_counters["slice.nope.events_in"], total);
    assert_eq!(sliced.server_counters["slice.nope.events_filtered"], total);
    assert!(
        !unsliced
            .server_counters
            .keys()
            .any(|k| k.starts_with("slice.")),
        "--no-slice must disable the filter entirely"
    );
}

// ---- crash-recovery leg ---------------------------------------------------

fn connect(addr: &str) -> (BufWriter<TcpStream>, BufReader<TcpStream>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let w = BufWriter::new(s.try_clone().expect("clone stream"));
                return (w, BufReader::new(s));
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn recv(r: &mut BufReader<TcpStream>) -> ServerMsg {
    read_frame::<_, ServerMsg>(r)
        .expect("well-formed frame")
        .expect("server still connected")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hbtl-slice-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_msg(plan: &Plan) -> ClientMsg {
    use hb_tracefmt::wire::{WireClause, WireMode, WirePredicate};
    ClientMsg::Open {
        session: plan.name.clone(),
        processes: plan.comp.num_processes(),
        vars: vec!["x".into()],
        initial: vec![],
        predicates: predicate_clauses(&plan.comp)
            .into_iter()
            .map(|(id, clauses)| WirePredicate {
                id,
                mode: WireMode::Conjunctive,
                clauses: clauses
                    .into_iter()
                    .map(|(process, value)| WireClause {
                        process,
                        var: "x".into(),
                        op: "=".into(),
                        value,
                    })
                    .collect(),
                pattern: None,
            })
            .collect(),
        dist: None,
    }
}

fn event_msg(plan: &Plan, e: EventId) -> ClientMsg {
    ClientMsg::Event {
        session: plan.name.clone(),
        p: e.process,
        clock: plan.comp.clock(e).components().to_vec(),
        set: state_map(&plan.comp, e),
    }
}

/// SIGKILL the sliced durable server mid-stream, restart on the same
/// directory, finish the stream: the settled verdicts must still be
/// byte-identical to the offline oracle. The snapshot cadence is tuned
/// so recovery restores `SliceState` records from a snapshot *and*
/// replays a WAL tail through the restored filters.
#[test]
fn sliced_detection_survives_sigkill_and_restart() {
    let plan = &build_plans()[0];
    let oracle = verdict_bytes(&plan.name, &plan.expected);
    let data_dir = fresh_dir("sigkill");
    let dir_arg = data_dir.to_string_lossy().to_string();
    let persist_flags = [
        "--data-dir",
        dir_arg.as_str(),
        "--sync",
        "always",
        "--snapshot-every",
        "17",
    ];

    let (first_half, second_half) = plan.order.split_at(plan.order.len() / 2);

    // Phase 1: open and stream the first half.
    let (mut child, addr) = spawn_monitor(&persist_flags);
    {
        let (mut w, mut r) = connect(&addr);
        write_frame(&mut w, &open_msg(plan)).expect("open frame");
        assert!(matches!(recv(&mut r), ServerMsg::Opened { .. }));
        for &e in first_half {
            write_frame(&mut w, &event_msg(plan, e)).expect("event frame");
        }
        // Durability barrier: the stats reply proves every prior frame
        // on this connection was WAL-appended (sync: always). Early
        // verdicts may land first; skip past them.
        write_frame(&mut w, &ClientMsg::Stats).expect("stats frame");
        loop {
            match recv(&mut r) {
                ServerMsg::Stats { .. } => break,
                ServerMsg::Verdict { .. } => {}
                other => panic!("unexpected message before stats: {other:?}"),
            }
        }
    }

    // Phase 2: SIGKILL — no shutdown hook, no parting snapshot.
    child.kill().expect("sigkill");
    child.wait().expect("reap");

    // Phase 3: restart on the same directory and finish the stream.
    let (mut child, addr) = spawn_monitor(&persist_flags);
    let verdicts = {
        let (mut w, mut r) = connect(&addr);
        for &e in second_half {
            write_frame(&mut w, &event_msg(plan, e)).expect("event frame");
        }
        write_frame(
            &mut w,
            &ClientMsg::Close {
                session: plan.name.clone(),
            },
        )
        .expect("close frame");
        // Collect into a map: re-attachment re-reports any verdict that
        // settled before the crash, and the map dedups exactly as a
        // catching-up client would.
        let mut verdicts: BTreeMap<String, WireVerdict> = BTreeMap::new();
        loop {
            match recv(&mut r) {
                ServerMsg::Verdict {
                    predicate, verdict, ..
                } => {
                    verdicts.insert(predicate, verdict);
                }
                ServerMsg::Closed { discarded, .. } => {
                    assert_eq!(discarded, 0, "the shuffle is a permutation");
                    break;
                }
                ServerMsg::Error { message, .. } => panic!("server error: {message}"),
                other => panic!("unexpected message: {other:?}"),
            }
        }
        verdicts
    };
    assert_eq!(
        verdict_bytes(&plan.name, &verdicts),
        oracle,
        "verdicts across SIGKILL/restart must match the offline oracle"
    );

    // The recovered run kept filtering: the slice counters span the
    // crash (pre-crash totals resync into the fresh metrics at the
    // first flush after restore).
    let counters = fetch_counters(&addr);
    assert_eq!(
        counters["slice.nope.events_in"],
        plan.order.len() as u64,
        "slice counters must cover the whole stream across the crash"
    );
    assert_eq!(
        counters["slice.nope.events_filtered"],
        plan.order.len() as u64
    );

    // Graceful shutdown; the offline tooling agrees the directory is
    // healthy.
    let (mut w, mut r) = connect(&addr);
    write_frame(&mut w, &ClientMsg::Shutdown).expect("shutdown frame");
    let _ = read_frame::<_, ServerMsg>(&mut r);
    child.wait().expect("graceful exit");
    let verify = Command::new(env!("CARGO_BIN_EXE_hbtl"))
        .args(["store", "verify", &dir_arg])
        .output()
        .expect("hbtl store verify runs");
    assert!(
        verify.status.success(),
        "{}",
        String::from_utf8_lossy(&verify.stderr)
    );
}
