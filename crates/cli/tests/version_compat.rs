//! The wire-version compatibility matrix for batched `events` frames.
//!
//! Wire v3 introduced batching behind handshake negotiation, and every
//! mixed-fleet pairing has a prescribed behavior:
//!
//! | client        | server              | expectation                    |
//! |---------------|---------------------|--------------------------------|
//! | v3 SDK        | v1 / v2 monitor     | downgrade; single frames only  |
//! | v2 client     | v3 monitor          | welcomed at v2, works as ever  |
//! | v3 client     | v3 monitor          | one batch = one atomic ingest  |
//! | any           | pre-v3 + `events`   | "unknown client message" error |
//! | v3 client     | v3 gateway → v3 mon | batch relays unsplit           |
//! | v3 client     | v3 gateway → v2 mon | gateway splits per backend     |
//!
//! Wire v4 added pattern predicates, with its own pairing rules:
//!
//! | client          | server          | expectation                      |
//! |-----------------|-----------------|----------------------------------|
//! | v4 SDK pattern  | v2 monitor      | typed `unsupported_predicate`    |
//! | v4 SDK pattern  | gateway → v4 mon| relayed opaquely, verdict flows  |
//!
//! Wire v5 added distributed sessions, which are strictly
//! gateway-orchestrated and refuse loudly everywhere else:
//!
//! | client           | server           | expectation                     |
//! |------------------|------------------|---------------------------------|
//! | v5 SDK dist      | v4 monitor       | typed `unsupported_distribution`|
//! | v5 dist open     | gateway → v4 mon | `unsupported_distribution` kind |
//! | v5 SDK plain     | v4 vs v5 monitor | byte-identical verdict frames   |
//!
//! Old builds are emulated with the `wire_version` config knob, which
//! caps the handshake and refuses the frames that version lacked.

use hb_gateway::service::{GatewayConfig, GatewayService};
use hb_monitor::{MonitorConfig, MonitorService};
use hb_sdk::{SdkError, SessionBuilder, WireVerdict};
use hb_tracefmt::wire::{
    self, error_kind, read_frame, write_frame, ClientMsg, EventFrame, ServerMsg, WireClause,
    WireDistRole, WireMode, WirePredicate,
};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

// ---- fixture --------------------------------------------------------------

/// The two-process, two-event computation every pairing replays: P0 and
/// P1 each take one concurrent step setting `x = 1`. The conjunctive
/// goal `x=1 @ 0 AND x=1 @ 1` is first satisfied at the cut `[1, 1]`.
const LEAST_CUT: [u32; 2] = [1, 1];

fn frames() -> Vec<EventFrame> {
    vec![
        EventFrame {
            p: 0,
            clock: vec![1, 0],
            set: [("x".to_string(), 1)].into_iter().collect(),
        },
        EventFrame {
            p: 1,
            clock: vec![0, 1],
            set: [("x".to_string(), 1)].into_iter().collect(),
        },
    ]
}

fn goal_pred() -> WirePredicate {
    WirePredicate {
        id: "goal".into(),
        mode: WireMode::Conjunctive,
        clauses: (0..2)
            .map(|p| WireClause {
                process: p,
                var: "x".into(),
                op: "=".into(),
                value: 1,
            })
            .collect(),
        pattern: None,
    }
}

fn open_msg(session: &str) -> ClientMsg {
    ClientMsg::Open {
        session: session.into(),
        processes: 2,
        vars: vec!["x".into()],
        initial: vec![],
        predicates: vec![goal_pred()],
        dist: None,
    }
}

// ---- servers --------------------------------------------------------------

/// A monitor emulating a `wire_version` build, serving on loopback.
fn start_monitor(wire_version: u32) -> (String, MonitorService) {
    let svc = MonitorService::start(MonitorConfig {
        shards: 2,
        wire_version,
        ..MonitorConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind monitor");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = svc.handle();
    std::thread::spawn(move || {
        let _ = hb_monitor::serve(listener, handle);
    });
    (addr, svc)
}

fn start_gateway(backend: String) -> (String, Arc<GatewayService>) {
    let gw = Arc::new(
        GatewayService::start(GatewayConfig {
            backends: vec![backend],
            ..GatewayConfig::default()
        })
        .expect("gateway starts"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind gateway");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serving = Arc::clone(&gw);
    std::thread::spawn(move || {
        let _ = serving.serve(listener);
    });
    (addr, gw)
}

// ---- raw wire client ------------------------------------------------------

/// A hand-driven client pinned to whatever frames the test writes — the
/// stand-in for builds older (or newer) than the SDK would emulate.
struct Client {
    w: BufWriter<TcpStream>,
    r: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            w: BufWriter::new(stream.try_clone().expect("clone")),
            r: BufReader::new(stream),
        }
    }

    fn send(&mut self, msg: &ClientMsg) {
        write_frame(&mut self.w, msg).expect("send frame");
    }

    fn recv(&mut self) -> ServerMsg {
        read_frame::<_, ServerMsg>(&mut self.r)
            .expect("read frame")
            .expect("peer still open")
    }

    /// Reads until `Closed`, returning the settled verdicts seen.
    fn drain_to_close(&mut self) -> BTreeMap<String, WireVerdict> {
        let mut verdicts = BTreeMap::new();
        loop {
            match self.recv() {
                ServerMsg::Verdict {
                    predicate, verdict, ..
                } => {
                    verdicts.insert(predicate, verdict);
                }
                ServerMsg::Closed { .. } => return verdicts,
                ServerMsg::Error { message, .. } => panic!("server error: {message}"),
                _ => {}
            }
        }
    }

    fn finish_and_close(&mut self, session: &str) -> BTreeMap<String, WireVerdict> {
        for p in 0..2 {
            self.send(&ClientMsg::FinishProcess {
                session: session.into(),
                p,
            });
        }
        self.send(&ClientMsg::Close {
            session: session.into(),
        });
        self.drain_to_close()
    }
}

/// Drives the fixture through the SDK against `addr` and returns the
/// close report's verdict plus the SDK's wire-batch counter.
fn run_sdk_session(addr: &str, name: &str) -> (WireVerdict, u64) {
    let (session, _tracers) = SessionBuilder::new(name, 2)
        .var("x")
        .conjunctive("goal", &[(0, "x", "=", 1), (1, "x", "=", 1)])
        .batch_max(8)
        .connect(addr)
        .expect("open over TCP");
    for e in frames() {
        assert!(session.emit(e.p, e.clock, e.set), "emit accepted");
    }
    let report = session.close().expect("close settles");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.discarded, 0);
    (
        report.verdicts["goal"].clone(),
        report.metrics.wire_batches_sent,
    )
}

// ---- the matrix -----------------------------------------------------------

/// v3 SDK against a v2 monitor: the dial walks down one version, the
/// flusher never writes an `events` frame, and the verdict is the same.
#[test]
fn v3_sdk_falls_back_to_singles_against_a_v2_monitor() {
    let (addr, svc) = start_monitor(2);
    let (verdict, wire_batches) = run_sdk_session(&addr, "compat-v2");
    assert_eq!(verdict, WireVerdict::Detected(LEAST_CUT.to_vec()));
    assert_eq!(wire_batches, 0, "no events frame to a v2 peer");
    let m = svc.metrics();
    assert_eq!(m.batches_ingested, 0);
    assert_eq!(m.events_ingested, 2);
    // Exactly three protocol errors: the refused `hello {v5}`,
    // `hello {v4}`, and `hello {v3}` that walked the dial down to v2.
    // Nothing after the handshake errors.
    assert_eq!(m.protocol_errors, 3);
    svc.shutdown();
}

/// v3 SDK against a v1 monitor: the dial walks the whole window down.
#[test]
fn v3_sdk_falls_back_to_singles_against_a_v1_monitor() {
    let (addr, svc) = start_monitor(1);
    let (verdict, wire_batches) = run_sdk_session(&addr, "compat-v1");
    assert_eq!(verdict, WireVerdict::Detected(LEAST_CUT.to_vec()));
    assert_eq!(wire_batches, 0, "no events frame to a v1 peer");
    let m = svc.metrics();
    assert_eq!(m.batches_ingested, 0);
    assert_eq!(m.events_ingested, 2);
    svc.shutdown();
}

/// A v2 client against a v3 monitor: negotiation echoes the client's
/// version, and the v2 frame set works exactly as before.
#[test]
fn v2_client_is_welcomed_at_v2_by_a_v3_monitor() {
    let (addr, svc) = start_monitor(wire::WIRE_VERSION);
    let mut client = Client::connect(&addr);
    client.send(&ClientMsg::Hello { version: 2 });
    match client.recv() {
        ServerMsg::Welcome { version } => assert_eq!(version, 2, "echo, not the server max"),
        other => panic!("expected welcome, got {other:?}"),
    }
    client.send(&open_msg("compat-old-client"));
    assert!(matches!(client.recv(), ServerMsg::Opened { .. }));
    for e in frames() {
        client.send(&e.into_event("compat-old-client"));
    }
    let verdicts = client.finish_and_close("compat-old-client");
    assert_eq!(
        verdicts["goal"],
        WireVerdict::Detected(LEAST_CUT.to_vec()),
        "a v2 client is served the same verdicts"
    );
    assert_eq!(svc.metrics().batches_ingested, 0);
    svc.shutdown();
}

/// One `events` frame on a v3 monitor: ingested as one atomic batch
/// (one batch counter tick, every member counted and delivered).
#[test]
fn a_batch_ingests_atomically_on_a_v3_monitor() {
    let (addr, svc) = start_monitor(wire::WIRE_VERSION);
    let mut client = Client::connect(&addr);
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    match client.recv() {
        ServerMsg::Welcome { version } => assert_eq!(version, wire::WIRE_VERSION),
        other => panic!("expected welcome, got {other:?}"),
    }
    client.send(&open_msg("compat-batch"));
    assert!(matches!(client.recv(), ServerMsg::Opened { .. }));
    client.send(&ClientMsg::Events {
        session: "compat-batch".into(),
        events: frames(),
    });
    let verdicts = client.finish_and_close("compat-batch");
    assert_eq!(verdicts["goal"], WireVerdict::Detected(LEAST_CUT.to_vec()));
    let m = svc.metrics();
    assert_eq!(m.batches_ingested, 1, "the frame counts once as a batch");
    assert_eq!(m.events_ingested, 2, "and twice as events");
    assert_eq!(m.events_delivered, 2);
    svc.shutdown();
}

/// A pre-v3 server refuses an `events` frame the way an old build
/// would: "unknown client message", counted as a protocol error.
#[test]
fn a_pre_v3_server_refuses_events_frames() {
    let (addr, svc) = start_monitor(2);
    let mut client = Client::connect(&addr);
    client.send(&ClientMsg::Hello { version: 2 });
    assert!(matches!(client.recv(), ServerMsg::Welcome { version: 2 }));
    client.send(&open_msg("compat-refused"));
    assert!(matches!(client.recv(), ServerMsg::Opened { .. }));
    client.send(&ClientMsg::Events {
        session: "compat-refused".into(),
        events: frames(),
    });
    match client.recv() {
        ServerMsg::Error { message, .. } => {
            assert!(
                message.contains("unknown client message 'events'"),
                "{message}"
            );
        }
        other => panic!("expected error, got {other:?}"),
    }
    let m = svc.metrics();
    assert_eq!(m.events_ingested, 0, "nothing from the refused batch lands");
    assert!(m.protocol_errors >= 1);
    svc.shutdown();
}

/// A batch through the gateway to a current backend relays unsplit:
/// the backend sees exactly one `events` frame.
#[test]
fn gateway_relays_batches_unsplit_to_a_v3_backend() {
    let (backend_addr, backend) = start_monitor(wire::WIRE_VERSION);
    let (gw_addr, gw) = start_gateway(backend_addr);
    let mut client = Client::connect(&gw_addr);
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    assert!(matches!(client.recv(), ServerMsg::Welcome { .. }));
    client.send(&open_msg("compat-gw-v3"));
    assert!(matches!(client.recv(), ServerMsg::Opened { .. }));
    client.send(&ClientMsg::Events {
        session: "compat-gw-v3".into(),
        events: frames(),
    });
    let verdicts = client.finish_and_close("compat-gw-v3");
    assert_eq!(verdicts["goal"], WireVerdict::Detected(LEAST_CUT.to_vec()));
    let m = backend.metrics();
    assert_eq!(m.batches_ingested, 1, "the relay does not split the frame");
    assert_eq!(m.events_ingested, 2);
    drop(gw);
    backend.shutdown();
}

/// The same batch through the gateway to a v2 backend: the gateway's
/// writer downgrades it to single `event` frames for that connection,
/// so an old backend in a mixed fleet still gets every event.
#[test]
fn gateway_splits_batches_for_a_v2_backend() {
    let (backend_addr, backend) = start_monitor(2);
    let (gw_addr, gw) = start_gateway(backend_addr);
    let mut client = Client::connect(&gw_addr);
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    // The gateway still welcomes v3 — the downgrade is per backend
    // connection, invisible to the client.
    assert!(matches!(
        client.recv(),
        ServerMsg::Welcome { version } if version == wire::WIRE_VERSION
    ));
    client.send(&open_msg("compat-gw-v2"));
    assert!(matches!(client.recv(), ServerMsg::Opened { .. }));
    client.send(&ClientMsg::Events {
        session: "compat-gw-v2".into(),
        events: frames(),
    });
    let verdicts = client.finish_and_close("compat-gw-v2");
    assert_eq!(verdicts["goal"], WireVerdict::Detected(LEAST_CUT.to_vec()));
    let m = backend.metrics();
    assert_eq!(m.batches_ingested, 0, "the backend never sees a batch");
    assert_eq!(m.events_ingested, 2, "but it sees every member");
    // The gateway's own pool dial walked down three times (refused
    // hellos at v5, v4, and v3); past the handshake the split relay is
    // error-free.
    assert_eq!(m.protocol_errors, 3);
    drop(gw);
    backend.shutdown();
}

/// Slice-filtered predicates across the version matrix: the slicing
/// ingest filter is monitor-local — no frame, no handshake bit, no
/// capability flag — so a conjunctive predicate is filtered (and its
/// verdict unchanged) no matter which wire version the peer speaks.
/// Nothing is refused, and every emulated build settles identically.
#[test]
fn slice_filtering_is_invisible_across_wire_versions() {
    // Noise that misses the clauses, then the satisfying events: the
    // filter drops the first two, and the goal settles at `[2, 2]`.
    let noisy_frames = || -> Vec<EventFrame> {
        let set = |v: i64| [("x".to_string(), v)].into_iter().collect();
        vec![
            EventFrame {
                p: 0,
                clock: vec![1, 0],
                set: set(5),
            },
            EventFrame {
                p: 1,
                clock: vec![0, 1],
                set: set(7),
            },
            EventFrame {
                p: 0,
                clock: vec![2, 0],
                set: set(1),
            },
            EventFrame {
                p: 1,
                clock: vec![0, 2],
                set: set(1),
            },
        ]
    };
    let mut verdicts = Vec::new();
    for version in [2, 3, wire::WIRE_VERSION] {
        let (addr, svc) = start_monitor(version);
        let (session, _tracers) = SessionBuilder::new("compat-slice", 2)
            .var("x")
            .conjunctive("goal", &[(0, "x", "=", 1), (1, "x", "=", 1)])
            .connect(&addr)
            .expect("slice-filtered predicates open on any version");
        for e in noisy_frames() {
            assert!(session.emit(e.p, e.clock, e.set), "emit accepted");
        }
        let report = session.close().expect("close settles");
        assert!(report.errors.is_empty(), "v{version}: {:?}", report.errors);
        verdicts.push(report.verdicts["goal"].clone());
        // The filter ran regardless of the negotiated wire version:
        // monitor-local counters show the two noise events dropped.
        let m = svc.metrics();
        assert_eq!(m.slices["slice.goal.events_in"], 4, "v{version}");
        assert_eq!(m.slices["slice.goal.events_filtered"], 2, "v{version}");
        svc.shutdown();
    }
    assert_eq!(verdicts[0], WireVerdict::Detected(vec![2, 2]));
    assert!(
        verdicts.iter().all(|v| *v == verdicts[0]),
        "identical verdicts across versions: {verdicts:?}"
    );
}

/// A pattern predicate against an emulated pre-v4 monitor: the open is
/// refused with the machine-readable `unsupported_predicate` kind and
/// the SDK surfaces the typed [`SdkError::UnsupportedPredicate`] — no
/// message-substring sniffing anywhere on the path, so a caller can
/// reliably retry without the offending predicate.
#[test]
fn pattern_predicate_against_a_v2_monitor_is_a_typed_clean_failure() {
    let (addr, svc) = start_monitor(2);
    let result = SessionBuilder::new("compat-pattern-v2", 2)
        .var("lock")
        .var("unlock")
        .pattern("inv", "unlock=1 -> lock=1")
        .expect("the spec itself parses")
        .connect(&addr);
    match result {
        Err(SdkError::UnsupportedPredicate(m)) => {
            assert!(m.contains("wire v4"), "message names the version: {m}");
        }
        Err(other) => panic!("expected UnsupportedPredicate, got {other:?}"),
        Ok(_) => panic!("expected UnsupportedPredicate, got an open session"),
    }
    // One refused hello (the dial walking down) plus the refused open.
    assert!(svc.metrics().protocol_errors >= 2);
    svc.shutdown();
}

/// A distributed session against an emulated v4 monitor: the SDK's
/// dial walks down to v4, the pre-flight check sees a pre-v5 peer, and
/// the open fails fast with the typed
/// [`SdkError::UnsupportedDistribution`] — no frame with the unknown
/// `dist` key ever reaches a peer whose parser would silently drop it.
#[test]
fn distributed_session_against_a_v4_monitor_is_a_typed_clean_failure() {
    let (addr, svc) = start_monitor(4);
    let result = SessionBuilder::new("compat-dist-v4", 2)
        .var("x")
        .conjunctive("goal", &[(0, "x", "=", 1), (1, "x", "=", 1)])
        .distributed(2)
        .connect(&addr);
    match result {
        Err(SdkError::UnsupportedDistribution(m)) => {
            assert!(m.contains("v4"), "message names the peer version: {m}");
        }
        Err(other) => panic!("expected UnsupportedDistribution, got {other:?}"),
        Ok(_) => panic!("expected UnsupportedDistribution, got an open session"),
    }
    assert_eq!(
        svc.metrics().sessions_opened,
        0,
        "nothing silently opened as a plain session"
    );
    svc.shutdown();
}

/// A distributed open through a v5 gateway whose backend fleet is
/// pre-v5: the gateway verifies every placement's negotiated version
/// before opening anything, and refuses with the machine-readable
/// `unsupported_distribution` kind naming the stale backend.
#[test]
fn gateway_refuses_distribution_when_a_backend_is_pre_v5() {
    let (backend_addr, backend) = start_monitor(4);
    let (gw_addr, gw) = start_gateway(backend_addr);
    let mut client = Client::connect(&gw_addr);
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    assert!(matches!(client.recv(), ServerMsg::Welcome { .. }));
    let ClientMsg::Open {
        session,
        processes,
        vars,
        initial,
        predicates,
        ..
    } = open_msg("compat-dist-gw-v4")
    else {
        unreachable!()
    };
    client.send(&ClientMsg::Open {
        session,
        processes,
        vars,
        initial,
        predicates,
        dist: Some(WireDistRole::Distribute { k: 2 }),
    });
    match client.recv() {
        ServerMsg::Error { kind, message, .. } => {
            assert_eq!(
                kind.as_deref(),
                Some(error_kind::UNSUPPORTED_DISTRIBUTION),
                "{message}"
            );
            assert!(message.contains("v5"), "message names the floor: {message}");
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    assert_eq!(
        backend.metrics().sessions_opened,
        0,
        "no half-opened placement left behind"
    );
    drop(gw);
    backend.shutdown();
}

/// A plain (non-distributed) session is untouched by v5: the same
/// fixture against an emulated v4 monitor and a current one settles to
/// byte-identical verdict frames.
#[test]
fn plain_sessions_are_byte_identical_on_v4_and_v5_monitors() {
    let mut legs = Vec::new();
    for version in [4, wire::WIRE_VERSION] {
        let (addr, svc) = start_monitor(version);
        let (verdict, _) = run_sdk_session(&addr, "compat-plain");
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &ServerMsg::Verdict {
                session: "compat-plain".into(),
                predicate: "goal".into(),
                verdict,
            },
        )
        .expect("verdict frame encodes");
        legs.push(bytes);
        svc.shutdown();
    }
    assert_eq!(legs[0], legs[1], "v4 and v5 runs must agree byte for byte");
    assert!(!legs[0].is_empty());
}

/// A pattern predicate through the gateway to a current backend: the
/// gateway relays the open opaquely — no pattern-specific code on its
/// path — and the predictive verdict flows back end-to-end.
#[test]
fn gateway_relays_pattern_predicates_transparently() {
    let (backend_addr, backend) = start_monitor(wire::WIRE_VERSION);
    let (gw_addr, gw) = start_gateway(backend_addr);
    let (session, _tracers) = SessionBuilder::new("compat-gw-pattern", 2)
        .var("lock")
        .var("unlock")
        .pattern("inv", "unlock=1 -> lock=1")
        .expect("the spec parses")
        .connect(&gw_addr)
        .expect("open through the gateway");
    // Lock on P0, then a *concurrent* unlock on P1: the delivered order
    // never shows the inversion, only a causal reordering does — the
    // predictive detector must still flag it.
    let set = |k: &str| [(k.to_string(), 1i64)].into_iter().collect();
    assert!(session.emit(0, vec![1, 0], set("lock")));
    assert!(session.emit(1, vec![0, 1], set("unlock")));
    let report = session.close().expect("close settles");
    assert!(
        matches!(report.verdicts["inv"], WireVerdict::Detected(_)),
        "got {:?}",
        report.verdicts["inv"]
    );
    drop(gw);
    backend.shutdown();
}
