//! Incremental construction of computations.
//!
//! The builder enforces the happened-before model by construction: events
//! are appended in per-process order, a receive can only name a message
//! token returned by an earlier `send`, and vector clocks are computed
//! incrementally (an event's causal past is fixed the moment it is
//! created, so its clock never changes afterwards).

use crate::computation::Computation;
use crate::error::BuildError;
use crate::event::{Event, EventId, EventKind, Message};
use crate::state::{LocalState, VarId, VarTable};
use hb_vclock::VectorClock;

/// A token identifying a sent-but-not-yet-received message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgToken(usize);

/// Builder for [`Computation`]s. See the crate-level example.
#[derive(Debug, Clone)]
pub struct ComputationBuilder {
    vars: VarTable,
    initial_states: Vec<LocalState>,
    current_states: Vec<LocalState>,
    events: Vec<Vec<Event>>,
    clocks: Vec<Vec<VectorClock>>,
    sends: Vec<(EventId, VectorClock)>,
    receives: Vec<Option<EventId>>,
}

impl ComputationBuilder {
    /// Starts a computation over `n` processes (all variables zero).
    pub fn new(n: usize) -> Self {
        ComputationBuilder {
            vars: VarTable::new(),
            initial_states: vec![LocalState::zeroed(0); n],
            current_states: vec![LocalState::zeroed(0); n],
            events: vec![Vec::new(); n],
            clocks: vec![Vec::new(); n],
            sends: Vec::new(),
            receives: Vec::new(),
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.events.len()
    }

    /// Declares (or looks up) a shared-namespace variable.
    pub fn var(&mut self, name: &str) -> VarId {
        self.vars.declare(name)
    }

    /// Sets the initial value of a variable on one process.
    ///
    /// # Panics
    /// Panics if events were already appended to that process (the initial
    /// state must be fixed first) or if the process index is out of range.
    pub fn init(&mut self, process: usize, var: VarId, value: i64) -> &mut Self {
        assert!(
            process < self.num_processes(),
            "process {process} out of range"
        );
        assert!(
            self.events[process].is_empty(),
            "cannot change initial state of P{process} after its first event"
        );
        self.initial_states[process].set(var, value);
        self.current_states[process].set(var, value);
        self
    }

    /// Begins an internal event on `process`.
    pub fn internal(&mut self, process: usize) -> EventDraft<'_> {
        self.draft(process, DraftKind::Internal)
    }

    /// Begins a send event on `process`; finish with
    /// [`EventDraft::done_send`] to obtain the [`MsgToken`].
    pub fn send(&mut self, process: usize) -> EventDraft<'_> {
        self.draft(process, DraftKind::Send)
    }

    /// Begins a receive event on `process` for the given message.
    ///
    /// # Panics
    /// Panics if the message was already received.
    pub fn receive(&mut self, process: usize, msg: MsgToken) -> EventDraft<'_> {
        assert!(
            self.receives[msg.0].is_none(),
            "message {} was already received",
            msg.0
        );
        self.draft(process, DraftKind::Receive { msg: msg.0 })
    }

    fn draft(&mut self, process: usize, kind: DraftKind) -> EventDraft<'_> {
        assert!(
            process < self.num_processes(),
            "process {process} out of range ({} processes)",
            self.num_processes()
        );
        EventDraft {
            builder: self,
            process,
            kind,
            updates: Vec::new(),
            label: None,
        }
    }

    fn commit(
        &mut self,
        draft_kind: DraftKind,
        process: usize,
        updates: &[(VarId, i64)],
        label: Option<String>,
    ) -> EventId {
        let index = self.events[process].len();
        let id = EventId::new(process, index);

        // Clock: previous local clock (or zero), merged with the send's
        // clock for receives, then ticked.
        let mut clock = if index == 0 {
            VectorClock::new(self.num_processes())
        } else {
            self.clocks[process][index - 1].clone()
        };
        let kind = match draft_kind {
            DraftKind::Internal => EventKind::Internal,
            DraftKind::Send => {
                let msg = self.sends.len();
                EventKind::Send { msg }
            }
            DraftKind::Receive { msg } => {
                let send_clock = self.sends[msg].1.clone();
                clock.merge(&send_clock);
                self.receives[msg] = Some(id);
                EventKind::Receive { msg }
            }
        };
        clock.tick(process);

        // State: previous state with this event's updates applied.
        let mut state = self.current_states[process].clone();
        for &(var, value) in updates {
            state.set(var, value);
        }
        self.current_states[process] = state.clone();

        if let EventKind::Send { .. } = kind {
            self.sends.push((id, clock.clone()));
            self.receives.push(None);
        }

        self.events[process].push(Event { kind, label, state });
        self.clocks[process].push(clock);
        id
    }

    /// Finalizes the computation.
    ///
    /// # Errors
    /// Returns [`BuildError::UnreceivedMessage`] if any sent message has no
    /// matching receive. (The model pairs every send with a receive; model
    /// a lost message as an internal event instead.)
    pub fn finish(mut self) -> Result<Computation, BuildError> {
        let mut messages = Vec::with_capacity(self.sends.len());
        for (msg, ((send, _), receive)) in self.sends.iter().zip(&self.receives).enumerate() {
            match receive {
                Some(r) => messages.push(Message {
                    send: *send,
                    receive: *r,
                }),
                None => return Err(BuildError::UnreceivedMessage { msg }),
            }
        }
        self.vars.rebuild_index();
        Ok(Computation {
            vars: self.vars,
            initial_states: self.initial_states,
            events: self.events,
            messages,
            clocks: self.clocks,
        })
    }
}

#[derive(Debug, Clone, Copy)]
enum DraftKind {
    Internal,
    Send,
    Receive { msg: usize },
}

/// An event under construction; returned by [`ComputationBuilder::internal`],
/// [`ComputationBuilder::send`], and [`ComputationBuilder::receive`].
#[derive(Debug)]
pub struct EventDraft<'a> {
    builder: &'a mut ComputationBuilder,
    process: usize,
    kind: DraftKind,
    updates: Vec<(VarId, i64)>,
    label: Option<String>,
}

impl EventDraft<'_> {
    /// Records a variable assignment taking effect at this event.
    pub fn set(mut self, var: VarId, value: i64) -> Self {
        self.updates.push((var, value));
        self
    }

    /// Attaches a label (for figures and debugging).
    pub fn label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// Commits the event and returns its id.
    pub fn done(self) -> EventId {
        let EventDraft {
            builder,
            process,
            kind,
            updates,
            label,
        } = self;
        builder.commit(kind, process, &updates, label)
    }

    /// Commits a send event and returns the message token to pass to
    /// [`ComputationBuilder::receive`].
    ///
    /// # Panics
    /// Panics if the draft is not a send.
    pub fn done_send(self) -> MsgToken {
        assert!(
            matches!(self.kind, DraftKind::Send),
            "done_send on a non-send event"
        );
        let msg = self.builder.sends.len();
        self.done();
        MsgToken(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_computation_is_valid() {
        let c = ComputationBuilder::new(3).finish().unwrap();
        assert_eq!(c.num_processes(), 3);
        assert_eq!(c.num_events(), 0);
        assert_eq!(c.initial_cut(), c.final_cut());
    }

    #[test]
    fn states_accumulate_updates() {
        let mut b = ComputationBuilder::new(1);
        let x = b.var("x");
        let y = b.var("y");
        b.init(0, x, 10);
        b.internal(0).set(y, 1).done();
        b.internal(0).set(x, 2).done();
        let c = b.finish().unwrap();
        assert_eq!(c.local_state(0, 0).get(x), 10);
        assert_eq!(c.local_state(0, 0).get(y), 0);
        assert_eq!(c.local_state(0, 1).get(x), 10);
        assert_eq!(c.local_state(0, 1).get(y), 1);
        assert_eq!(c.local_state(0, 2).get(x), 2);
        assert_eq!(c.local_state(0, 2).get(y), 1);
    }

    #[test]
    fn unreceived_message_is_an_error() {
        let mut b = ComputationBuilder::new(2);
        b.send(0).done_send();
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UnreceivedMessage { msg: 0 }
        );
    }

    #[test]
    #[should_panic(expected = "already received")]
    fn double_receive_panics() {
        let mut b = ComputationBuilder::new(3);
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        b.receive(2, m).done();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_process_panics() {
        let mut b = ComputationBuilder::new(2);
        b.internal(7);
    }

    #[test]
    #[should_panic(expected = "after its first event")]
    fn late_init_panics() {
        let mut b = ComputationBuilder::new(1);
        let x = b.var("x");
        b.internal(0).done();
        b.init(0, x, 1);
    }

    #[test]
    fn message_ids_pair_send_and_receive() {
        let mut b = ComputationBuilder::new(2);
        let m0 = b.send(0).done_send();
        let m1 = b.send(0).done_send();
        b.receive(1, m1).done();
        b.receive(1, m0).done(); // non-FIFO delivery is allowed
        let c = b.finish().unwrap();
        assert_eq!(c.messages().len(), 2);
        assert_eq!(c.messages()[0].send, EventId::new(0, 0));
        assert_eq!(c.messages()[0].receive, EventId::new(1, 1));
        assert_eq!(c.messages()[1].send, EventId::new(0, 1));
        assert_eq!(c.messages()[1].receive, EventId::new(1, 0));
    }

    #[test]
    fn receive_merges_sender_clock() {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(0).done();
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        let c = b.finish().unwrap();
        assert_eq!(c.clock(EventId::new(1, 0)).components(), &[3, 1]);
    }
}
