//! The immutable, vector-clock-annotated computation and its cut queries.

use crate::event::{Event, EventId, EventKind, Message};
use crate::state::{LocalState, VarTable};
use crate::Cut;
use hb_vclock::VectorClock;

/// A distributed computation `(E, →)`: the happened-before model of one
/// execution of a distributed program.
///
/// Constructed via [`crate::ComputationBuilder`], which computes a vector
/// clock for every event. With clocks in hand, every structural query the
/// detection algorithms need — happened-before tests, cut consistency,
/// enabled/maximal events, causal pasts — runs in `O(n)` or better without
/// ever materializing the (exponential) lattice of global states.
#[derive(Debug, Clone, PartialEq)]
pub struct Computation {
    pub(crate) vars: VarTable,
    pub(crate) initial_states: Vec<LocalState>,
    pub(crate) events: Vec<Vec<Event>>,
    pub(crate) messages: Vec<Message>,
    pub(crate) clocks: Vec<Vec<VectorClock>>,
}

impl Computation {
    /// Number of processes `n`.
    pub fn num_processes(&self) -> usize {
        self.events.len()
    }

    /// Total number of events `|E|`.
    pub fn num_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Number of events of process `i`.
    pub fn num_events_of(&self, i: usize) -> usize {
        self.events[i].len()
    }

    /// The events of process `i`, in execution order.
    pub fn events_of(&self, i: usize) -> &[Event] {
        &self.events[i]
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.process][id.index]
    }

    /// All events, process by process.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.num_processes())
            .flat_map(move |p| (0..self.num_events_of(p)).map(move |k| EventId::new(p, k)))
    }

    /// The vector clock of an event. Component `j` counts the events of
    /// `P_j` in the causal past of the event (inclusive).
    pub fn clock(&self, id: EventId) -> &VectorClock {
        &self.clocks[id.process][id.index]
    }

    /// The message relation (send/receive pairs), indexed by message id.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// The variable registry shared by all processes.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Lamport's happened-before: `e → f`.
    pub fn happened_before(&self, e: EventId, f: EventId) -> bool {
        if e == f {
            return false;
        }
        // e → f  iff  V(f) knows at least index(e)+1 events of e's process.
        self.clock(f).get(e.process) as usize > e.index
            && !(e.process == f.process && e.index > f.index)
    }

    /// True iff neither `e → f` nor `f → e`.
    pub fn concurrent(&self, e: EventId, f: EventId) -> bool {
        e != f && !self.happened_before(e, f) && !self.happened_before(f, e)
    }

    /// The local state of process `i` after its first `s` events
    /// (`s = 0` is the initial state).
    pub fn local_state(&self, i: usize, s: u32) -> &LocalState {
        if s == 0 {
            &self.initial_states[i]
        } else {
            &self.events[i][s as usize - 1].state
        }
    }

    /// The local state of process `i` in cut `g` (the frontier state).
    pub fn state_in(&self, g: &Cut, i: usize) -> &LocalState {
        self.local_state(i, g.get(i))
    }

    /// The initial cut `∅`.
    pub fn initial_cut(&self) -> Cut {
        Cut::initial(self.num_processes())
    }

    /// The final cut `E`.
    pub fn final_cut(&self) -> Cut {
        Cut::from_counters(self.events.iter().map(|es| es.len() as u32).collect())
    }

    /// Whether the counters are within bounds for this computation.
    pub fn in_bounds(&self, g: &Cut) -> bool {
        g.width() == self.num_processes()
            && (0..g.width()).all(|i| g.get(i) as usize <= self.events[i].len())
    }

    /// Whether `g` is a **consistent cut**: down-closed under `→`.
    ///
    /// `O(n²)`: for each process the causal past of its last included event
    /// must lie inside the cut; earlier events' pasts are subsumed.
    pub fn is_consistent(&self, g: &Cut) -> bool {
        if !self.in_bounds(g) {
            return false;
        }
        for i in 0..g.width() {
            let c = g.get(i);
            if c == 0 {
                continue;
            }
            let v = &self.clocks[i][c as usize - 1];
            for j in 0..g.width() {
                if v.get(j) > g.get(j) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether process `i`'s next event is enabled in consistent cut `g`
    /// (executing it keeps the cut consistent).
    pub fn can_advance(&self, g: &Cut, i: usize) -> bool {
        let c = g.get(i) as usize;
        if c >= self.events[i].len() {
            return false;
        }
        let v = &self.clocks[i][c];
        (0..g.width()).all(|j| j == i || v.get(j) <= g.get(j))
    }

    /// Processes with an enabled next event in `g`.
    pub fn enabled(&self, g: &Cut) -> Vec<usize> {
        (0..g.width()).filter(|&i| self.can_advance(g, i)).collect()
    }

    /// The frontier of `g`: the last included event of each non-empty
    /// process (the paper's `frontier(G)` restricted to per-process maxima).
    pub fn frontier(&self, g: &Cut) -> Vec<EventId> {
        (0..g.width())
            .filter(|&i| g.get(i) > 0)
            .map(|i| EventId::new(i, g.get(i) as usize - 1))
            .collect()
    }

    /// Whether process `i`'s last included event is maximal in `g`
    /// (removing it keeps the cut consistent).
    pub fn can_retreat(&self, g: &Cut, i: usize) -> bool {
        let c = g.get(i);
        if c == 0 {
            return false;
        }
        // e = last event of i. Maximal iff no other included event knows it.
        (0..g.width()).all(|j| {
            if j == i || g.get(j) == 0 {
                true
            } else {
                self.clocks[j][g.get(j) as usize - 1].get(i) < c
            }
        })
    }

    /// The maximal events of `g` (the paper's `frontier(G)` proper).
    pub fn maximal_events(&self, g: &Cut) -> Vec<EventId> {
        (0..g.width())
            .filter(|&i| self.can_retreat(g, i))
            .map(|i| EventId::new(i, g.get(i) as usize - 1))
            .collect()
    }

    /// All consistent cuts `h` with `g ▷ h` (one enabled event executed).
    pub fn successors(&self, g: &Cut) -> Vec<Cut> {
        self.enabled(g).into_iter().map(|i| g.advanced(i)).collect()
    }

    /// All consistent cuts `h` with `h ▷ g` (one maximal event removed).
    pub fn predecessors(&self, g: &Cut) -> Vec<Cut> {
        (0..g.width())
            .filter(|&i| self.can_retreat(g, i))
            .map(|i| g.retreated(i))
            .collect()
    }

    /// The least consistent cut containing event `e` — its causal past
    /// `↓e`. These cuts are exactly the **join-irreducible** elements of
    /// the lattice `C(E)`.
    pub fn causal_past_cut(&self, e: EventId) -> Cut {
        Cut::from_counters(self.clock(e).components().to_vec())
    }

    /// The greatest consistent cut *excluding* event `e` — the complement
    /// of the up-set `↑e`. These cuts are exactly the **meet-irreducible**
    /// elements of the lattice `C(E)` (used by Algorithm A2).
    pub fn excluding_cut(&self, e: EventId) -> Cut {
        let n = self.num_processes();
        let mut counters = Vec::with_capacity(n);
        for j in 0..n {
            // Events of P_j causally after (or equal to) e form a suffix;
            // count the prefix that is NOT in ↑e.
            let evs = &self.clocks[j];
            // f_j^k ∈ ↑e  iff  V(f_j^k) counts > index(e) events of e's
            // process (for j == e.process this includes e itself).
            let cutoff = evs.partition_point(|v| (v.get(e.process) as usize) <= e.index);
            counters.push(cutoff as u32);
        }
        Cut::from_counters(counters)
    }

    /// The least consistent cut including all the given events (the join of
    /// their causal pasts). With no events this is the initial cut.
    pub fn least_cut_containing(&self, events: &[EventId]) -> Cut {
        let mut g = self.initial_cut();
        for &e in events {
            g = g.join(&self.causal_past_cut(e));
        }
        g
    }

    /// The least consistent cut `h ⊇ g` with `h[i] ≥ target` — `g` joined
    /// with the causal past of the required prefix of process `i`.
    pub fn least_extension(&self, g: &Cut, i: usize, target: u32) -> Cut {
        if g.get(i) >= target || target == 0 {
            return g.clone();
        }
        let e = EventId::new(i, target as usize - 1);
        g.join(&self.causal_past_cut(e))
    }

    /// Message indices in transit in cut `g`: sent but not yet received.
    pub fn pending_messages(&self, g: &Cut) -> Vec<usize> {
        self.messages
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                g.get(m.send.process) as usize > m.send.index
                    && g.get(m.receive.process) as usize <= m.receive.index
            })
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Number of in-transit messages in `g` (0 ⇔ "channels are empty",
    /// the channel predicate of the paper's Fig. 4).
    pub fn in_transit_count(&self, g: &Cut) -> usize {
        self.pending_messages(g).len()
    }

    /// Finds an event by its label, if labels were assigned.
    pub fn event_by_label(&self, label: &str) -> Option<EventId> {
        self.event_ids()
            .find(|&id| self.event(id).label.as_deref() == Some(label))
    }

    /// The initial local states, one per process.
    pub fn initial_states(&self) -> &[LocalState] {
        &self.initial_states
    }

    /// Full integrity audit, for importers and structural transforms:
    ///
    /// * every message's endpoints exist, point back at it, and have the
    ///   right kinds;
    /// * every send/receive event names an existing message that names it
    ///   back;
    /// * the stored vector clocks equal a from-scratch recomputation over
    ///   the event structure (hence the happened-before relation is
    ///   exactly what the structure implies and is acyclic).
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_processes();
        let in_range = |id: crate::EventId| -> bool {
            id.process < n && id.index < self.events[id.process].len()
        };
        for (mi, m) in self.messages.iter().enumerate() {
            if !in_range(m.send) {
                return Err(format!("message {mi}: send {} out of range", m.send));
            }
            if !in_range(m.receive) {
                return Err(format!("message {mi}: receive {} out of range", m.receive));
            }
            match self.event(m.send).kind {
                EventKind::Send { msg } if msg == mi => {}
                ref k => {
                    return Err(format!(
                        "message {mi}: send event {} has kind {k:?}",
                        m.send
                    ))
                }
            }
            match self.event(m.receive).kind {
                EventKind::Receive { msg } if msg == mi => {}
                ref k => {
                    return Err(format!(
                        "message {mi}: receive event {} has kind {k:?}",
                        m.receive
                    ))
                }
            }
        }
        for id in self.event_ids() {
            match self.event(id).kind {
                EventKind::Send { msg } => {
                    if self.messages.get(msg).map(|m| m.send) != Some(id) {
                        return Err(format!("event {id}: dangling send of message {msg}"));
                    }
                }
                EventKind::Receive { msg } => {
                    if self.messages.get(msg).map(|m| m.receive) != Some(id) {
                        return Err(format!("event {id}: dangling receive of message {msg}"));
                    }
                }
                EventKind::Internal => {}
            }
        }
        let recomputed = crate::sub::compute_clocks(&self.events, &self.messages, n);
        for id in self.event_ids() {
            let stored = self.clock(id);
            let fresh = &recomputed[id.process][id.index];
            if stored != fresh {
                return Err(format!(
                    "event {id}: stored clock {stored} ≠ recomputed {fresh}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    /// The paper's Fig. 2(a): two processes; P0 = e1 e2 e3, P1 = f1 f2 f3,
    /// with a message from e2 to f2.
    pub(crate) fn fig2() -> Computation {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).label("e1").done();
        let m = b.send(0).label("e2").done_send();
        b.internal(0).label("e3").done();
        b.internal(1).label("f1").done();
        b.receive(1, m).label("f2").done();
        b.internal(1).label("f3").done();
        b.finish().unwrap()
    }

    #[test]
    fn clocks_match_hand_computation() {
        let c = fig2();
        assert_eq!(c.clock(EventId::new(0, 0)).components(), &[1, 0]); // e1
        assert_eq!(c.clock(EventId::new(0, 1)).components(), &[2, 0]); // e2
        assert_eq!(c.clock(EventId::new(0, 2)).components(), &[3, 0]); // e3
        assert_eq!(c.clock(EventId::new(1, 0)).components(), &[0, 1]); // f1
        assert_eq!(c.clock(EventId::new(1, 1)).components(), &[2, 2]); // f2
        assert_eq!(c.clock(EventId::new(1, 2)).components(), &[2, 3]); // f3
    }

    #[test]
    fn happened_before_agrees_with_figure() {
        let c = fig2();
        let e2 = c.event_by_label("e2").unwrap();
        let f2 = c.event_by_label("f2").unwrap();
        let e3 = c.event_by_label("e3").unwrap();
        let f1 = c.event_by_label("f1").unwrap();
        assert!(c.happened_before(e2, f2));
        assert!(!c.happened_before(f2, e2));
        assert!(c.concurrent(e3, f2));
        assert!(c.concurrent(e2, f1));
        assert!(!c.happened_before(e2, e2));
    }

    #[test]
    fn consistency_rejects_receive_without_send() {
        let c = fig2();
        // f2 (receive) included but e2 (send) not: (1, 2) is inconsistent.
        assert!(!c.is_consistent(&Cut::from_counters(vec![1, 2])));
        assert!(c.is_consistent(&Cut::from_counters(vec![2, 2])));
        assert!(c.is_consistent(&Cut::from_counters(vec![0, 1])));
        assert!(c.is_consistent(&c.initial_cut()));
        assert!(c.is_consistent(&c.final_cut()));
    }

    #[test]
    fn out_of_bounds_cut_is_inconsistent() {
        let c = fig2();
        assert!(!c.is_consistent(&Cut::from_counters(vec![4, 0])));
        assert!(!c.is_consistent(&Cut::from_counters(vec![0, 0, 0])));
    }

    #[test]
    fn enabled_and_maximal_events() {
        let c = fig2();
        let g = Cut::from_counters(vec![1, 1]);
        // f2 needs e2: with cut (1,1) clock(f2)=[2,2] requires 2 events of
        // P0, so only P0 is enabled.
        assert_eq!(c.enabled(&g), vec![0]);
        let g2 = Cut::from_counters(vec![2, 1]);
        assert_eq!(c.enabled(&g2), vec![0, 1]); // now f2 is enabled too
        assert_eq!(
            c.maximal_events(&g),
            vec![EventId::new(0, 0), EventId::new(1, 0)]
        );
    }

    #[test]
    fn can_advance_respects_message_dependency() {
        let c = fig2();
        let g = Cut::from_counters(vec![1, 1]);
        assert!(c.can_advance(&g, 0));
        assert!(!c.can_advance(&g, 1)); // f2 requires e2 first
    }

    #[test]
    fn predecessors_remove_only_maximal_events() {
        let c = fig2();
        let g = Cut::from_counters(vec![2, 2]);
        // e2 is not maximal in g (f2 depends on it); f2 is maximal; e2's
        // removal would orphan f2.
        assert!(!c.can_retreat(&g, 0));
        assert!(c.can_retreat(&g, 1));
        assert_eq!(c.predecessors(&g), vec![Cut::from_counters(vec![2, 1])]);
    }

    #[test]
    fn successors_are_consistent() {
        let c = fig2();
        for s in c.successors(&c.initial_cut()) {
            assert!(c.is_consistent(&s));
        }
    }

    #[test]
    fn causal_past_cut_is_join_irreducible_base() {
        let c = fig2();
        let f2 = c.event_by_label("f2").unwrap();
        assert_eq!(c.causal_past_cut(f2), Cut::from_counters(vec![2, 2]));
        assert!(c.is_consistent(&c.causal_past_cut(f2)));
    }

    #[test]
    fn excluding_cut_is_complement_of_upset() {
        let c = fig2();
        let e2 = c.event_by_label("e2").unwrap();
        // ↑e2 = {e2, e3, f2, f3}; complement = {e1, f1} = cut (1, 1).
        assert_eq!(c.excluding_cut(e2), Cut::from_counters(vec![1, 1]));
        let f1 = c.event_by_label("f1").unwrap();
        // ↑f1 = {f1, f2, f3}; complement = {e1, e2, e3} = (3, 0).
        assert_eq!(c.excluding_cut(f1), Cut::from_counters(vec![3, 0]));
        for id in c.event_ids() {
            assert!(c.is_consistent(&c.excluding_cut(id)));
        }
    }

    #[test]
    fn pending_messages_tracks_in_transit() {
        let c = fig2();
        assert_eq!(c.in_transit_count(&Cut::from_counters(vec![2, 1])), 1);
        assert_eq!(c.in_transit_count(&Cut::from_counters(vec![2, 2])), 0);
        assert_eq!(c.in_transit_count(&c.initial_cut()), 0);
        assert_eq!(c.in_transit_count(&c.final_cut()), 0);
    }

    #[test]
    fn least_cut_containing_joins_pasts() {
        let c = fig2();
        let e1 = c.event_by_label("e1").unwrap();
        let f1 = c.event_by_label("f1").unwrap();
        assert_eq!(
            c.least_cut_containing(&[e1, f1]),
            Cut::from_counters(vec![1, 1])
        );
        assert_eq!(c.least_cut_containing(&[]), c.initial_cut());
    }

    #[test]
    fn least_extension_closes_causally() {
        let c = fig2();
        let g = c.initial_cut();
        // Asking P1 to reach f2 (target=2) forces e1, e2 in as well.
        assert_eq!(c.least_extension(&g, 1, 2), Cut::from_counters(vec![2, 2]));
        // A target already met returns the cut unchanged.
        let h = Cut::from_counters(vec![2, 2]);
        assert_eq!(c.least_extension(&h, 1, 1), h);
    }
}
