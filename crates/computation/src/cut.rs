//! Consistent cuts represented as per-process event counters.

use std::fmt;

/// A global state of the computation: `cut[i]` is the number of events of
/// process `P_i` that have been executed.
///
/// A `Cut` value is just a counter vector; whether it denotes a *consistent*
/// cut of a particular computation is checked by
/// [`crate::Computation::is_consistent`]. Cuts are ordered by set inclusion
/// of the event sets they denote, which coincides with the componentwise
/// order on counters; joins and meets are componentwise max and min
/// (set union and intersection), making the consistent cuts of a
/// computation a finite distributive lattice (Section 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    counters: Vec<u32>,
}

impl Cut {
    /// The empty (initial) cut over `n` processes.
    pub fn initial(n: usize) -> Self {
        Cut {
            counters: vec![0; n],
        }
    }

    /// Builds a cut from raw counters.
    pub fn from_counters(counters: Vec<u32>) -> Self {
        Cut { counters }
    }

    /// Number of processes.
    pub fn width(&self) -> usize {
        self.counters.len()
    }

    /// Events of process `i` executed so far.
    pub fn get(&self, i: usize) -> u32 {
        self.counters[i]
    }

    /// Overwrites the counter of process `i`.
    pub fn set(&mut self, i: usize, value: u32) {
        self.counters[i] = value;
    }

    /// Raw counters.
    pub fn counters(&self) -> &[u32] {
        &self.counters
    }

    /// Total number of executed events — the cut's rank in the lattice.
    pub fn rank(&self) -> u32 {
        self.counters.iter().sum()
    }

    /// Set inclusion `self ⊆ other`.
    pub fn leq(&self, other: &Cut) -> bool {
        debug_assert_eq!(self.width(), other.width());
        self.counters
            .iter()
            .zip(&other.counters)
            .all(|(a, b)| a <= b)
    }

    /// Strict inclusion.
    pub fn lt(&self, other: &Cut) -> bool {
        self.leq(other) && self != other
    }

    /// Set union (lattice join).
    pub fn join(&self, other: &Cut) -> Cut {
        debug_assert_eq!(self.width(), other.width());
        Cut {
            counters: self
                .counters
                .iter()
                .zip(&other.counters)
                .map(|(a, b)| *a.max(b))
                .collect(),
        }
    }

    /// Set intersection (lattice meet).
    pub fn meet(&self, other: &Cut) -> Cut {
        debug_assert_eq!(self.width(), other.width());
        Cut {
            counters: self
                .counters
                .iter()
                .zip(&other.counters)
                .map(|(a, b)| *a.min(b))
                .collect(),
        }
    }

    /// The cut with one more event of process `i`.
    pub fn advanced(&self, i: usize) -> Cut {
        let mut next = self.clone();
        next.counters[i] += 1;
        next
    }

    /// The cut with one fewer event of process `i`.
    ///
    /// # Panics
    /// Panics if process `i` has no executed events in this cut.
    pub fn retreated(&self, i: usize) -> Cut {
        assert!(
            self.counters[i] > 0,
            "cannot retreat process with no events"
        );
        let mut prev = self.clone();
        prev.counters[i] -= 1;
        prev
    }

    /// True iff `other = self ∪ {e}` for a single event `e` — the paper's
    /// successor relation `self ▷ other` (ignoring consistency, which the
    /// caller checks against a computation).
    pub fn covers_step(&self, other: &Cut) -> bool {
        if self.width() != other.width() {
            return false;
        }
        let mut diff = 0u32;
        for (a, b) in self.counters.iter().zip(&other.counters) {
            if b < a {
                return false;
            }
            diff += b - a;
            if diff > 1 {
                return false;
            }
        }
        diff == 1
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(cs: &[u32]) -> Cut {
        Cut::from_counters(cs.to_vec())
    }

    #[test]
    fn initial_cut_has_rank_zero() {
        let c = Cut::initial(3);
        assert_eq!(c.rank(), 0);
        assert_eq!(c.counters(), &[0, 0, 0]);
    }

    #[test]
    fn join_meet_are_union_intersection() {
        let a = cut(&[2, 0, 1]);
        let b = cut(&[1, 3, 1]);
        assert_eq!(a.join(&b), cut(&[2, 3, 1]));
        assert_eq!(a.meet(&b), cut(&[1, 0, 1]));
    }

    #[test]
    fn leq_is_componentwise() {
        assert!(cut(&[1, 2]).leq(&cut(&[1, 2])));
        assert!(cut(&[1, 2]).leq(&cut(&[2, 2])));
        assert!(!cut(&[1, 2]).leq(&cut(&[0, 5])));
        assert!(cut(&[1, 2]).lt(&cut(&[2, 2])));
        assert!(!cut(&[1, 2]).lt(&cut(&[1, 2])));
    }

    #[test]
    fn advance_retreat_roundtrip() {
        let c = cut(&[1, 1]);
        assert_eq!(c.advanced(0).retreated(0), c);
        assert_eq!(c.advanced(1), cut(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "cannot retreat")]
    fn retreat_at_zero_panics() {
        cut(&[0, 1]).retreated(0);
    }

    #[test]
    fn covers_step_detects_single_event_difference() {
        assert!(cut(&[1, 1]).covers_step(&cut(&[1, 2])));
        assert!(!cut(&[1, 1]).covers_step(&cut(&[2, 2])));
        assert!(!cut(&[1, 1]).covers_step(&cut(&[1, 1])));
        assert!(!cut(&[1, 1]).covers_step(&cut(&[0, 2])));
    }

    #[test]
    fn display_renders_counters() {
        assert_eq!(cut(&[0, 3]).to_string(), "(0,3)");
    }
}
