//! Graphviz (DOT) export of computations — regenerates the paper's
//! space-time diagrams (Fig. 2a, 3, 4a).

use crate::computation::Computation;
use crate::event::EventKind;
use std::fmt::Write as _;

impl Computation {
    /// Renders the computation as a DOT digraph: one horizontal chain per
    /// process plus dashed message arrows. Event labels default to
    /// `e{process}^{index+1}` when no explicit label was set.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph computation {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        for i in 0..self.num_processes() {
            let _ = writeln!(out, "  subgraph cluster_p{i} {{");
            let _ = writeln!(out, "    label=\"P{i}\"; style=invis;");
            for (k, ev) in self.events_of(i).iter().enumerate() {
                let name = format!("p{i}_{k}");
                let label = ev
                    .label
                    .clone()
                    .unwrap_or_else(|| format!("e{}^{}", i, k + 1));
                let shape = match ev.kind {
                    EventKind::Internal => "circle",
                    EventKind::Send { .. } => "doublecircle",
                    EventKind::Receive { .. } => "Mcircle",
                };
                let _ = writeln!(out, "    {name} [label=\"{label}\", shape={shape}];");
            }
            for k in 1..self.num_events_of(i) {
                let _ = writeln!(out, "    p{i}_{} -> p{i}_{k};", k - 1);
            }
            let _ = writeln!(out, "  }}");
        }
        for m in self.messages() {
            let _ = writeln!(
                out,
                "  p{}_{} -> p{}_{} [style=dashed, color=blue];",
                m.send.process, m.send.index, m.receive.process, m.receive.index
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ComputationBuilder;

    #[test]
    fn dot_contains_all_events_and_messages() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).label("e1").done_send();
        b.receive(1, m).label("f1").done();
        let dot = b.finish().unwrap().to_dot();
        assert!(dot.contains("digraph computation"));
        assert!(dot.contains("e1"));
        assert!(dot.contains("f1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("p0_0 -> p1_0"));
    }

    #[test]
    fn dot_defaults_labels() {
        let mut b = ComputationBuilder::new(1);
        b.internal(0).done();
        let dot = b.finish().unwrap().to_dot();
        assert!(dot.contains("e0^1"));
    }
}
