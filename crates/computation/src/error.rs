//! Errors raised while constructing a computation.

use std::fmt;

/// Why a [`crate::ComputationBuilder`] rejected a trace.
///
/// Programmer errors (out-of-range process indices, double receives)
/// panic at the offending call instead — they are bugs in the caller, not
/// properties of the trace. The only trace-level failure is a message
/// with no receive, which can only be diagnosed at
/// [`crate::ComputationBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A message was sent but never received. The happened-before model
    /// pairs every send with a receive; model a lost message as an
    /// internal event instead.
    UnreceivedMessage {
        /// The message index (in send order).
        msg: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnreceivedMessage { msg } => {
                write!(f, "message {msg} was sent but never received")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BuildError::UnreceivedMessage { msg: 3 }
            .to_string()
            .contains("message 3"));
    }
}
