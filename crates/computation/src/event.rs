//! Events of a distributed computation.

use crate::state::LocalState;
use std::fmt;

/// Identifies an event as (process, position-within-process).
///
/// `index` is zero-based: the `k`-th event executed by process `process`.
/// In cut terms, event `(i, k)` is *included* in a cut `G` iff `G[i] > k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    /// The executing process.
    pub process: usize,
    /// Zero-based position within the process's event sequence.
    pub index: usize,
}

impl EventId {
    /// Convenience constructor.
    pub fn new(process: usize, index: usize) -> Self {
        EventId { process, index }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}^{}", self.process, self.index + 1)
    }
}

/// What an event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A purely local event.
    Internal,
    /// Sends message `msg` (an index into [`crate::Computation::messages`]).
    Send {
        /// Message index.
        msg: usize,
    },
    /// Receives message `msg`.
    Receive {
        /// Message index.
        msg: usize,
    },
}

/// One event: its kind, an optional label (used when rendering the paper's
/// figures), and the process's local state immediately *after* the event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What the event does.
    pub kind: EventKind,
    /// Optional human-readable label (`e1`, `f2`, …).
    pub label: Option<String>,
    /// Local state of the executing process after this event.
    pub state: LocalState,
}

impl Event {
    /// True iff this event sends a message.
    pub fn is_send(&self) -> bool {
        matches!(self.kind, EventKind::Send { .. })
    }

    /// True iff this event receives a message.
    pub fn is_receive(&self) -> bool {
        matches!(self.kind, EventKind::Receive { .. })
    }
}

/// A message: the send event and the receive event it pairs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    /// The send event.
    pub send: EventId,
    /// The receive event.
    pub receive: EventId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_orders_by_process_then_index() {
        assert!(EventId::new(0, 5) < EventId::new(1, 0));
        assert!(EventId::new(1, 0) < EventId::new(1, 1));
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(EventId::new(2, 0).to_string(), "e2^1");
    }

    #[test]
    fn kind_predicates() {
        let mk = |kind| Event {
            kind,
            label: None,
            state: LocalState::zeroed(0),
        };
        assert!(mk(EventKind::Send { msg: 0 }).is_send());
        assert!(mk(EventKind::Receive { msg: 0 }).is_receive());
        assert!(!mk(EventKind::Internal).is_send());
        assert!(!mk(EventKind::Internal).is_receive());
    }
}
