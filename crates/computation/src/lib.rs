//! The happened-before model of a distributed computation.
//!
//! This crate implements Section 2 of Sen & Garg, *Detecting Temporal Logic
//! Predicates on the Happened-Before Model* (IPDPS 2002): a distributed
//! computation is a partially ordered set `(E, →)` of events, where `→` is
//! Lamport's happened-before relation, and a **consistent cut** is a
//! down-closed subset of events — equivalently a reachable global state.
//!
//! The main types are:
//!
//! * [`Computation`] — an immutable, vector-clock-annotated trace: `n`
//!   sequential processes, each a sequence of [`Event`]s (internal, send,
//!   receive), with per-event local variable states and a message relation.
//! * [`ComputationBuilder`] — the only way to construct a [`Computation`];
//!   it guarantees acyclicity and message well-formedness by construction
//!   and computes vector clocks on [`ComputationBuilder::finish`].
//! * [`Cut`] — a consistent cut represented compactly as one event counter
//!   per process. All cut-level queries (consistency, frontier, enabled
//!   events, successors/predecessors under the paper's `▷` relation) are
//!   methods on [`Computation`].
//!
//! # Quickstart
//!
//! ```
//! use hb_computation::ComputationBuilder;
//!
//! // Fig. 2(a) of the paper: two processes, three events each, one message.
//! let mut b = ComputationBuilder::new(2);
//! let x = b.var("x");
//! b.internal(0).set(x, 1).label("e1").done();
//! let m = b.send(0).label("e2").done_send();
//! b.internal(0).label("e3").done();
//! b.internal(1).set(x, 5).label("f1").done();
//! b.receive(1, m).label("f2").done();
//! b.internal(1).label("f3").done();
//! let comp = b.finish().unwrap();
//!
//! assert_eq!(comp.num_processes(), 2);
//! assert_eq!(comp.num_events(), 6);
//! // The initial cut is consistent and has every first event enabled.
//! let init = comp.initial_cut();
//! assert!(comp.is_consistent(&init));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod computation;
mod cut;
mod dot;
mod error;
mod event;
mod state;
mod sub;

pub use builder::{ComputationBuilder, EventDraft, MsgToken};
pub use computation::Computation;
pub use cut::Cut;
pub use error::BuildError;
pub use event::{Event, EventId, EventKind, Message};
pub use state::{LocalState, VarId, VarTable};
