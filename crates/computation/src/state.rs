//! Local variable states.
//!
//! Each process carries a set of integer-valued variables; the state of a
//! process is the valuation of those variables. States are stored as flat
//! `i64` vectors indexed by [`VarId`] slots allocated from a per-computation
//! [`VarTable`], which keeps per-event storage compact for large traces.

use std::collections::HashMap;
use std::fmt;

/// A handle to a declared variable (an index into every [`LocalState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VarId` from a raw slot index. Useful for tests and trace
    /// importers; normal code obtains ids from [`VarTable::declare`].
    pub fn from_index(i: usize) -> VarId {
        VarId(i as u32)
    }
}

/// The registry of variable names for one computation.
///
/// All processes share one namespace; a variable a process never assigns
/// simply keeps its initial value (zero unless set) on that process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarTable {
    names: Vec<String>,
    index: HashMap<String, VarId>,
}

impl VarTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or looks up) a variable by name.
    pub fn declare(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up a variable previously declared with [`VarTable::declare`].
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name of a declared variable.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }

    /// Rebuilds the name index after deserialization.
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VarId(i as u32)))
            .collect();
    }
}

/// A valuation of all declared variables on one process at one instant.
///
/// States are kept in **normal form** — trailing zeros are trimmed — so
/// that structural equality (`==`, hashing) coincides with semantic
/// equality of the valuation, regardless of how the state was built
/// (unset variables read as zero).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocalState {
    values: Vec<i64>,
}

impl LocalState {
    /// The all-zero state (over any number of variables).
    pub fn zeroed(_nvars: usize) -> Self {
        LocalState { values: Vec::new() }
    }

    /// Builds a state from raw values (normalized).
    pub fn from_values(values: Vec<i64>) -> Self {
        let mut s = LocalState { values };
        s.normalize();
        s
    }

    fn normalize(&mut self) {
        while self.values.last() == Some(&0) {
            self.values.pop();
        }
    }

    /// Reads a variable. Slots beyond the stored width read as zero, so
    /// states created before later variable declarations stay valid.
    pub fn get(&self, var: VarId) -> i64 {
        self.values.get(var.index()).copied().unwrap_or(0)
    }

    /// Writes a variable, growing the state if needed.
    pub fn set(&mut self, var: VarId, value: i64) {
        if var.index() >= self.values.len() {
            if value == 0 {
                return; // writing zero to an implicit-zero slot: no-op
            }
            self.values.resize(var.index() + 1, 0);
        }
        self.values[var.index()] = value;
        self.normalize();
    }

    /// Raw values (width may be smaller than the table if trailing
    /// variables were never written).
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

impl fmt::Display for LocalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_is_idempotent() {
        let mut t = VarTable::new();
        let a = t.declare("x");
        let b = t.declare("x");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "x");
    }

    #[test]
    fn lookup_finds_declared_only() {
        let mut t = VarTable::new();
        let x = t.declare("x");
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.lookup("y"), None);
    }

    #[test]
    fn state_reads_missing_slots_as_zero() {
        let s = LocalState::zeroed(1);
        assert_eq!(s.get(VarId(5)), 0);
    }

    #[test]
    fn state_set_grows() {
        let mut s = LocalState::zeroed(0);
        s.set(VarId(2), 7);
        assert_eq!(s.get(VarId(2)), 7);
        assert_eq!(s.get(VarId(0)), 0);
    }

    #[test]
    fn iter_yields_declaration_order() {
        let mut t = VarTable::new();
        t.declare("a");
        t.declare("b");
        let names: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
