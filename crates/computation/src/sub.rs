//! Restriction and reversal of computations.
//!
//! * [`Computation::restricted_to`] — the sub-computation induced by a
//!   consistent cut (needed by the paper's Algorithm A3, which checks
//!   `EG(p)` on `I_q − {e}` for each maximal event `e` of `I_q`).
//! * [`Computation::reversed`] — the order-dual computation, used to test
//!   the join-/meet-irreducible duality and to derive post-linear
//!   algorithms from linear ones.

use crate::computation::Computation;
use crate::cut::Cut;
use crate::event::{Event, EventId, EventKind, Message};
use hb_vclock::VectorClock;

impl Computation {
    /// The sub-computation containing exactly the events of consistent cut
    /// `g` (per-process prefixes). Local states, labels, messages, and
    /// clocks carry over unchanged; messages whose receive lies outside
    /// `g` are demoted to internal events (their send no longer pairs).
    ///
    /// # Panics
    /// Panics if `g` is not a consistent cut of `self`.
    pub fn restricted_to(&self, g: &Cut) -> Computation {
        assert!(
            self.is_consistent(g),
            "restriction requires a consistent cut"
        );
        let n = self.num_processes();
        let mut events: Vec<Vec<Event>> = Vec::with_capacity(n);
        let mut clocks: Vec<Vec<VectorClock>> = Vec::with_capacity(n);
        for i in 0..n {
            let take = g.get(i) as usize;
            events.push(self.events[i][..take].to_vec());
            clocks.push(self.clocks[i][..take].to_vec());
        }

        // Keep messages fully inside the cut; renumber them. Since g is
        // consistent, a receive inside the cut implies its send is inside.
        let mut messages = Vec::new();
        let mut remap = vec![usize::MAX; self.messages.len()];
        for (old_idx, m) in self.messages.iter().enumerate() {
            let recv_in = g.get(m.receive.process) as usize > m.receive.index;
            if recv_in {
                remap[old_idx] = messages.len();
                messages.push(*m);
            }
        }
        for row in &mut events {
            for ev in row.iter_mut() {
                match ev.kind {
                    EventKind::Send { msg } => {
                        ev.kind = if remap[msg] != usize::MAX {
                            EventKind::Send { msg: remap[msg] }
                        } else {
                            // Send whose receive fell outside the cut.
                            EventKind::Internal
                        };
                    }
                    EventKind::Receive { msg } => {
                        debug_assert_ne!(remap[msg], usize::MAX);
                        ev.kind = EventKind::Receive { msg: remap[msg] };
                    }
                    EventKind::Internal => {}
                }
            }
        }

        Computation {
            vars: self.vars.clone(),
            initial_states: self.initial_states.clone(),
            events,
            messages,
            clocks,
        }
    }

    /// The order-dual computation: every process's event sequence is
    /// reversed and every message flipped (receive becomes send). The
    /// consistent cuts of the result are exactly the complements of the
    /// consistent cuts of `self`, so join-irreducibles map to
    /// meet-irreducibles and vice versa.
    ///
    /// Local states do **not** survive reversal meaningfully (a state
    /// describes the world *after* an event); the reversed computation
    /// carries each event's *pre*-state so that structural algorithms that
    /// also consult states remain usable in tests. Labels gain a `~`
    /// prefix to flag the reversal.
    pub fn reversed(&self) -> Computation {
        let n = self.num_processes();
        let mut b_events: Vec<Vec<Event>> = vec![Vec::new(); n];

        // Flip messages: old (send → receive) becomes (receive → send).
        let mut messages = Vec::with_capacity(self.messages.len());
        let flip = |id: EventId, this: &Computation| -> EventId {
            EventId::new(id.process, this.events[id.process].len() - 1 - id.index)
        };
        for m in &self.messages {
            messages.push(Message {
                send: flip(m.receive, self),
                receive: flip(m.send, self),
            });
        }

        for (i, row) in b_events.iter_mut().enumerate() {
            let m_i = self.events[i].len();
            for k in (0..m_i).rev() {
                let old = &self.events[i][k];
                let kind = match old.kind {
                    EventKind::Internal => EventKind::Internal,
                    EventKind::Send { msg } => EventKind::Receive { msg },
                    EventKind::Receive { msg } => EventKind::Send { msg },
                };
                // Pre-state of old event k = state after event k-1.
                let state = self.local_state(i, k as u32).clone();
                let label = old.label.as_ref().map(|l| format!("~{l}"));
                row.push(Event { kind, label, state });
            }
        }

        // Recompute clocks by a forward pass over the reversed structure.
        let clocks = compute_clocks(&b_events, &messages, n);

        // Initial states of the reversal are the final states of self.
        let initial_states = (0..n)
            .map(|i| self.local_state(i, self.events[i].len() as u32).clone())
            .collect();

        Computation {
            vars: self.vars.clone(),
            initial_states,
            events: b_events,
            messages,
            clocks,
        }
    }
}

/// Standard vector-clock sweep for an event structure given as per-process
/// sequences plus a message relation. Receives may depend on sends later in
/// the scan order, so we iterate to a fixpoint over a worklist in
/// topological order (Kahn's algorithm over process-order + message edges).
pub(crate) fn compute_clocks(
    events: &[Vec<Event>],
    messages: &[Message],
    n: usize,
) -> Vec<Vec<VectorClock>> {
    let mut clocks: Vec<Vec<Option<VectorClock>>> =
        events.iter().map(|es| vec![None; es.len()]).collect();
    let mut send_of: Vec<Option<EventId>> = vec![None; messages.len()];
    for (mi, m) in messages.iter().enumerate() {
        send_of[mi] = Some(m.send);
    }

    let total: usize = events.iter().map(Vec::len).sum();
    let mut done = 0usize;
    // Quadratic fixpoint is fine here: reversal is a test/analysis utility,
    // not a hot path.
    while done < total {
        let mut progressed = false;
        for i in 0..n {
            for k in 0..events[i].len() {
                if clocks[i][k].is_some() {
                    continue;
                }
                if k > 0 && clocks[i][k - 1].is_none() {
                    continue;
                }
                let dep = match events[i][k].kind {
                    EventKind::Receive { msg } => {
                        let s = send_of[msg].expect("message has a send");
                        match &clocks[s.process][s.index] {
                            Some(c) => Some(c.clone()),
                            None => continue,
                        }
                    }
                    _ => None,
                };
                let mut clock = if k == 0 {
                    VectorClock::new(n)
                } else {
                    clocks[i][k - 1].clone().unwrap()
                };
                if let Some(d) = dep {
                    clock.merge(&d);
                }
                clock.tick(i);
                clocks[i][k] = Some(clock);
                done += 1;
                progressed = true;
            }
        }
        assert!(progressed, "cycle in reversed computation (impossible)");
    }
    clocks
        .into_iter()
        .map(|row| row.into_iter().map(Option::unwrap).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComputationBuilder;

    fn diamond() -> Computation {
        // P0: a(send m) b ; P1: c d(recv m)
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).label("a").done_send();
        b.internal(0).label("b").done();
        b.internal(1).label("c").done();
        b.receive(1, m).label("d").done();
        b.finish().unwrap()
    }

    #[test]
    fn restriction_keeps_prefixes_and_messages() {
        let c = diamond();
        let g = Cut::from_counters(vec![1, 2]); // {a, c, d}
        assert!(c.is_consistent(&g));
        let sub = c.restricted_to(&g);
        assert_eq!(sub.num_events(), 3);
        assert_eq!(sub.messages().len(), 1);
        assert!(sub.is_consistent(&sub.final_cut()));
        assert_eq!(sub.final_cut(), g);
        // Clocks carry over unchanged.
        assert_eq!(sub.clock(EventId::new(1, 1)), c.clock(EventId::new(1, 1)));
    }

    #[test]
    fn restriction_demotes_unreceived_sends() {
        let c = diamond();
        let g = Cut::from_counters(vec![2, 1]); // {a, b, c}: send without recv
        assert!(c.is_consistent(&g));
        let sub = c.restricted_to(&g);
        assert_eq!(sub.messages().len(), 0);
        assert_eq!(sub.event(EventId::new(0, 0)).kind, EventKind::Internal);
    }

    #[test]
    #[should_panic(expected = "consistent cut")]
    fn restriction_rejects_inconsistent_cut() {
        let c = diamond();
        c.restricted_to(&Cut::from_counters(vec![0, 2])); // recv without send
    }

    #[test]
    fn reversal_flips_happened_before() {
        let c = diamond();
        let r = c.reversed();
        assert_eq!(r.num_events(), c.num_events());
        // Original a → d becomes ~d → ~a.
        let ra = r.event_by_label("~a").unwrap();
        let rd = r.event_by_label("~d").unwrap();
        assert!(r.happened_before(rd, ra));
        assert!(!r.happened_before(ra, rd));
    }

    #[test]
    fn reversal_is_involutive_on_structure() {
        let c = diamond();
        let rr = c.reversed().reversed();
        for (e, f) in [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            let ids: Vec<EventId> = c.event_ids().collect();
            assert_eq!(
                c.happened_before(ids[e], ids[f]),
                rr.happened_before(ids[e], ids[f]),
                "pair {e},{f}"
            );
        }
    }

    #[test]
    fn reversed_cuts_are_complements() {
        let c = diamond();
        let r = c.reversed();
        // g consistent in c  iff  complement consistent in r.
        let final_cut = c.final_cut();
        for a in 0..=final_cut.get(0) {
            for b in 0..=final_cut.get(1) {
                let g = Cut::from_counters(vec![a, b]);
                let comp = Cut::from_counters(vec![final_cut.get(0) - a, final_cut.get(1) - b]);
                assert_eq!(c.is_consistent(&g), r.is_consistent(&comp), "cut {g}");
            }
        }
    }
}
