//! Property tests over randomly generated computations: cut-lattice laws,
//! successor/predecessor duality, and the irreducible-cut characterizations.

use hb_computation::{Computation, ComputationBuilder, Cut, EventId};
use proptest::prelude::*;

/// One step of a random trace plan.
#[derive(Debug, Clone)]
enum Op {
    Internal(usize),
    Send(usize),
    /// Receive the oldest pending message on the given process.
    Receive(usize),
}

fn plan(n_procs: usize, max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0..n_procs, 0u8..3), 0..max_ops).prop_map(|raw| {
        raw.into_iter()
            .map(|(p, k)| match k {
                0 => Op::Internal(p),
                1 => Op::Send(p),
                _ => Op::Receive(p),
            })
            .collect()
    })
}

/// Interprets a plan, pairing receives with the oldest unreceived message
/// and demoting unreceivable receives / unreceived sends to internals.
fn build(n_procs: usize, ops: &[Op]) -> Computation {
    let mut b = ComputationBuilder::new(n_procs);
    let x = b.var("x");
    let mut pending = std::collections::VecDeque::new();
    let mut v = 0i64;
    for op in ops {
        v += 1;
        match *op {
            Op::Internal(p) => {
                b.internal(p).set(x, v).done();
            }
            Op::Send(p) => {
                pending.push_back(b.send(p).set(x, v).done_send());
            }
            Op::Receive(p) => match pending.pop_front() {
                Some(tok) => {
                    b.receive(p, tok).set(x, v).done();
                }
                None => {
                    b.internal(p).set(x, v).done();
                }
            },
        }
    }
    // Drain unreceived sends round-robin so finish() succeeds.
    let mut p = 0usize;
    while let Some(tok) = pending.pop_front() {
        b.receive(p % n_procs, tok).done();
        p += 1;
    }
    b.finish().expect("plan builds a valid computation")
}

/// Enumerates every in-bounds counter vector (exponential; tests keep the
/// computations tiny).
fn all_cuts(c: &Computation) -> Vec<Cut> {
    let maxes: Vec<u32> = (0..c.num_processes())
        .map(|i| c.num_events_of(i) as u32)
        .collect();
    let mut cuts = vec![Cut::initial(c.num_processes())];
    for (i, &m) in maxes.iter().enumerate() {
        let mut next = Vec::new();
        for cut in &cuts {
            for v in 0..=m {
                let mut c2 = cut.clone();
                c2.set(i, v);
                next.push(c2);
            }
        }
        cuts = next;
    }
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn consistent_cuts_closed_under_join_meet(ops in plan(3, 12)) {
        let c = build(3, &ops);
        let cons: Vec<Cut> = all_cuts(&c)
            .into_iter()
            .filter(|g| c.is_consistent(g))
            .collect();
        for a in &cons {
            for b in &cons {
                prop_assert!(c.is_consistent(&a.join(b)), "join of {a} and {b}");
                prop_assert!(c.is_consistent(&a.meet(b)), "meet of {a} and {b}");
            }
        }
    }

    #[test]
    fn successors_and_predecessors_are_dual(ops in plan(3, 10)) {
        let c = build(3, &ops);
        for g in all_cuts(&c).into_iter().filter(|g| c.is_consistent(g)) {
            for h in c.successors(&g) {
                prop_assert!(c.is_consistent(&h));
                prop_assert!(g.covers_step(&h));
                prop_assert!(c.predecessors(&h).contains(&g));
            }
            for h in c.predecessors(&g) {
                prop_assert!(c.is_consistent(&h));
                prop_assert!(h.covers_step(&g));
                prop_assert!(c.successors(&h).contains(&g));
            }
        }
    }

    #[test]
    fn every_consistent_cut_reachable_by_steps(ops in plan(3, 10)) {
        // The lattice is graded: every consistent cut of rank r+1 has a
        // predecessor of rank r, so the initial cut reaches everything.
        let c = build(3, &ops);
        for g in all_cuts(&c).into_iter().filter(|g| c.is_consistent(g)) {
            if g.rank() > 0 {
                prop_assert!(!c.predecessors(&g).is_empty(), "cut {g} has no predecessor");
            }
        }
    }

    #[test]
    fn causal_past_cut_is_least_containing(ops in plan(3, 10)) {
        let c = build(3, &ops);
        let cons: Vec<Cut> = all_cuts(&c)
            .into_iter()
            .filter(|g| c.is_consistent(g))
            .collect();
        for e in c.event_ids() {
            let past = c.causal_past_cut(e);
            prop_assert!(c.is_consistent(&past));
            // past contains e
            prop_assert!(past.get(e.process) as usize > e.index);
            // and is ≤ every consistent cut containing e
            for g in &cons {
                if g.get(e.process) as usize > e.index {
                    prop_assert!(past.leq(g));
                }
            }
        }
    }

    #[test]
    fn excluding_cut_is_greatest_excluding(ops in plan(3, 10)) {
        let c = build(3, &ops);
        let cons: Vec<Cut> = all_cuts(&c)
            .into_iter()
            .filter(|g| c.is_consistent(g))
            .collect();
        for e in c.event_ids() {
            let exc = c.excluding_cut(e);
            prop_assert!(c.is_consistent(&exc));
            prop_assert!(exc.get(e.process) as usize <= e.index);
            for g in &cons {
                if g.get(e.process) as usize <= e.index {
                    prop_assert!(g.leq(&exc));
                }
            }
        }
    }

    #[test]
    fn happened_before_is_a_strict_partial_order(ops in plan(4, 14)) {
        let c = build(4, &ops);
        let ids: Vec<EventId> = c.event_ids().collect();
        for &e in &ids {
            prop_assert!(!c.happened_before(e, e));
            for &f in &ids {
                if c.happened_before(e, f) {
                    prop_assert!(!c.happened_before(f, e));
                    for &g in &ids {
                        if c.happened_before(f, g) {
                            prop_assert!(c.happened_before(e, g));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn restriction_preserves_consistency_semantics(ops in plan(3, 10)) {
        let c = build(3, &ops);
        let cons: Vec<Cut> = all_cuts(&c)
            .into_iter()
            .filter(|g| c.is_consistent(g))
            .collect();
        for g in &cons {
            let sub = c.restricted_to(g);
            // Cuts of the restriction = cuts of the original below g.
            for h in &cons {
                if h.leq(g) {
                    prop_assert!(sub.is_consistent(h));
                }
            }
            prop_assert_eq!(&sub.final_cut(), g);
        }
    }
}
