//! Integrity-audit tests: `Computation::validate` accepts everything the
//! builder and the structural transforms produce.

use hb_computation::{Computation, ComputationBuilder, Cut};

fn sample() -> Computation {
    let mut b = ComputationBuilder::new(3);
    let x = b.var("x");
    b.internal(0).set(x, 1).done();
    let m1 = b.send(0).done_send();
    let m2 = b.send(1).done_send();
    b.receive(2, m1).set(x, 2).done();
    b.receive(2, m2).done();
    b.internal(1).done();
    b.finish().unwrap()
}

#[test]
fn builder_output_validates() {
    sample().validate().unwrap();
}

#[test]
fn restriction_validates() {
    let comp = sample();
    // Every consistent cut\'s restriction must pass the audit.
    let maxes: Vec<u32> = (0..3).map(|i| comp.num_events_of(i) as u32).collect();
    for a in 0..=maxes[0] {
        for b in 0..=maxes[1] {
            for c in 0..=maxes[2] {
                let g = Cut::from_counters(vec![a, b, c]);
                if comp.is_consistent(&g) {
                    comp.restricted_to(&g).validate().unwrap();
                }
            }
        }
    }
}

#[test]
fn reversal_validates() {
    sample().reversed().validate().unwrap();
    sample().reversed().reversed().validate().unwrap();
}

#[test]
fn empty_and_single_process_validate() {
    ComputationBuilder::new(0)
        .finish()
        .unwrap()
        .validate()
        .unwrap();
    let mut b = ComputationBuilder::new(1);
    b.internal(0).done();
    b.finish().unwrap().validate().unwrap();
}
