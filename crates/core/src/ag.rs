//! **Algorithm A2**: `AG(p)` — *invariant: p* — for linear predicates
//! (Fig. 1 of the paper).
//!
//! By Birkhoff's theorem every consistent cut other than the final cut is
//! the meet of the meet-irreducible cuts above it (Corollary 4), and for
//! the cut lattice the meet-irreducibles are exactly the cuts
//! `E − ↑e`, one per event `e`. Since a linear predicate is closed under
//! meets, `p` holds on *every* consistent cut iff it holds on
//! `{E − ↑e : e ∈ E} ∪ {E}` — an `O(|E|)`-point check instead of an
//! exponential sweep.
//!
//! The paper reaches the meet-irreducible set through the `O(n²|E|)`
//! slicing algorithm of \[9\]; with vector clocks in hand, each
//! `E − ↑e` is a binary search per process (`O(n·log|E|)` per event, see
//! [`hb_computation::Computation::excluding_cut`]), which is strictly
//! better. Both facts are property-tested against the lattice definition
//! in `hb-lattice`.

use hb_computation::{Computation, Cut};
use hb_predicates::LinearPredicate;

/// Outcome of an `AG` detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgReport {
    /// Whether every consistent cut satisfies `p`.
    pub holds: bool,
    /// A consistent cut violating `p` when `!holds` (always one of the
    /// meet-irreducible cuts or the final cut).
    pub counterexample: Option<Cut>,
    /// Number of cuts evaluated.
    pub checked: usize,
}

/// Algorithm A2: detects `AG(p)` for a linear predicate `p`.
pub fn ag_linear<P: LinearPredicate + ?Sized>(comp: &Computation, p: &P) -> AgReport {
    let mut checked = 0usize;

    let final_cut = comp.final_cut();
    checked += 1;
    if !p.eval(comp, &final_cut) {
        return AgReport {
            holds: false,
            counterexample: Some(final_cut),
            checked,
        };
    }

    for e in comp.event_ids() {
        let v = comp.excluding_cut(e);
        checked += 1;
        if !p.eval(comp, &v) {
            return AgReport {
                holds: false,
                counterexample: Some(v),
                checked,
            };
        }
    }
    AgReport {
        holds: true,
        counterexample: None,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{ChannelsEmpty, Conjunctive, LocalExpr, Predicate, TrueP};

    fn sample() -> (Computation, hb_computation::VarId) {
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        b.init(0, x, 1);
        b.init(1, x, 1);
        b.internal(0).set(x, 2).done();
        let m = b.send(0).done_send();
        b.internal(1).set(x, 3).done();
        b.receive(1, m).set(x, 4).done();
        (b.finish().unwrap(), x)
    }

    #[test]
    fn invariant_holds() {
        let (comp, x) = sample();
        let p = Conjunctive::new(vec![(0, LocalExpr::ge(x, 1)), (1, LocalExpr::ge(x, 1))]);
        let r = ag_linear(&comp, &p);
        assert!(r.holds);
        assert_eq!(r.checked, comp.num_events() + 1);
    }

    #[test]
    fn violation_found_with_counterexample() {
        let (comp, x) = sample();
        let p = Conjunctive::new(vec![(0, LocalExpr::le(x, 1))]);
        let r = ag_linear(&comp, &p);
        assert!(!r.holds);
        let cex = r.counterexample.unwrap();
        assert!(comp.is_consistent(&cex));
        assert!(!p.eval(&comp, &cex));
    }

    #[test]
    fn agrees_with_exhaustive_check() {
        let (comp, x) = sample();
        let preds = [
            Conjunctive::new(vec![(0, LocalExpr::ge(x, 1))]),
            Conjunctive::new(vec![(0, LocalExpr::le(x, 2))]),
            Conjunctive::new(vec![(1, LocalExpr::ne(x, 3))]),
            Conjunctive::top(),
        ];
        for p in &preds {
            let expected = {
                // Exhaustive ground truth over all consistent cuts.
                let mut all = true;
                for a in 0..=2u32 {
                    for b in 0..=2u32 {
                        let g = Cut::from_counters(vec![a, b]);
                        if comp.is_consistent(&g) && !p.eval(&comp, &g) {
                            all = false;
                        }
                    }
                }
                all
            };
            assert_eq!(ag_linear(&comp, p).holds, expected, "{}", p.describe());
        }
    }

    #[test]
    fn channels_empty_invariant_fails_when_messages_exist() {
        let (comp, _) = sample();
        let r = ag_linear(&comp, &ChannelsEmpty);
        assert!(!r.holds);
        // The counterexample has the message in transit.
        assert!(comp.in_transit_count(&r.counterexample.unwrap()) > 0);
    }

    #[test]
    fn trivial_predicates() {
        let (comp, _) = sample();
        assert!(ag_linear(&comp, &TrueP).holds);
        let r = ag_linear(&comp, &hb_predicates::FalseP);
        assert!(!r.holds);
        assert_eq!(r.counterexample.unwrap(), comp.final_cut());
    }

    #[test]
    fn empty_computation_checks_only_final() {
        let comp = ComputationBuilder::new(3).finish().unwrap();
        let r = ag_linear(&comp, &TrueP);
        assert!(r.holds);
        assert_eq!(r.checked, 1);
    }
}
