//! The explicit-lattice CTL model checker — the baseline the paper's
//! algorithms beat.
//!
//! This is classic CTL labeling, specialized to the finite DAG structure
//! of the cut lattice: because node indices are topologically sorted and
//! maximal paths are exactly the `∅ → E` cover chains, every fixpoint
//! collapses to a single reverse sweep. The cost is building and storing
//! `C(E)` itself — exponential in the number of processes — which is
//! precisely the state-explosion problem of Section 1. The model checker
//! doubles as the ground-truth oracle for all property tests.

use hb_computation::{Computation, Cut};
use hb_lattice::{CutLattice, LatticeLimitExceeded};
use hb_predicates::Predicate;

/// A CTL model checker over the explicitly built lattice of consistent
/// cuts of one computation.
pub struct ModelChecker<'a> {
    comp: &'a Computation,
    lattice: CutLattice,
}

impl<'a> ModelChecker<'a> {
    /// Builds the lattice (exponential!) and wraps it.
    pub fn new(comp: &'a Computation) -> Self {
        ModelChecker {
            comp,
            lattice: CutLattice::build(comp),
        }
    }

    /// Builds with a node cap, failing gracefully on explosion.
    pub fn with_limit(comp: &'a Computation, limit: usize) -> Result<Self, LatticeLimitExceeded> {
        Ok(ModelChecker {
            comp,
            lattice: CutLattice::try_build(comp, limit)?,
        })
    }

    /// The underlying lattice.
    pub fn lattice(&self) -> &CutLattice {
        &self.lattice
    }

    /// Number of consistent cuts (the baseline's state count).
    pub fn num_states(&self) -> usize {
        self.lattice.len()
    }

    /// Labels every cut with `p`.
    pub fn label<P: Predicate + ?Sized>(&self, p: &P) -> Vec<bool> {
        self.lattice
            .cuts()
            .iter()
            .map(|g| p.eval(self.comp, g))
            .collect()
    }

    /// `EF(p)` at every node: some path suffix reaches a `p`-cut.
    pub fn ef_labels(&self, p: &[bool]) -> Vec<bool> {
        let mut out = p.to_vec();
        for i in (0..self.lattice.len()).rev() {
            if !out[i] {
                out[i] = self.lattice.successors(i).iter().any(|&s| out[s]);
            }
        }
        out
    }

    /// `AF(p)` at every node: every maximal path from the node hits `p`.
    pub fn af_labels(&self, p: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.lattice.len()];
        for i in (0..self.lattice.len()).rev() {
            out[i] = p[i]
                || (!self.lattice.successors(i).is_empty()
                    && self.lattice.successors(i).iter().all(|&s| out[s]));
        }
        out
    }

    /// `EG(p)` at every node: some maximal path from the node satisfies
    /// `p` throughout.
    pub fn eg_labels(&self, p: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.lattice.len()];
        for i in (0..self.lattice.len()).rev() {
            out[i] = p[i]
                && (i == self.lattice.top() || self.lattice.successors(i).iter().any(|&s| out[s]));
        }
        out
    }

    /// `AG(p)` at every node: every cut reachable from the node satisfies
    /// `p`.
    pub fn ag_labels(&self, p: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.lattice.len()];
        for i in (0..self.lattice.len()).rev() {
            out[i] = p[i] && self.lattice.successors(i).iter().all(|&s| out[s]);
        }
        out
    }

    /// `E[p U q]` at every node.
    pub fn eu_labels(&self, p: &[bool], q: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.lattice.len()];
        for i in (0..self.lattice.len()).rev() {
            out[i] = q[i] || (p[i] && self.lattice.successors(i).iter().any(|&s| out[s]));
        }
        out
    }

    /// `A[p U q]` at every node.
    pub fn au_labels(&self, p: &[bool], q: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.lattice.len()];
        for i in (0..self.lattice.len()).rev() {
            out[i] = q[i]
                || (p[i]
                    && !self.lattice.successors(i).is_empty()
                    && self.lattice.successors(i).iter().all(|&s| out[s]));
        }
        out
    }

    /// `EF(p)` at the initial cut.
    pub fn ef<P: Predicate + ?Sized>(&self, p: &P) -> bool {
        self.ef_labels(&self.label(p))[self.lattice.bottom()]
    }

    /// `AF(p)` at the initial cut.
    pub fn af<P: Predicate + ?Sized>(&self, p: &P) -> bool {
        self.af_labels(&self.label(p))[self.lattice.bottom()]
    }

    /// `EG(p)` at the initial cut.
    pub fn eg<P: Predicate + ?Sized>(&self, p: &P) -> bool {
        self.eg_labels(&self.label(p))[self.lattice.bottom()]
    }

    /// `AG(p)` at the initial cut.
    pub fn ag<P: Predicate + ?Sized>(&self, p: &P) -> bool {
        self.ag_labels(&self.label(p))[self.lattice.bottom()]
    }

    /// `E[p U q]` at the initial cut.
    pub fn eu<P: Predicate + ?Sized, Q: Predicate + ?Sized>(&self, p: &P, q: &Q) -> bool {
        self.eu_labels(&self.label(p), &self.label(q))[self.lattice.bottom()]
    }

    /// `A[p U q]` at the initial cut.
    pub fn au<P: Predicate + ?Sized, Q: Predicate + ?Sized>(&self, p: &P, q: &Q) -> bool {
        self.au_labels(&self.label(p), &self.label(q))[self.lattice.bottom()]
    }

    /// Extracts an `EG(p)` witness path from the labeling (for parity with
    /// the structural algorithms).
    pub fn eg_witness<P: Predicate + ?Sized>(&self, p: &P) -> Option<Vec<Cut>> {
        let labels = self.eg_labels(&self.label(p));
        if !labels[self.lattice.bottom()] {
            return None;
        }
        let mut path = vec![self.lattice.cut(self.lattice.bottom()).clone()];
        let mut i = self.lattice.bottom();
        while i != self.lattice.top() {
            let next = *self
                .lattice
                .successors(i)
                .iter()
                .find(|&&s| labels[s])
                .expect("EG label guarantees a labeled successor");
            path.push(self.lattice.cut(next).clone());
            i = next;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::verify_eg_witness;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{Conjunctive, FnPredicate, LocalExpr, TrueP};

    fn sample() -> (Computation, hb_computation::VarId) {
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        b.internal(0).set(x, 1).done();
        b.internal(0).set(x, 0).done();
        b.internal(1).set(x, 1).done();
        (b.finish().unwrap(), x)
    }

    #[test]
    fn semantics_of_all_operators_on_known_lattice() {
        let (comp, x) = sample();
        let mc = ModelChecker::new(&comp);
        assert_eq!(mc.num_states(), 3 * 2); // grid, no messages

        let p0 = Conjunctive::new(vec![(0, LocalExpr::eq(x, 1))]);
        assert!(mc.ef(&p0));
        assert!(mc.af(&p0)); // P0 passes through x=1 on every path
        assert!(!mc.ag(&p0));
        assert!(!mc.eg(&p0)); // fails at the initial cut

        let ge0 = Conjunctive::new(vec![(0, LocalExpr::ge(x, 0))]);
        assert!(mc.ag(&ge0));
        assert!(mc.eg(&ge0));

        // E[x0≤0 U x1=1]: delay P0, run P1 first.
        let p = Conjunctive::new(vec![(0, LocalExpr::le(x, 0))]);
        let q = Conjunctive::new(vec![(1, LocalExpr::eq(x, 1))]);
        assert!(mc.eu(&p, &q));
        // A[x0≤0 U x1=1] fails: a path may run P0 first.
        assert!(!mc.au(&p, &q));
        // A[true U x1=1] holds: P1's event is inevitable.
        assert!(mc.au(&TrueP, &q));
    }

    #[test]
    fn ef_equals_reachable_satisfaction() {
        let (comp, _) = sample();
        let mc = ModelChecker::new(&comp);
        let p = FnPredicate::new("diag", |_: &Computation, g: &Cut| {
            g.get(0) == 1 && g.get(1) == 1
        });
        assert!(mc.ef(&p));
        assert!(!mc.ag(&p));
    }

    #[test]
    fn eg_witness_is_valid() {
        let (comp, x) = sample();
        let mc = ModelChecker::new(&comp);
        let ge0 = Conjunctive::new(vec![(0, LocalExpr::ge(x, 0))]);
        let w = mc.eg_witness(&ge0).unwrap();
        verify_eg_witness(&comp, &ge0, &w).unwrap();
        let p0 = Conjunctive::new(vec![(0, LocalExpr::eq(x, 1))]);
        assert!(mc.eg_witness(&p0).is_none());
    }

    #[test]
    fn until_semantics_hold_at_k_equals_zero() {
        let (comp, _) = sample();
        let mc = ModelChecker::new(&comp);
        // q holds initially ⇒ EU and AU hold regardless of p.
        assert!(mc.eu(&hb_predicates::FalseP, &TrueP));
        assert!(mc.au(&hb_predicates::FalseP, &TrueP));
        // q never holds ⇒ both fail.
        assert!(!mc.eu(&TrueP, &hb_predicates::FalseP));
        assert!(!mc.au(&TrueP, &hb_predicates::FalseP));
    }

    #[test]
    fn with_limit_reports_explosion() {
        let (comp, _) = sample();
        assert!(ModelChecker::with_limit(&comp, 2).is_err());
        assert!(ModelChecker::with_limit(&comp, 100).is_ok());
    }

    #[test]
    fn duality_ag_ef_and_af_eg() {
        let (comp, x) = sample();
        let mc = ModelChecker::new(&comp);
        let p = Conjunctive::new(vec![(0, LocalExpr::eq(x, 1))]);
        let np = p.negated();
        assert_eq!(mc.ag(&p), !mc.ef(&np));
        assert_eq!(mc.af(&p), !mc.eg(&np));
    }
}
