//! Predicate **control** (Tarafdar & Garg \[20\], the paper's
//! "controllable" reading of `EG`).
//!
//! `EG(p)` does not just *detect* — its witness path is a **control
//! strategy**: a global schedule that, if enforced, keeps `p` true
//! through the whole execution. "Active debugging" (\[20\]) enforces it
//! by adding synchronization: extra happened-before edges that restrict
//! the computation's consistent cuts to exactly the cuts on (chains
//! within) the witness path's linearization.
//!
//! [`control_edges`] extracts the minimal added edges from a witness
//! path: whenever control transfers between processes in the path's
//! event order, the earlier process's last scheduled event must precede
//! the later process's next one. [`ControlledComputation`] overlays those
//! edges and exposes the restricted cut space, so tests can verify the
//! central soundness theorem: **after control, `p` is invariant** —
//! `AG(p)` holds on the controlled computation.

use crate::witness::{verify_step_path, WitnessError};
use hb_computation::{Computation, Cut, EventId};
use hb_predicates::Predicate;

/// A synchronization edge: `before` must be executed before `after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncEdge {
    /// The event that must run first.
    pub before: EventId,
    /// The event that must wait.
    pub after: EventId,
}

/// Extracts the synchronization schedule from an `EG` witness path: one
/// edge per control transfer in the path's linearization (consecutive
/// scheduled events on different processes).
///
/// # Errors
/// The path must be a maximal cover chain `∅ → E` of `comp`.
pub fn control_edges(comp: &Computation, path: &[Cut]) -> Result<Vec<SyncEdge>, WitnessError> {
    verify_step_path(comp, &comp.initial_cut(), &comp.final_cut(), path)?;
    let mut order: Vec<EventId> = Vec::with_capacity(path.len().saturating_sub(1));
    for w in path.windows(2) {
        let i = (0..w[0].width())
            .find(|&i| w[1].get(i) == w[0].get(i) + 1)
            .expect("verified cover step");
        order.push(EventId::new(i, w[0].get(i) as usize));
    }
    let mut edges = Vec::new();
    for w in order.windows(2) {
        if w[0].process != w[1].process && !comp.happened_before(w[0], w[1]) {
            edges.push(SyncEdge {
                before: w[0],
                after: w[1],
            });
        }
    }
    Ok(edges)
}

/// A computation with added synchronization edges. The controlled cut
/// space is the original one intersected with the edges' down-closure
/// constraints; it is still a (sub-)lattice containing `∅` and `E`.
pub struct ControlledComputation<'a> {
    comp: &'a Computation,
    edges: Vec<SyncEdge>,
}

impl<'a> ControlledComputation<'a> {
    /// Overlays `edges` on `comp`.
    pub fn new(comp: &'a Computation, edges: Vec<SyncEdge>) -> Self {
        ControlledComputation { comp, edges }
    }

    /// The added edges.
    pub fn edges(&self) -> &[SyncEdge] {
        &self.edges
    }

    /// The underlying computation.
    pub fn computation(&self) -> &Computation {
        self.comp
    }

    /// Whether `g` is a consistent cut of the *controlled* computation:
    /// consistent originally, and closed under every added edge.
    pub fn is_consistent(&self, g: &Cut) -> bool {
        self.comp.is_consistent(g)
            && self.edges.iter().all(|e| {
                let after_in = g.get(e.after.process) as usize > e.after.index;
                let before_in = g.get(e.before.process) as usize > e.before.index;
                !after_in || before_in
            })
    }

    /// Exhaustively checks `AG(p)` on the controlled cut space by
    /// enumerating the original lattice and filtering (a test oracle —
    /// exponential).
    pub fn ag_exhaustive<P: Predicate + ?Sized>(&self, p: &P, limit: usize) -> Option<bool> {
        let lat = hb_lattice::CutLattice::try_build(self.comp, limit).ok()?;
        Some(
            (0..lat.len())
                .map(|i| lat.cut(i))
                .filter(|g| self.is_consistent(g))
                .all(|g| p.eval(self.comp, g)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eg::eg_conjunctive;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{Conjunctive, LocalExpr};

    #[test]
    fn schedule_enforces_invariance() {
        // P0 flickers ok→0→1; P1 likewise. p = "at most one process is in
        // its bad state" is not conjunctive, so control the conjunctive
        // q = x@0 + nothing… use instead a direct conjunctive target: the
        // mutual-exclusion shape. P0 and P1 both want crit=1 at their
        // middle event; EG(¬both) holds by interleaving, AG(¬both) fails.
        let mut b = ComputationBuilder::new(2);
        let crit = b.var("crit");
        b.internal(0).set(crit, 1).done();
        b.internal(0).set(crit, 0).done();
        b.internal(1).set(crit, 1).done();
        b.internal(1).set(crit, 0).done();
        let comp = b.finish().unwrap();
        let both = Conjunctive::new(vec![
            (0, LocalExpr::eq(crit, 1)),
            (1, LocalExpr::eq(crit, 1)),
        ]);
        let safe = both.negated(); // disjunctive…
                                   // …but its negation-free conjunctive complement is what A1 needs:
                                   // run EG on the *disjunctive* safe predicate with the token
                                   // engine, which also returns a maximal witness path.
        let r = crate::tokens::eg_disjunctive(&comp, &safe);
        assert!(r.holds);
        let path = r.witness.unwrap();

        // Without control, the invariant fails.
        let uncontrolled = ControlledComputation::new(&comp, vec![]);
        assert_eq!(uncontrolled.ag_exhaustive(&safe, 10_000), Some(false));

        // With the extracted schedule, the invariant holds.
        let edges = control_edges(&comp, &path).unwrap();
        assert!(!edges.is_empty(), "control must add synchronization");
        let controlled = ControlledComputation::new(&comp, edges);
        assert_eq!(controlled.ag_exhaustive(&safe, 10_000), Some(true));
        // The endpoints survive control.
        assert!(controlled.is_consistent(&comp.initial_cut()));
        assert!(controlled.is_consistent(&comp.final_cut()));
    }

    #[test]
    fn conjunctive_witnesses_control_their_predicate() {
        // A conjunctive EG witness from A1 also controls its predicate.
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        b.init(0, x, 1);
        b.init(1, x, 1);
        b.internal(0).set(x, 0).done();
        b.internal(0).set(x, 1).done();
        b.internal(1).set(x, 1).done();
        let comp = b.finish().unwrap();
        // p = "x@1 = 1" holds everywhere; control is trivially sound and
        // adds edges only at control transfers.
        let p = Conjunctive::new(vec![(1, LocalExpr::eq(x, 1))]);
        let r = eg_conjunctive(&comp, &p);
        assert!(r.holds);
        let edges = control_edges(&comp, &r.witness.unwrap()).unwrap();
        let controlled = ControlledComputation::new(&comp, edges);
        assert_eq!(controlled.ag_exhaustive(&p, 10_000), Some(true));
    }

    #[test]
    fn control_edges_rejects_invalid_paths() {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(1).done();
        let comp = b.finish().unwrap();
        assert!(control_edges(&comp, &[]).is_err());
        let partial = vec![comp.initial_cut()];
        assert!(control_edges(&comp, &partial).is_err());
    }

    #[test]
    fn already_ordered_transfers_need_no_edge() {
        // A message already orders the transfer: no synthetic edge.
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        let comp = b.finish().unwrap();
        let path = vec![
            comp.initial_cut(),
            Cut::from_counters(vec![1, 0]),
            Cut::from_counters(vec![1, 1]),
        ];
        let edges = control_edges(&comp, &path).unwrap();
        assert!(edges.is_empty());
    }
}
