//! `EF(p)` — *possibly: p* — for linear predicates (Chase–Garg \[4\]).
//!
//! The advancement algorithm: start at the initial cut; while `p` fails,
//! ask the linear predicate's oracle for a forbidden process and jump to
//! the least consistent cut that advances it (the join with the causal
//! past of its next event). Linearity guarantees the walk never overshoots
//! the least satisfying cut `I_p`, so the first satisfying cut found *is*
//! `I_p`. `O(n·|E|)`: the cut's rank strictly grows and each jump costs
//! `O(n)`.

use hb_computation::{Computation, Cut};
use hb_predicates::{LinearPredicate, PostLinearPredicate};

/// Outcome of an `EF`/least-cut computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EfReport {
    /// Whether some consistent cut satisfies the predicate.
    pub holds: bool,
    /// The least (for [`ef_linear`]) or greatest (for [`ef_post_linear`])
    /// satisfying cut, when one exists.
    pub witness: Option<Cut>,
    /// Number of advancement steps taken (for complexity experiments).
    pub steps: usize,
}

/// Detects `EF(p)` for a linear predicate and computes `I_p`, the least
/// satisfying cut.
pub fn ef_linear<P: LinearPredicate + ?Sized>(comp: &Computation, p: &P) -> EfReport {
    let final_cut = comp.final_cut();
    let mut g = comp.initial_cut();
    let mut steps = 0usize;
    loop {
        match p.forbidden_process(comp, &g) {
            None => {
                return EfReport {
                    holds: true,
                    witness: Some(g),
                    steps,
                }
            }
            Some(i) => {
                if g.get(i) >= final_cut.get(i) {
                    // The forbidden process has no more events: no
                    // satisfying cut exists above g, and by linearity none
                    // elsewhere either.
                    return EfReport {
                        holds: false,
                        witness: None,
                        steps,
                    };
                }
                // Least cut advancing process i: join with the causal past
                // of its next event (everything in it is forced).
                g = comp.least_extension(&g, i, g.get(i) + 1);
                steps += 1;
            }
        }
    }
}

/// Detects `EF(p)` for a post-linear predicate and computes the *greatest*
/// satisfying cut, walking down from the final cut.
pub fn ef_post_linear<P: PostLinearPredicate + ?Sized>(comp: &Computation, p: &P) -> EfReport {
    let mut g = comp.final_cut();
    let mut steps = 0usize;
    loop {
        match p.forbidden_process_down(comp, &g) {
            None => {
                return EfReport {
                    holds: true,
                    witness: Some(g),
                    steps,
                }
            }
            Some(i) => {
                if g.get(i) == 0 {
                    return EfReport {
                        holds: false,
                        witness: None,
                        steps,
                    };
                }
                // Greatest cut removing i's last included event e: meet
                // with the complement of ↑e (everything above e must go).
                let e = hb_computation::EventId::new(i, g.get(i) as usize - 1);
                g = g.meet(&comp.excluding_cut(e));
                steps += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{ChannelsEmpty, Conjunctive, FalseP, LocalExpr, TrueP};

    fn mutex_like() -> (Computation, hb_computation::VarId) {
        // P0: cs=1 at event 2, back to 0 at event 3.
        // P1: cs=1 at event 1, back to 0 at event 2.
        let mut b = ComputationBuilder::new(2);
        let cs = b.var("cs");
        b.internal(0).done();
        b.internal(0).set(cs, 1).done();
        b.internal(0).set(cs, 0).done();
        b.internal(1).set(cs, 1).done();
        b.internal(1).set(cs, 0).done();
        (b.finish().unwrap(), cs)
    }

    #[test]
    fn finds_least_satisfying_cut() {
        let (comp, cs) = mutex_like();
        let both = Conjunctive::new(vec![(0, LocalExpr::eq(cs, 1)), (1, LocalExpr::eq(cs, 1))]);
        let r = ef_linear(&comp, &both);
        assert!(r.holds);
        assert_eq!(r.witness.unwrap(), Cut::from_counters(vec![2, 1]));
    }

    #[test]
    fn reports_absence() {
        let (comp, cs) = mutex_like();
        let never = Conjunctive::new(vec![(0, LocalExpr::eq(cs, 7))]);
        let r = ef_linear(&comp, &never);
        assert!(!r.holds);
        assert_eq!(r.witness, None);
    }

    #[test]
    fn constants() {
        let (comp, _) = mutex_like();
        assert!(ef_linear(&comp, &TrueP).holds);
        assert_eq!(
            ef_linear(&comp, &TrueP).witness.unwrap(),
            comp.initial_cut()
        );
        assert!(!ef_linear(&comp, &FalseP).holds);
    }

    #[test]
    fn message_dependencies_are_pulled_in() {
        // q requires P1 past its receive, which drags P0's send along.
        let mut b = ComputationBuilder::new(2);
        let y = b.var("y");
        b.internal(0).done();
        let m = b.send(0).done_send();
        b.receive(1, m).set(y, 1).done();
        let comp = b.finish().unwrap();
        let q = Conjunctive::new(vec![(1, LocalExpr::eq(y, 1))]);
        let r = ef_linear(&comp, &q);
        assert_eq!(r.witness.unwrap(), Cut::from_counters(vec![2, 1]));
    }

    #[test]
    fn post_linear_finds_greatest_cut() {
        // Channels empty: greatest satisfying cut below E is E itself.
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        let comp = b.finish().unwrap();
        let r = ef_post_linear(&comp, &ChannelsEmpty);
        assert!(r.holds);
        assert_eq!(r.witness.unwrap(), comp.final_cut());
    }

    #[test]
    fn post_linear_walks_down() {
        // "P0 has executed at most 0 events" as a post-linear predicate:
        // satisfying cuts are those with counter 0 on P0 — join-closed.
        struct NoP0;
        impl hb_predicates::Predicate for NoP0 {
            fn eval(&self, _: &Computation, g: &Cut) -> bool {
                g.get(0) == 0
            }
        }
        impl PostLinearPredicate for NoP0 {
            fn forbidden_process_down(&self, _: &Computation, g: &Cut) -> Option<usize> {
                (g.get(0) > 0).then_some(0)
            }
        }
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(1).done();
        b.internal(1).done();
        let comp = b.finish().unwrap();
        let r = ef_post_linear(&comp, &NoP0);
        assert!(r.holds);
        assert_eq!(r.witness.unwrap(), Cut::from_counters(vec![0, 2]));
    }

    #[test]
    fn ef_least_cut_is_minimal_among_all_satisfying() {
        let (comp, cs) = mutex_like();
        let p = Conjunctive::new(vec![(1, LocalExpr::eq(cs, 1))]);
        let ip = ef_linear(&comp, &p).witness.unwrap();
        // Exhaustively compare with all consistent satisfying cuts.
        use hb_predicates::Predicate;
        for a in 0..=3u32 {
            for b in 0..=2u32 {
                let g = Cut::from_counters(vec![a, b]);
                if comp.is_consistent(&g) && p.eval(&comp, &g) {
                    assert!(ip.leq(&g), "I_p={ip} not below {g}");
                }
            }
        }
    }
}
