//! **Algorithm A1**: `EG(p)` — *controllable: p* — for linear predicates
//! (Fig. 1 of the paper).
//!
//! Walk backwards from the final cut; at each step collect the predecessor
//! cuts (`G ▷ W`) that satisfy `p` and pick **any** of them — Lemma 1 and
//! Theorem 2 prove the arbitrary choice is safe for linear `p`. If the
//! walk reaches the initial cut the satisfying cuts found form the
//! witness path; if some cut has no satisfying predecessor, `EG(p)` is
//! false.
//!
//! Two implementations are provided:
//!
//! * [`eg_linear`] — the literal algorithm over any [`LinearPredicate`],
//!   re-evaluating `p` on each candidate predecessor (`O(n·eval)` per
//!   step, `O(n²|E|)` for conjunctive predicates);
//! * [`eg_conjunctive`] — the incremental variant realizing the paper's
//!   `O(n|E|)` bound's assumption: retreating process `j` only changes
//!   `j`'s clause, so the predicate check per candidate is `O(1)`.
//!
//! The duals for post-linear predicates walk forward from the initial cut
//! ([`eg_post_linear`]).

use hb_computation::{Computation, Cut};
use hb_predicates::{Conjunctive, LinearPredicate, PostLinearPredicate, Predicate};

/// Outcome of an `EG` detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EgReport {
    /// Whether some maximal path satisfies `p` on every cut.
    pub holds: bool,
    /// The witness path `∅ → E` (every cut satisfies `p`) when `holds`.
    pub witness: Option<Vec<Cut>>,
    /// Cuts visited (for complexity experiments).
    pub steps: usize,
}

/// Algorithm A1: detects `EG(p)` for a linear predicate `p`.
pub fn eg_linear<P: LinearPredicate + ?Sized>(comp: &Computation, p: &P) -> EgReport {
    eg_backward_walk(comp, |g| p.eval(comp, g))
}

/// Algorithm A1 with the incremental conjunctive check: when `W` satisfies
/// the conjunction, the predecessor `W − e_j` satisfies it iff `j`'s
/// clause holds in `j`'s previous state.
pub fn eg_conjunctive(comp: &Computation, p: &Conjunctive) -> EgReport {
    let final_cut = comp.final_cut();
    if !p.eval(comp, &final_cut) {
        return EgReport {
            holds: false,
            witness: None,
            steps: 1,
        };
    }
    let mut w = final_cut;
    let mut path = vec![w.clone()];
    let mut steps = 1usize;
    while w.rank() > 0 {
        steps += 1;
        // Invariant: w satisfies p, so only the retreating process's
        // clause needs re-checking.
        let chosen = (0..w.width()).find(|&j| {
            w.get(j) > 0 && p.clause_holds_at(comp, j, w.get(j) - 1) && comp.can_retreat(&w, j)
        });
        match chosen {
            Some(j) => {
                w = w.retreated(j);
                path.push(w.clone());
            }
            None => {
                return EgReport {
                    holds: false,
                    witness: None,
                    steps,
                }
            }
        }
    }
    path.reverse();
    EgReport {
        holds: true,
        witness: Some(path),
        steps,
    }
}

/// Shared backward walk used by [`eg_linear`].
fn eg_backward_walk(comp: &Computation, sat: impl Fn(&Cut) -> bool) -> EgReport {
    let final_cut = comp.final_cut();
    if !sat(&final_cut) {
        return EgReport {
            holds: false,
            witness: None,
            steps: 1,
        };
    }
    let mut w = final_cut;
    let mut path = vec![w.clone()];
    let mut steps = 1usize;
    while w.rank() > 0 {
        steps += 1;
        let mut next = None;
        for j in 0..w.width() {
            if w.get(j) > 0 && comp.can_retreat(&w, j) {
                let g = w.retreated(j);
                if sat(&g) {
                    next = Some(g);
                    break;
                }
            }
        }
        match next {
            Some(g) => {
                w = g;
                path.push(w.clone());
            }
            None => {
                return EgReport {
                    holds: false,
                    witness: None,
                    steps,
                }
            }
        }
    }
    path.reverse();
    EgReport {
        holds: true,
        witness: Some(path),
        steps,
    }
}

/// The dual of A1 for post-linear predicates: walk forward from the
/// initial cut, choosing any successor that satisfies `p`.
pub fn eg_post_linear<P: PostLinearPredicate + ?Sized>(comp: &Computation, p: &P) -> EgReport {
    let final_cut = comp.final_cut();
    if !p.eval(comp, &comp.initial_cut()) {
        return EgReport {
            holds: false,
            witness: None,
            steps: 1,
        };
    }
    let mut w = comp.initial_cut();
    let mut path = vec![w.clone()];
    let mut steps = 1usize;
    while w != final_cut {
        steps += 1;
        let mut next = None;
        for j in 0..w.width() {
            if comp.can_advance(&w, j) {
                let g = w.advanced(j);
                if p.eval(comp, &g) {
                    next = Some(g);
                    break;
                }
            }
        }
        match next {
            Some(g) => {
                w = g;
                path.push(w.clone());
            }
            None => {
                return EgReport {
                    holds: false,
                    witness: None,
                    steps,
                }
            }
        }
    }
    EgReport {
        holds: true,
        witness: Some(path),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::verify_eg_witness;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{ChannelsEmpty, LocalExpr, TrueP};

    fn xy_comp() -> (Computation, hb_computation::VarId) {
        // P0: x:1 → 2 → 1 ; P1: x:1 → 0 → 1
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        b.init(0, x, 1);
        b.init(1, x, 1);
        b.internal(0).set(x, 2).done();
        b.internal(0).set(x, 1).done();
        b.internal(1).set(x, 0).done();
        b.internal(1).set(x, 1).done();
        (b.finish().unwrap(), x)
    }

    #[test]
    fn eg_holds_with_witness_path() {
        let (comp, x) = xy_comp();
        // x ≥ 1 on P0 always; on P1 fails in the middle, but a path can
        // cross P1's bad state… no: every path must pass a cut with
        // P1-counter = 1 where x=0. So use x ≥ 0 on P1.
        let p = Conjunctive::new(vec![(0, LocalExpr::ge(x, 1)), (1, LocalExpr::ge(x, 0))]);
        let r = eg_linear(&comp, &p);
        assert!(r.holds);
        verify_eg_witness(&comp, &p, r.witness.as_deref().unwrap()).unwrap();
    }

    #[test]
    fn eg_fails_when_every_path_hits_bad_cut() {
        let (comp, x) = xy_comp();
        // P1 must pass through x=0 on every path.
        let p = Conjunctive::new(vec![(1, LocalExpr::ge(x, 1))]);
        assert!(!eg_linear(&comp, &p).holds);
        assert!(!eg_conjunctive(&comp, &p).holds);
    }

    #[test]
    fn eg_fails_at_final_cut() {
        let (comp, x) = xy_comp();
        let p = Conjunctive::new(vec![(0, LocalExpr::eq(x, 2))]);
        let r = eg_linear(&comp, &p);
        assert!(!r.holds);
        assert_eq!(r.steps, 1);
    }

    #[test]
    fn incremental_agrees_with_naive() {
        let (comp, x) = xy_comp();
        for p in [
            Conjunctive::new(vec![(0, LocalExpr::ge(x, 1)), (1, LocalExpr::ge(x, 0))]),
            Conjunctive::new(vec![(1, LocalExpr::ge(x, 1))]),
            Conjunctive::new(vec![(0, LocalExpr::eq(x, 1))]),
            Conjunctive::top(),
        ] {
            let a = eg_linear(&comp, &p);
            let b = eg_conjunctive(&comp, &p);
            assert_eq!(a.holds, b.holds, "{}", p.describe());
            if let Some(w) = b.witness.as_deref() {
                verify_eg_witness(&comp, &p, w).unwrap();
            }
        }
    }

    #[test]
    fn eg_true_predicate_always_holds() {
        let (comp, _) = xy_comp();
        let r = eg_linear(&comp, &TrueP);
        assert!(r.holds);
        assert_eq!(r.witness.unwrap().len(), comp.num_events() + 1);
    }

    #[test]
    fn eg_on_empty_computation_is_initial_eval() {
        let comp = ComputationBuilder::new(2).finish().unwrap();
        assert!(eg_linear(&comp, &TrueP).holds);
        assert!(!eg_linear(&comp, &hb_predicates::FalseP).holds);
    }

    #[test]
    fn eg_post_linear_mirrors_forward() {
        // Channels-empty controllable: deliver each message immediately.
        let mut b = ComputationBuilder::new(2);
        let m1 = b.send(0).done_send();
        b.receive(1, m1).done();
        let m2 = b.send(1).done_send();
        b.receive(0, m2).done();
        let comp = b.finish().unwrap();
        let fwd = eg_post_linear(&comp, &ChannelsEmpty);
        // Not controllable: right after a send the channel is nonempty.
        assert!(!fwd.holds);
    }

    #[test]
    fn eg_post_linear_holds_without_messages() {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(1).done();
        let comp = b.finish().unwrap();
        let r = eg_post_linear(&comp, &ChannelsEmpty);
        assert!(r.holds);
        verify_eg_witness(&comp, &ChannelsEmpty, r.witness.as_deref().unwrap()).unwrap();
    }
}
