//! Predicate detection algorithms on the happened-before model — the core
//! contribution of Sen & Garg, *Detecting Temporal Logic Predicates on the
//! Happened-Before Model* (IPDPS 2002).
//!
//! Every entry point answers a question of the form "does this CTL formula
//! hold at the initial cut of this computation's lattice of consistent
//! cuts?", and returns a machine-checkable **witness** (a cut or a path of
//! cuts) alongside the boolean verdict.
//!
//! # The algorithms
//!
//! | paper artifact | function | class | complexity |
//! |---|---|---|---|
//! | Chase–Garg \[4\] | [`ef_linear`] | linear | `O(n·|E|)` |
//! | dual of \[4\] | [`ef_post_linear`] | post-linear | `O(n·|E|)` |
//! | **Algorithm A1** | [`eg_linear`] | linear | `O(n²·|E|)` naive, see [`eg_conjunctive`] |
//! | **Algorithm A2** | [`ag_linear`] | linear | `O(n·|E|·log|E|)` |
//! | **Algorithm A3** | [`eu_conjunctive_linear`] | `E[conj U linear]` | `O(n²·|E|)` |
//! | §7 identity | [`au_disjunctive`] | `A[disj U disj]` | `O(n²·|E|)` |
//! | Garg–Waldecker \[11\] cell | [`eg_disjunctive`], [`af_conjunctive`] | disjunctive / conjunctive | polynomial (token-interval reconstruction, see module docs) |
//! | trivial cells | [`stable`] module | stable | `O(eval)` |
//! | Charron-Bost \[3\] | [`ef_observer_independent`] | observer-independent | `O(|E|·eval)` |
//! | baseline | [`ModelChecker`] | arbitrary | `O(|C(E)|·n)` — exponential |
//! | future work (on-line) | [`online`] module | conjunctive / disjunctive | `O(n|E|)` amortized |
//!
//! The paper states A1 as `O(n|E|)` assuming an `O(1)` per-predecessor
//! predicate check; [`eg_linear`] re-evaluates predicates naively while
//! [`eg_conjunctive`] implements the incremental check that realizes the
//! assumption for conjunctive predicates. The ablation benchmark
//! (experiment S1 in `DESIGN.md`) measures the gap.
//!
//! # Example: Algorithm A1
//!
//! ```
//! use hb_computation::ComputationBuilder;
//! use hb_detect::eg_linear;
//! use hb_predicates::{Conjunctive, LocalExpr};
//!
//! let mut b = ComputationBuilder::new(2);
//! let x = b.var("x");
//! b.init(0, x, 1);
//! b.init(1, x, 1);
//! b.internal(0).set(x, 2).done();
//! b.internal(1).set(x, 3).done();
//! let comp = b.finish().unwrap();
//!
//! // "x ≥ 1 on both processes" holds on every cut of every path.
//! let p = Conjunctive::new(vec![(0, LocalExpr::ge(x, 1)), (1, LocalExpr::ge(x, 1))]);
//! let r = eg_linear(&comp, &p);
//! assert!(r.holds);
//! let path = r.witness.unwrap();
//! assert_eq!(path.len(), comp.num_events() + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ag;
mod baseline;
pub mod control;
mod ef;
mod eg;
mod oi;
pub mod online;
mod result;
pub mod stable;
mod tokens;
mod until;
pub mod witness;

pub use ag::{ag_linear, AgReport};
pub use baseline::ModelChecker;
pub use ef::{ef_linear, ef_post_linear, EfReport};
pub use eg::{eg_conjunctive, eg_linear, eg_post_linear, EgReport};
pub use oi::{af_observer_independent, ef_observer_independent, sample_observation};
pub use tokens::{
    af_conjunctive, af_disjunctive, ag_disjunctive, ef_disjunctive, eg_disjunctive, AfReport,
};
pub use until::{au_disjunctive, eu_conjunctive_linear, AuReport, EuReport};
