//! Detection for **observer-independent** predicates (Charron-Bost,
//! Delporte-Gallet & Fauconnier \[3\]).
//!
//! `p` is observer-independent when `EF(p) ⟺ AF(p)`: if any observation
//! (linearization) sees `p`, every observation does. The `EF`/`AF` cells
//! of Table 1 are then solvable by sampling **one arbitrary observation**
//! and evaluating `p` along it — `O(|E|)` evaluations.
//!
//! The `EG`/`AG` cells are NP-complete / co-NP-complete (Theorems 5 and 6
//! of the paper); `hb-reduction` builds the hardness gadgets and
//! [`crate::ModelChecker`] provides the exponential exact procedure those
//! cells fall back to.

use hb_computation::{Computation, Cut};
use hb_predicates::Predicate;

/// `EF(p)` for an observer-independent predicate: walk one observation
/// (advancing the lowest-index enabled process) and evaluate `p` at every
/// cut. Returns the first satisfying cut as witness.
///
/// Correct only when `p` actually is observer-independent; the classifier
/// in `hb-predicates` can audit the claim on small computations.
pub fn ef_observer_independent<P: Predicate + ?Sized>(
    comp: &Computation,
    p: &P,
) -> crate::ef::EfReport {
    let final_cut = comp.final_cut();
    let mut g = comp.initial_cut();
    let mut steps = 0usize;
    loop {
        steps += 1;
        if p.eval(comp, &g) {
            return crate::ef::EfReport {
                holds: true,
                witness: Some(g),
                steps,
            };
        }
        if g == final_cut {
            return crate::ef::EfReport {
                holds: false,
                witness: None,
                steps,
            };
        }
        let i = (0..g.width())
            .find(|&i| comp.can_advance(&g, i))
            .expect("non-final consistent cut has an enabled event");
        g = g.advanced(i);
    }
}

/// `AF(p)` for an observer-independent predicate — by definition equal to
/// [`ef_observer_independent`].
pub fn af_observer_independent<P: Predicate + ?Sized>(
    comp: &Computation,
    p: &P,
) -> crate::ef::EfReport {
    ef_observer_independent(comp, p)
}

/// Evaluates `p` along an arbitrary observation and reports the cuts; a
/// helper for tests and the `tables` harness that want the sampled
/// observation itself.
pub fn sample_observation(comp: &Computation) -> Vec<Cut> {
    let final_cut = comp.final_cut();
    let mut g = comp.initial_cut();
    let mut path = vec![g.clone()];
    while g != final_cut {
        let i = (0..g.width())
            .find(|&i| comp.can_advance(&g, i))
            .expect("non-final consistent cut has an enabled event");
        g = g.advanced(i);
        path.push(g.clone());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{Disjunctive, FnPredicate, LocalExpr, Stable};

    fn comp() -> (Computation, hb_computation::VarId) {
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        b.internal(0).set(x, 1).done();
        b.internal(0).set(x, 0).done();
        let m = b.send(1).set(x, 2).done_send();
        b.receive(0, m).done();
        b.internal(1).set(x, 0).done();
        (b.finish().unwrap(), x)
    }

    #[test]
    fn oi_detection_matches_model_checker_for_disjunctive() {
        let (comp, x) = comp();
        let mc = ModelChecker::new(&comp);
        for p in [
            Disjunctive::new(vec![(0, LocalExpr::eq(x, 1)), (1, LocalExpr::eq(x, 2))]),
            Disjunctive::new(vec![(0, LocalExpr::eq(x, 9))]),
            Disjunctive::new(vec![(1, LocalExpr::eq(x, 0))]),
        ] {
            let r = ef_observer_independent(&comp, &p);
            assert_eq!(r.holds, mc.ef(&p), "{}", p.describe());
            assert_eq!(r.holds, mc.af(&p), "OI: EF must equal AF");
            if let Some(w) = r.witness {
                assert!(p.eval(&comp, &w));
            }
        }
    }

    #[test]
    fn oi_detection_matches_for_stable() {
        let (comp, _) = comp();
        let mc = ModelChecker::new(&comp);
        let received = Stable(FnPredicate::new("recv", |_: &Computation, g: &Cut| {
            g.get(0) >= 3
        }));
        let r = ef_observer_independent(&comp, &received);
        assert_eq!(r.holds, mc.ef(&received));
        assert_eq!(r.holds, mc.af(&received));
    }

    #[test]
    fn sample_observation_is_a_maximal_path() {
        let (comp, _) = comp();
        let path = sample_observation(&comp);
        assert_eq!(path.len(), comp.num_events() + 1);
        crate::witness::verify_step_path(&comp, &comp.initial_cut(), &comp.final_cut(), &path)
            .unwrap();
    }
}
