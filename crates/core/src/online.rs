//! On-line detection — the paper's closing future-work item ("another
//! area of future work will be to develop efficient on-line versions of
//! our algorithms").
//!
//! An on-line monitor consumes a computation **as it executes**: local
//! states arrive one at a time, each tagged with the vector clock of the
//! event that produced it, in any order consistent with causality. The
//! monitor answers after every observation:
//!
//! * [`OnlineEfConjunctive`] — on-line `EF(p)` for conjunctive `p`
//!   (equivalently, on-line violation detection for the invariant
//!   `AG(¬p)` with disjunctive `¬p`): the Garg–Waldecker queue
//!   algorithm. Each process queues the states satisfying its clause;
//!   whenever every queue has a candidate, pairwise vector-clock
//!   compatibility is enforced by popping candidates that some other
//!   candidate's causal past has already overtaken. The first compatible
//!   set *is* the least satisfying cut `I_p`, identical to what the
//!   off-line Chase–Garg walk returns.
//! * [`OnlineEfDisjunctive`] — on-line `EF(p)` for disjunctive `p`:
//!   report the first arriving state satisfying any clause.
//!
//! Amortized cost: each queued state is pushed and popped at most once,
//! and every pop is justified by one `O(n)` clock comparison — `O(n|E|)`
//! over the whole run, matching the off-line bound.

use hb_computation::Cut;
use hb_vclock::VectorClock;
use std::collections::VecDeque;

/// Verdict of an on-line monitor after some prefix of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlineVerdict {
    /// The predicate was detected; the cut is the least satisfying cut
    /// over the observed prefix (for the conjunctive monitor, `I_p`).
    Detected(Cut),
    /// The predicate can no longer hold, whatever happens next.
    Impossible,
    /// Undetermined: keep observing.
    Pending,
}

/// The common surface of on-line detectors, object-safe so a monitoring
/// service can hold a heterogeneous bag of `Box<dyn OnlineMonitor>`s and
/// feed them the same delivered stream.
///
/// The caller evaluates each process's local clause itself (monitors
/// never see variable values — exactly the information a distributed
/// checker would ship) and streams `(process, holds, clock)` triples in
/// any order consistent with causality, with per-process order
/// preserved.
pub trait OnlineMonitor {
    /// Observes the next local state of process `i`: `holds` is the
    /// local clause's value in that state, `clock` the vector clock of
    /// the event that produced it. Returns the verdict after the
    /// observation.
    fn observe(&mut self, i: usize, holds: bool, clock: &VectorClock) -> OnlineVerdict;

    /// Observes the next event of process `i` as a **labeled** event:
    /// bit `k` of `mask` is set when the event matches atom `k` of the
    /// monitor's pattern. State-predicate monitors have one implicit
    /// atom — the local clause — so the default folds the mask down to
    /// [`OnlineMonitor::observe`]'s boolean; pattern monitors override
    /// this with the real per-atom dispatch.
    fn observe_atoms(&mut self, i: usize, mask: u64, clock: &VectorClock) -> OnlineVerdict {
        self.observe(i, mask != 0, clock)
    }

    /// Declares `count` skipped observations of process `i`: states an
    /// ingest filter (computation slicing) proved irrelevant to the
    /// verdict. The detector advances its per-process state counter as
    /// if it had observed them — with no candidate push and no recheck
    /// — so later candidates carry the same absolute state indices an
    /// unfiltered run would assign.
    ///
    /// Only detectors a slicing filter may front support this; the
    /// default panics, and sessions never slice the others.
    fn skip_states(&mut self, i: usize, count: u64) {
        let _ = (i, count);
        panic!("this detector cannot be fronted by a slicing filter");
    }

    /// Declares that process `i` will produce no further states; returns
    /// the (possibly newly settled) verdict.
    fn finish_process(&mut self, i: usize) -> OnlineVerdict;

    /// The current verdict.
    fn verdict(&self) -> &OnlineVerdict;

    /// Whether the verdict can still change with more input.
    fn is_settled(&self) -> bool {
        !matches!(self.verdict(), OnlineVerdict::Pending)
    }

    /// Exports the monitor's full state as plain data, so a monitoring
    /// service can persist it and later rebuild an equivalent monitor
    /// with [`restore_monitor`].
    fn export_state(&self) -> DetectorState;
}

/// A verdict as plain data (the cut flattened to its counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictState {
    /// Detected, with the least satisfying cut's counters.
    Detected(Vec<u32>),
    /// Settled negative.
    Impossible,
    /// Still observing.
    Pending,
}

impl VerdictState {
    /// Flattens a live verdict.
    pub fn from_verdict(v: &OnlineVerdict) -> VerdictState {
        match v {
            OnlineVerdict::Detected(cut) => VerdictState::Detected(cut.counters().to_vec()),
            OnlineVerdict::Impossible => VerdictState::Impossible,
            OnlineVerdict::Pending => VerdictState::Pending,
        }
    }

    /// Rebuilds the live verdict.
    pub fn to_verdict(&self) -> OnlineVerdict {
        match self {
            VerdictState::Detected(counters) => {
                OnlineVerdict::Detected(Cut::from_counters(counters.clone()))
            }
            VerdictState::Impossible => OnlineVerdict::Impossible,
            VerdictState::Pending => OnlineVerdict::Pending,
        }
    }
}

/// One queued candidate as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateState {
    /// Local state index (0 is the initial state).
    pub state: u32,
    /// Components of the producing event's vector clock.
    pub clock: Vec<u32>,
}

/// Exported state of an [`OnlineEfConjunctive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveState {
    /// Process count.
    pub n: usize,
    /// Per-process candidate queues, front first.
    pub queues: Vec<Vec<CandidateState>>,
    /// Which processes carry a clause.
    pub participating: Vec<bool>,
    /// States observed per process.
    pub seen: Vec<u32>,
    /// Which processes have finished.
    pub finished: Vec<bool>,
    /// The verdict so far.
    pub verdict: VerdictState,
}

/// Exported state of an [`OnlineEfDisjunctive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjunctiveState {
    /// States observed per process.
    pub seen: Vec<u32>,
    /// Processes not yet finished.
    pub live: usize,
    /// The verdict so far.
    pub verdict: VerdictState,
}

/// One Pareto-frontier entry of a predictive pattern matcher, as plain
/// data: the witness chain's clock join and the clock of its last event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternChainState {
    /// Componentwise join of the chain's event clocks.
    pub join: Vec<u32>,
    /// Clock of the chain's last (highest-atom) event.
    pub last: Vec<u32>,
}

/// Exported state of a predictive pattern matcher (`hb-pattern`'s
/// `PredictiveMatcher`). Defined here so [`DetectorState`] can carry it
/// through the same persistence path as the state-predicate detectors;
/// the matcher itself lives in the `hb-pattern` crate, which depends on
/// this one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternState {
    /// Process count.
    pub n: usize,
    /// Per-atom causal-edge flags (`causal[k]` links atom `k-1` → `k`;
    /// `causal[0]` is always `false`). Length is the pattern length `d`.
    pub causal: Vec<bool>,
    /// `frontiers[k]` holds the minimal `k`-chains, `0 ≤ k ≤ d`.
    pub frontiers: Vec<Vec<PatternChainState>>,
    /// `candidates[k][p]`: clocks of process-`p` events matching atom
    /// `k`, in arrival (= causal, per process) order.
    pub candidates: Vec<Vec<Vec<Vec<u32>>>>,
    /// Which processes have finished.
    pub finished: Vec<bool>,
    /// Events observed per process.
    pub seen: Vec<u32>,
    /// The verdict so far.
    pub verdict: VerdictState,
}

/// The full state of any on-line detector, as plain data: everything a
/// service needs to persist a monitor and rebuild it after a crash.
/// Contains no [`VectorClock`] or [`Cut`] values, only integers and
/// booleans, so serialization lives entirely with the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorState {
    /// An [`OnlineEfConjunctive`].
    Conjunctive(ConjunctiveState),
    /// An [`OnlineEfDisjunctive`].
    Disjunctive(DisjunctiveState),
    /// An `hb-pattern` `PredictiveMatcher`.
    Pattern(PatternState),
}

/// Rebuilds a boxed monitor from exported state; the round trip
/// `restore_monitor(m.export_state())` yields a monitor observationally
/// identical to `m`.
///
/// # Panics
///
/// On [`DetectorState::Pattern`]: the matcher type lives in the
/// `hb-pattern` crate (which depends on this one), so callers holding
/// pattern state must dispatch to `hb_pattern::restore_any` instead.
pub fn restore_monitor(state: &DetectorState) -> Box<dyn OnlineMonitor + Send> {
    match state {
        DetectorState::Conjunctive(s) => Box::new(OnlineEfConjunctive::from_state(s)),
        DetectorState::Disjunctive(s) => Box::new(OnlineEfDisjunctive::from_state(s)),
        DetectorState::Pattern(_) => {
            panic!("pattern detectors are restored by hb_pattern::restore_any")
        }
    }
}

impl OnlineMonitor for OnlineEfConjunctive {
    fn observe(&mut self, i: usize, holds: bool, clock: &VectorClock) -> OnlineVerdict {
        OnlineEfConjunctive::observe(self, i, holds, clock);
        self.verdict.clone()
    }

    fn skip_states(&mut self, i: usize, count: u64) {
        // A skipped state is exactly an `observe(i, false, _)` (or a
        // non-participating observation): it bumps `seen` and nothing
        // else, so batching the bump preserves behavior verbatim.
        assert!(!self.finished[i], "process {i} already finished");
        self.seen[i] += u32::try_from(count).expect("skip count exceeds clock range");
    }

    fn finish_process(&mut self, i: usize) -> OnlineVerdict {
        OnlineEfConjunctive::finish_process(self, i);
        self.verdict.clone()
    }

    fn verdict(&self) -> &OnlineVerdict {
        OnlineEfConjunctive::verdict(self)
    }

    fn export_state(&self) -> DetectorState {
        DetectorState::Conjunctive(ConjunctiveState {
            n: self.n,
            queues: self
                .queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|c| CandidateState {
                            state: c.state,
                            clock: c.clock.components().to_vec(),
                        })
                        .collect()
                })
                .collect(),
            participating: self.participating.clone(),
            seen: self.seen.clone(),
            finished: self.finished.clone(),
            verdict: VerdictState::from_verdict(&self.verdict),
        })
    }
}

impl OnlineMonitor for OnlineEfDisjunctive {
    fn observe(&mut self, i: usize, holds: bool, clock: &VectorClock) -> OnlineVerdict {
        OnlineEfDisjunctive::observe(self, i, holds, clock);
        self.verdict.clone()
    }

    fn finish_process(&mut self, i: usize) -> OnlineVerdict {
        OnlineEfDisjunctive::finish_process(self, i);
        self.verdict.clone()
    }

    fn verdict(&self) -> &OnlineVerdict {
        OnlineEfDisjunctive::verdict(self)
    }

    fn export_state(&self) -> DetectorState {
        DetectorState::Disjunctive(DisjunctiveState {
            seen: self.seen.clone(),
            live: self.live,
            verdict: VerdictState::from_verdict(&self.verdict),
        })
    }
}

/// A queued candidate: a local state index and the clock of the event
/// that produced it (`state 0` carries the zero clock).
#[derive(Debug, Clone)]
struct Candidate {
    state: u32,
    clock: VectorClock,
}

/// On-line `EF(conjunctive)` monitor.
///
/// The caller evaluates each process's clause locally (the monitor never
/// sees variable values — exactly the information a distributed checker
/// would ship): call [`OnlineEfConjunctive::observe`] for every new local
/// state of a *participating* process, and
/// [`OnlineEfConjunctive::finish_process`] when a process's stream ends.
#[derive(Debug)]
pub struct OnlineEfConjunctive {
    n: usize,
    /// Queue of satisfying states per participating process.
    queues: Vec<VecDeque<Candidate>>,
    /// Which processes carry a clause.
    participating: Vec<bool>,
    /// Number of states observed per process (so callers stream states,
    /// not indices).
    seen: Vec<u32>,
    finished: Vec<bool>,
    verdict: OnlineVerdict,
}

impl OnlineEfConjunctive {
    /// A monitor over `n` processes; `participating[i]` marks the
    /// processes whose local clause exists (a conjunct on `P_i`).
    ///
    /// `initially[i]` tells the monitor whether `P_i`'s clause holds in
    /// its initial state (state 0, zero clock).
    pub fn new(n: usize, participating: Vec<bool>, initially: Vec<bool>) -> Self {
        assert_eq!(participating.len(), n);
        assert_eq!(initially.len(), n);
        let mut m = OnlineEfConjunctive {
            n,
            queues: vec![VecDeque::new(); n],
            participating,
            seen: vec![0; n],
            finished: vec![false; n],
            verdict: OnlineVerdict::Pending,
        };
        for (i, &init) in initially.iter().enumerate() {
            if m.participating[i] && init {
                m.queues[i].push_back(Candidate {
                    state: 0,
                    clock: VectorClock::new(n),
                });
            }
        }
        m.recheck();
        m
    }

    /// Rebuilds a monitor from exported state.
    pub fn from_state(s: &ConjunctiveState) -> Self {
        OnlineEfConjunctive {
            n: s.n,
            queues: s
                .queues
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|c| Candidate {
                            state: c.state,
                            clock: VectorClock::from_components(c.clock.clone()),
                        })
                        .collect()
                })
                .collect(),
            participating: s.participating.clone(),
            seen: s.seen.clone(),
            finished: s.finished.clone(),
            verdict: s.verdict.to_verdict(),
        }
    }

    /// Observes the next local state of process `i`: `holds` is the local
    /// clause's value in that state and `clock` is the vector clock of
    /// the event that produced it.
    ///
    /// States must arrive in per-process order; cross-process order is
    /// free.
    pub fn observe(&mut self, i: usize, holds: bool, clock: &VectorClock) {
        assert!(!self.finished[i], "process {i} already finished");
        self.seen[i] += 1;
        if !self.participating[i] || !holds {
            return;
        }
        if matches!(self.verdict, OnlineVerdict::Detected(_)) {
            return; // already answered; ignore further input
        }
        self.queues[i].push_back(Candidate {
            state: self.seen[i],
            clock: clock.clone(),
        });
        self.recheck();
    }

    /// Declares that process `i` will produce no further states.
    pub fn finish_process(&mut self, i: usize) {
        self.finished[i] = true;
        self.recheck();
    }

    /// The monitor's current verdict.
    pub fn verdict(&self) -> &OnlineVerdict {
        &self.verdict
    }

    /// The popping fixpoint: drop candidates provably not part of any
    /// compatible set; detect when every participating queue's front is
    /// pairwise compatible.
    fn recheck(&mut self) {
        if !matches!(self.verdict, OnlineVerdict::Pending) {
            return;
        }
        loop {
            // A process with an empty queue: wait unless it is finished
            // (then the conjunction can never hold again).
            for i in 0..self.n {
                if self.participating[i] && self.queues[i].is_empty() {
                    if self.finished[i] {
                        self.verdict = OnlineVerdict::Impossible;
                    }
                    return;
                }
            }
            // All fronts available: enforce pairwise compatibility.
            let mut popped = false;
            'pairs: for i in 0..self.n {
                if !self.participating[i] {
                    continue;
                }
                let ci = self.queues[i].front().expect("checked nonempty").clone();
                for j in 0..self.n {
                    if i == j || !self.participating[j] {
                        continue;
                    }
                    let cj = self.queues[j].front().expect("checked nonempty");
                    // i's candidate prefix requires more events of j than
                    // j's candidate provides: j's candidate is too early
                    // for i's and for every later i-candidate (clocks
                    // only grow), so it is dead.
                    if ci.clock.get(j) > cj.state {
                        self.queues[j].pop_front();
                        popped = true;
                        break 'pairs;
                    }
                }
            }
            if !popped {
                // Compatible: the least satisfying cut is the join of the
                // candidates' prefixes.
                let mut counters = vec![0u32; self.n];
                for i in 0..self.n {
                    if !self.participating[i] {
                        continue;
                    }
                    let c = self.queues[i].front().expect("nonempty");
                    counters[i] = counters[i].max(c.state);
                    for (j, slot) in counters.iter_mut().enumerate() {
                        *slot = (*slot).max(c.clock.get(j));
                    }
                }
                self.verdict = OnlineVerdict::Detected(Cut::from_counters(counters));
                return;
            }
        }
    }
}

/// On-line `EF(disjunctive)` monitor: fires on the first satisfying
/// state.
#[derive(Debug)]
pub struct OnlineEfDisjunctive {
    seen: Vec<u32>,
    live: usize,
    verdict: OnlineVerdict,
}

impl OnlineEfDisjunctive {
    /// A monitor over `n` processes. `initially[i]` is `P_i`'s clause in
    /// its initial state (a clauseless process passes `false`).
    pub fn new(n: usize, initially: Vec<bool>) -> Self {
        let mut m = OnlineEfDisjunctive {
            seen: vec![0; n],
            live: n,
            verdict: OnlineVerdict::Pending,
        };
        if initially.iter().any(|&b| b) {
            m.verdict = OnlineVerdict::Detected(Cut::initial(n));
        }
        m
    }

    /// Rebuilds a monitor from exported state.
    pub fn from_state(s: &DisjunctiveState) -> Self {
        OnlineEfDisjunctive {
            seen: s.seen.clone(),
            live: s.live,
            verdict: s.verdict.to_verdict(),
        }
    }

    /// Observes the next local state of process `i`.
    pub fn observe(&mut self, i: usize, holds: bool, clock: &VectorClock) {
        self.seen[i] += 1;
        if !matches!(self.verdict, OnlineVerdict::Pending) {
            return;
        }
        if holds {
            // The causal past of the producing event is a consistent cut
            // where the state is current.
            self.verdict = OnlineVerdict::Detected(Cut::from_counters(clock.components().to_vec()));
        }
    }

    /// Declares a process finished; when all are, a pending monitor
    /// becomes impossible.
    pub fn finish_process(&mut self, _i: usize) {
        self.live = self.live.saturating_sub(1);
        if self.live == 0 && matches!(self.verdict, OnlineVerdict::Pending) {
            self.verdict = OnlineVerdict::Impossible;
        }
    }

    /// The monitor's current verdict.
    pub fn verdict(&self) -> &OnlineVerdict {
        &self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ef::ef_linear;
    use crate::tokens::ef_disjunctive;
    use hb_computation::{Computation, ComputationBuilder, EventId};
    use hb_predicates::{Conjunctive, Disjunctive, LocalExpr, Predicate};

    /// Streams a recorded computation into a conjunctive monitor using
    /// the given interleaving (a topological order of events).
    fn stream_conj(comp: &Computation, p: &Conjunctive, order: &[EventId]) -> OnlineVerdict {
        let n = comp.num_processes();
        let participating: Vec<bool> = (0..n)
            .map(|i| p.clauses().iter().any(|c| c.process == i))
            .collect();
        let initially: Vec<bool> = (0..n).map(|i| p.clause_holds_at(comp, i, 0)).collect();
        let mut m = OnlineEfConjunctive::new(n, participating, initially);
        for &e in order {
            let holds = p.clause_holds_at(comp, e.process, e.index as u32 + 1);
            m.observe(e.process, holds, comp.clock(e));
        }
        for i in 0..n {
            m.finish_process(i);
        }
        m.verdict().clone()
    }

    fn topo_order(comp: &Computation) -> Vec<EventId> {
        let mut cut = comp.initial_cut();
        let final_cut = comp.final_cut();
        let mut order = Vec::new();
        while cut != final_cut {
            let i = (0..cut.width())
                .find(|&i| comp.can_advance(&cut, i))
                .expect("enabled process");
            order.push(EventId::new(i, cut.get(i) as usize));
            cut = cut.advanced(i);
        }
        order
    }

    fn mutexish() -> (Computation, hb_computation::VarId) {
        let mut b = ComputationBuilder::new(3);
        let x = b.var("x");
        b.internal(0).set(x, 1).done();
        let m = b.send(0).set(x, 2).done_send();
        b.internal(1).set(x, 1).done();
        b.receive(2, m).set(x, 1).done();
        b.internal(2).set(x, 0).done();
        (b.finish().unwrap(), x)
    }

    #[test]
    fn online_matches_offline_and_finds_i_p() {
        let (comp, x) = mutexish();
        let preds = [
            Conjunctive::new(vec![(0, LocalExpr::eq(x, 1)), (1, LocalExpr::eq(x, 1))]),
            Conjunctive::new(vec![
                (0, LocalExpr::eq(x, 2)),
                (1, LocalExpr::eq(x, 1)),
                (2, LocalExpr::eq(x, 1)),
            ]),
            Conjunctive::new(vec![(2, LocalExpr::eq(x, 9))]),
        ];
        for p in &preds {
            let offline = ef_linear(&comp, p);
            let online = stream_conj(&comp, p, &topo_order(&comp));
            match online {
                OnlineVerdict::Detected(cut) => {
                    assert!(offline.holds, "{}", p.describe());
                    assert_eq!(Some(cut.clone()), offline.witness, "{}", p.describe());
                    assert!(comp.is_consistent(&cut));
                    assert!(p.eval(&comp, &cut));
                }
                OnlineVerdict::Impossible => {
                    assert!(!offline.holds, "{}", p.describe())
                }
                OnlineVerdict::Pending => panic!("finished stream left Pending"),
            }
        }
    }

    #[test]
    fn interleaving_does_not_change_the_verdict() {
        let (comp, x) = mutexish();
        let p = Conjunctive::new(vec![(0, LocalExpr::eq(x, 2)), (2, LocalExpr::eq(x, 1))]);
        // Two different topological orders: the default one and the one
        // preferring the highest process index.
        let order_a = topo_order(&comp);
        let mut order_b = Vec::new();
        {
            let mut cut = comp.initial_cut();
            let final_cut = comp.final_cut();
            while cut != final_cut {
                let i = (0..cut.width())
                    .rev()
                    .find(|&i| comp.can_advance(&cut, i))
                    .unwrap();
                order_b.push(EventId::new(i, cut.get(i) as usize));
                cut = cut.advanced(i);
            }
        }
        let va = stream_conj(&comp, &p, &order_a);
        let vb = stream_conj(&comp, &p, &order_b);
        assert_eq!(va, vb);
        assert!(matches!(va, OnlineVerdict::Detected(_)));
    }

    #[test]
    fn detection_can_fire_before_the_run_ends() {
        let (comp, x) = mutexish();
        let p = Conjunctive::new(vec![(0, LocalExpr::eq(x, 1))]);
        let n = comp.num_processes();
        let mut m = OnlineEfConjunctive::new(n, vec![true, false, false], vec![false, true, true]);
        // First event of P0 sets x=1: detection fires immediately.
        let e = EventId::new(0, 0);
        m.observe(0, p.clause_holds_at(&comp, 0, 1), comp.clock(e));
        assert!(matches!(m.verdict(), OnlineVerdict::Detected(_)));
    }

    #[test]
    fn impossible_after_all_processes_finish() {
        let (comp, x) = mutexish();
        let p = Conjunctive::new(vec![(1, LocalExpr::eq(x, 42))]);
        let v = stream_conj(&comp, &p, &topo_order(&comp));
        assert_eq!(v, OnlineVerdict::Impossible);
    }

    #[test]
    fn disjunctive_monitor_matches_offline() {
        let (comp, x) = mutexish();
        for p in [
            Disjunctive::new(vec![(0, LocalExpr::eq(x, 2)), (1, LocalExpr::eq(x, 5))]),
            Disjunctive::new(vec![(2, LocalExpr::eq(x, 5))]),
        ] {
            let n = comp.num_processes();
            let initially: Vec<bool> = (0..n).map(|i| p.clause_holds_at(&comp, i, 0)).collect();
            let mut m = OnlineEfDisjunctive::new(n, initially);
            for e in topo_order(&comp) {
                let holds = p.clause_holds_at(&comp, e.process, e.index as u32 + 1);
                m.observe(e.process, holds, comp.clock(e));
            }
            for i in 0..n {
                m.finish_process(i);
            }
            let offline = ef_disjunctive(&comp, &p);
            match m.verdict() {
                OnlineVerdict::Detected(cut) => {
                    assert!(offline.holds);
                    assert!(comp.is_consistent(cut));
                    assert!(p.eval(&comp, cut));
                }
                OnlineVerdict::Impossible => assert!(!offline.holds),
                OnlineVerdict::Pending => panic!("finished stream left Pending"),
            }
        }
    }

    #[test]
    fn monitor_with_initially_true_conjunction_detects_empty_cut() {
        let m = OnlineEfConjunctive::new(2, vec![true, true], vec![true, true]);
        assert_eq!(m.verdict(), &OnlineVerdict::Detected(Cut::initial(2)));
    }

    #[test]
    fn export_restore_round_trip_preserves_behavior() {
        let (comp, x) = mutexish();
        let n = comp.num_processes();
        let p = Conjunctive::new(vec![(0, LocalExpr::eq(x, 2)), (2, LocalExpr::eq(x, 1))]);
        let participating: Vec<bool> = (0..n)
            .map(|i| p.clauses().iter().any(|c| c.process == i))
            .collect();
        let initially: Vec<bool> = (0..n).map(|i| p.clause_holds_at(&comp, i, 0)).collect();
        let order = topo_order(&comp);
        // Stream the first half, export, restore, stream the rest; the
        // verdict must match an uninterrupted run.
        let mut whole = OnlineEfConjunctive::new(n, participating.clone(), initially.clone());
        let mut first = OnlineEfConjunctive::new(n, participating, initially);
        let mid = order.len() / 2;
        for &e in &order[..mid] {
            let holds = p.clause_holds_at(&comp, e.process, e.index as u32 + 1);
            whole.observe(e.process, holds, comp.clock(e));
            first.observe(e.process, holds, comp.clock(e));
        }
        let exported = OnlineMonitor::export_state(&first);
        drop(first);
        let mut resumed = restore_monitor(&exported);
        assert_eq!(resumed.export_state(), exported, "export is stable");
        for &e in &order[mid..] {
            let holds = p.clause_holds_at(&comp, e.process, e.index as u32 + 1);
            whole.observe(e.process, holds, comp.clock(e));
            resumed.observe(e.process, holds, comp.clock(e));
        }
        for i in 0..n {
            whole.finish_process(i);
            resumed.finish_process(i);
        }
        assert_eq!(whole.verdict(), OnlineMonitor::verdict(resumed.as_ref()));
        assert!(matches!(whole.verdict(), OnlineVerdict::Detected(_)));
    }

    #[test]
    fn skipped_states_are_equivalent_to_false_observations() {
        let (comp, x) = mutexish();
        let n = comp.num_processes();
        let p = Conjunctive::new(vec![(0, LocalExpr::eq(x, 2)), (2, LocalExpr::eq(x, 1))]);
        let participating: Vec<bool> = (0..n)
            .map(|i| p.clauses().iter().any(|c| c.process == i))
            .collect();
        let initially: Vec<bool> = (0..n).map(|i| p.clause_holds_at(&comp, i, 0)).collect();
        let mut plain = OnlineEfConjunctive::new(n, participating.clone(), initially.clone());
        let mut sliced = OnlineEfConjunctive::new(n, participating.clone(), initially);
        // The sliced leg replaces every non-candidate observation with a
        // lazily flushed skip, the way a session's ingest filter does.
        let mut pending = vec![0u64; n];
        for e in topo_order(&comp) {
            let holds = p.clause_holds_at(&comp, e.process, e.index as u32 + 1);
            plain.observe(e.process, holds, comp.clock(e));
            if participating[e.process] && holds {
                let skipped = std::mem::take(&mut pending[e.process]);
                if skipped > 0 {
                    OnlineMonitor::skip_states(&mut sliced, e.process, skipped);
                }
                sliced.observe(e.process, true, comp.clock(e));
            } else {
                pending[e.process] += 1;
            }
            assert_eq!(plain.verdict(), sliced.verdict());
        }
        for (i, skipped) in pending.iter_mut().enumerate() {
            if *skipped > 0 {
                OnlineMonitor::skip_states(&mut sliced, i, std::mem::take(skipped));
            }
            plain.finish_process(i);
            sliced.finish_process(i);
        }
        assert!(matches!(plain.verdict(), OnlineVerdict::Detected(_)));
        // Not just the verdicts: the full exported states coincide, so
        // snapshots taken on either leg are interchangeable.
        assert_eq!(
            OnlineMonitor::export_state(&plain),
            OnlineMonitor::export_state(&sliced)
        );
    }

    #[test]
    #[should_panic(expected = "cannot be fronted")]
    fn disjunctive_detector_rejects_skips() {
        let mut m = OnlineEfDisjunctive::new(2, vec![false, false]);
        OnlineMonitor::skip_states(&mut m, 0, 1);
    }

    #[test]
    fn disjunctive_export_restore_round_trip() {
        let mut m = OnlineEfDisjunctive::new(3, vec![false, false, false]);
        m.observe(1, false, &VectorClock::from_components(vec![0, 1, 0]));
        let exported = OnlineMonitor::export_state(&m);
        let mut resumed = restore_monitor(&exported);
        assert_eq!(resumed.export_state(), exported);
        // Fire on the restored copy; the cut comes from the clock.
        let v = resumed.observe(2, true, &VectorClock::from_components(vec![0, 1, 1]));
        assert_eq!(
            v,
            OnlineVerdict::Detected(Cut::from_counters(vec![0, 1, 1]))
        );
        // A settled verdict survives the round trip too.
        let again = restore_monitor(&resumed.export_state());
        assert!(again.is_settled());
        assert_eq!(OnlineMonitor::verdict(again.as_ref()), &v);
    }

    #[test]
    #[should_panic(expected = "hb_pattern::restore_any")]
    fn restore_monitor_rejects_pattern_state() {
        // The matcher type lives above this crate; restoring its state
        // here must fail loudly, not silently mis-detect.
        let state = DetectorState::Pattern(PatternState {
            n: 2,
            causal: vec![false, false],
            frontiers: vec![
                vec![PatternChainState {
                    join: vec![0, 0],
                    last: vec![0, 0],
                }],
                Vec::new(),
                Vec::new(),
            ],
            candidates: vec![vec![Vec::new(); 2]; 2],
            finished: vec![false; 2],
            seen: vec![0; 2],
            verdict: VerdictState::Pending,
        });
        let _ = restore_monitor(&state);
    }

    /// Every restorable [`DetectorState`] variant, snapshotted at
    /// *every* observation boundary: export → restore → finish the
    /// stream must produce the same verdict and the same final export
    /// as a detector that was never snapshotted.
    #[test]
    fn restore_round_trip_at_every_boundary_matches_unsnapshotted_run() {
        let (comp, x) = mutexish();
        let n = comp.num_processes();
        let order = topo_order(&comp);
        let conj = Conjunctive::new(vec![(0, LocalExpr::eq(x, 2)), (2, LocalExpr::eq(x, 1))]);
        let disj = Disjunctive::new(vec![(1, LocalExpr::eq(x, 1)), (2, LocalExpr::eq(x, 9))]);
        let participating: Vec<bool> = (0..n)
            .map(|i| conj.clauses().iter().any(|c| c.process == i))
            .collect();
        let conj_init: Vec<bool> = (0..n).map(|i| conj.clause_holds_at(&comp, i, 0)).collect();
        let disj_init: Vec<bool> = (0..n).map(|i| disj.clause_holds_at(&comp, i, 0)).collect();
        let conj_holds = |i: usize, s: u32| conj.clause_holds_at(&comp, i, s);
        let disj_holds = |i: usize, s: u32| disj.clause_holds_at(&comp, i, s);
        type Fresh<'a> = Box<dyn Fn() -> Box<dyn OnlineMonitor> + 'a>;
        type HoldsAt<'a> = Box<dyn Fn(usize, u32) -> bool + 'a>;
        let variants: Vec<(Fresh, HoldsAt)> = vec![
            (
                Box::new(|| {
                    Box::new(OnlineEfConjunctive::new(
                        n,
                        participating.clone(),
                        conj_init.clone(),
                    ))
                }),
                Box::new(conj_holds),
            ),
            (
                Box::new(|| Box::new(OnlineEfDisjunctive::new(n, disj_init.clone()))),
                Box::new(disj_holds),
            ),
        ];
        for (fresh, holds_at) in &variants {
            // The reference: never snapshotted.
            let mut whole = fresh();
            for &e in &order {
                whole.observe(
                    e.process,
                    holds_at(e.process, e.index as u32 + 1),
                    comp.clock(e),
                );
            }
            for i in 0..n {
                whole.finish_process(i);
            }
            for cut_at in 0..=order.len() {
                let mut first = fresh();
                for &e in &order[..cut_at] {
                    first.observe(
                        e.process,
                        holds_at(e.process, e.index as u32 + 1),
                        comp.clock(e),
                    );
                }
                let exported = first.export_state();
                let mut resumed = restore_monitor(&exported);
                assert_eq!(
                    resumed.export_state(),
                    exported,
                    "export stable at {cut_at}"
                );
                for &e in &order[cut_at..] {
                    resumed.observe(
                        e.process,
                        holds_at(e.process, e.index as u32 + 1),
                        comp.clock(e),
                    );
                }
                for i in 0..n {
                    resumed.finish_process(i);
                }
                assert_eq!(
                    resumed.export_state(),
                    whole.export_state(),
                    "final state diverged for snapshot at {cut_at}"
                );
                assert_eq!(whole.verdict(), resumed.verdict());
            }
        }
    }

    #[test]
    fn trait_objects_dispatch_to_both_monitors() {
        let (comp, x) = mutexish();
        let n = comp.num_processes();
        let conj = Conjunctive::new(vec![(0, LocalExpr::eq(x, 2)), (2, LocalExpr::eq(x, 1))]);
        let disj = Disjunctive::new(vec![(1, LocalExpr::eq(x, 1))]);
        let participating: Vec<bool> = (0..n)
            .map(|i| conj.clauses().iter().any(|c| c.process == i))
            .collect();
        let conj_init: Vec<bool> = (0..n).map(|i| conj.clause_holds_at(&comp, i, 0)).collect();
        let disj_init: Vec<bool> = (0..n).map(|i| disj.clause_holds_at(&comp, i, 0)).collect();
        let conj_holds = |i, s| conj.clause_holds_at(&comp, i, s);
        let disj_holds = |i, s| disj.clause_holds_at(&comp, i, s);
        type HoldsFn<'a> = &'a dyn Fn(usize, u32) -> bool;
        let mut monitors: Vec<(Box<dyn OnlineMonitor>, HoldsFn)> = vec![
            (
                Box::new(OnlineEfConjunctive::new(n, participating, conj_init)),
                &conj_holds,
            ),
            (
                Box::new(OnlineEfDisjunctive::new(n, disj_init)),
                &disj_holds,
            ),
        ];
        for e in topo_order(&comp) {
            for (m, holds_at) in monitors.iter_mut() {
                m.observe(
                    e.process,
                    holds_at(e.process, e.index as u32 + 1),
                    comp.clock(e),
                );
            }
        }
        for (m, _) in monitors.iter_mut() {
            for i in 0..n {
                m.finish_process(i);
            }
            assert!(m.is_settled());
            assert!(matches!(m.verdict(), OnlineVerdict::Detected(_)));
        }
    }
}
