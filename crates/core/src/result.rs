//! Shared result shapes for detection algorithms.
//!
//! Each operator module defines its own report type (a verdict plus an
//! operator-appropriate witness); this module holds the small helpers they
//! share.

use hb_computation::{Computation, Cut};

/// Materializes *some* maximal consistent-cut sequence from `from` to `to`
/// (`from ⊆ to` in the cut order), advancing the lowest-index enabled
/// process that still lags `to` at each step.
///
/// Such a path always exists when both cuts are consistent: the interval
/// `[from, to]` of a distributive lattice is graded.
///
/// # Panics
/// Panics if the cuts are not consistent or not ordered.
pub(crate) fn staircase_path(comp: &Computation, from: &Cut, to: &Cut) -> Vec<Cut> {
    assert!(from.leq(to), "staircase requires from ⊆ to");
    debug_assert!(comp.is_consistent(from) && comp.is_consistent(to));
    let mut path = vec![from.clone()];
    let mut g = from.clone();
    while &g != to {
        let i = (0..g.width())
            .find(|&i| g.get(i) < to.get(i) && comp.can_advance(&g, i))
            .expect("graded interval always has an enabled lagging process");
        g = g.advanced(i);
        path.push(g.clone());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    #[test]
    fn staircase_reaches_target_one_step_at_a_time() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).done_send();
        b.internal(0).done();
        b.receive(1, m).done();
        let comp = b.finish().unwrap();
        let path = staircase_path(&comp, &comp.initial_cut(), &comp.final_cut());
        assert_eq!(path.len(), comp.num_events() + 1);
        for w in path.windows(2) {
            assert!(w[0].covers_step(&w[1]));
            assert!(comp.is_consistent(&w[1]));
        }
    }

    #[test]
    fn staircase_between_equal_cuts_is_singleton() {
        let comp = ComputationBuilder::new(2).finish().unwrap();
        let path = staircase_path(&comp, &comp.initial_cut(), &comp.final_cut());
        assert_eq!(path.len(), 1);
    }
}
