//! Detection for **stable** predicates — the "trivial" cells of Table 1.
//!
//! A stable predicate (Chandy–Lamport) never turns false again once true.
//! On a finite computation this collapses every operator to a single
//! evaluation:
//!
//! * `EF(p) ⟺ AF(p) ⟺ p(E)` — if `p` ever holds, stability pushes it to
//!   the final cut, which every path ends at;
//! * `EG(p) ⟺ AG(p) ⟺ p(∅)` — if `p` holds initially, stability keeps
//!   it true on every cut of every path; if not, every path starts with a
//!   violation.
//!
//! The functions take the [`Stable`] wrapper so that the caller's claim of
//! stability is visible in the types; `debug_assert`s (and the classifier
//! in `hb-predicates`) audit the claim in tests.

use hb_computation::Computation;
use hb_predicates::{Predicate, Stable};

/// `EF(p)` for stable `p`: evaluate at the final cut.
pub fn ef_stable<P: Predicate>(comp: &Computation, p: &Stable<P>) -> bool {
    p.eval(comp, &comp.final_cut())
}

/// `AF(p)` for stable `p`: identical to [`ef_stable`] (stable predicates
/// are observer-independent).
pub fn af_stable<P: Predicate>(comp: &Computation, p: &Stable<P>) -> bool {
    ef_stable(comp, p)
}

/// `EG(p)` for stable `p`: evaluate at the initial cut.
pub fn eg_stable<P: Predicate>(comp: &Computation, p: &Stable<P>) -> bool {
    p.eval(comp, &comp.initial_cut())
}

/// `AG(p)` for stable `p`: identical to [`eg_stable`].
pub fn ag_stable<P: Predicate>(comp: &Computation, p: &Stable<P>) -> bool {
    eg_stable(comp, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use hb_computation::{ComputationBuilder, Cut};
    use hb_predicates::FnPredicate;

    fn comp_with_message() -> Computation {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        b.internal(1).done();
        b.finish().unwrap()
    }

    #[test]
    fn stable_detection_matches_model_checker() {
        let comp = comp_with_message();
        let mc = ModelChecker::new(&comp);
        // "P1 has received the message" is stable.
        let received = Stable(FnPredicate::new("received", |_: &Computation, g: &Cut| {
            g.get(1) >= 1
        }));
        assert_eq!(ef_stable(&comp, &received), mc.ef(&received));
        assert_eq!(af_stable(&comp, &received), mc.af(&received));
        assert_eq!(eg_stable(&comp, &received), mc.eg(&received));
        assert_eq!(ag_stable(&comp, &received), mc.ag(&received));
        assert!(ef_stable(&comp, &received));
        assert!(!eg_stable(&comp, &received));
    }

    #[test]
    fn initially_true_stable_predicate_is_invariant() {
        let comp = comp_with_message();
        let always = Stable(FnPredicate::new("true", |_: &Computation, _: &Cut| true));
        assert!(ag_stable(&comp, &always));
        assert!(eg_stable(&comp, &always));
    }

    #[test]
    fn never_true_stable_predicate() {
        let comp = comp_with_message();
        let never = Stable(FnPredicate::new("false", |_: &Computation, _: &Cut| false));
        assert!(!ef_stable(&comp, &never));
        assert!(!af_stable(&comp, &never));
        assert!(!eg_stable(&comp, &never));
        assert!(!ag_stable(&comp, &never));
    }
}
