//! Detection for the conjunctive/disjunctive Table-1 cells that reduce to
//! `EG(disjunctive)`: the **token-interval algorithm**.
//!
//! Table 1 attributes `EG(disjunctive)` and `AF(conjunctive)` to
//! Garg–Waldecker \[11\] without restating the algorithms. This module
//! implements our reconstruction (documented in DESIGN.md §5):
//!
//! `EG(p)` for disjunctive `p = l_1 ∨ … ∨ l_k` asks for a maximal path on
//! which, at every cut, *some* process is in a "good" local state. Think
//! of a **token** held by a process while its disjunct is true:
//!
//! * a process's good states form maximal **runs** of consecutive local
//!   state indices — the token can ride a run as the process advances;
//! * the token can **hand off** from run `(j, J)` to run `(l, L)` at any
//!   consistent cut `H` whose `j`-coordinate lies in `J` and whose
//!   `l`-coordinate lies in `L`;
//! * `EG(p)` holds iff a chain of handoff cuts connects a run containing
//!   the initial state (`lo = 0`) to a run containing some process's
//!   final state (`hi = m_l`).
//!
//! Completeness: along any all-good path, pick a witness process at each
//! cut; at the instant the current witness's run ends, the cut just
//! before the offending event still satisfies both the old and the new
//! witness's disjuncts, which is exactly a handoff cut. Soundness: between
//! handoffs any cover chain works because the token-holder's counter moves
//! monotonically inside its run.
//!
//! The search relaxes runs in earliest-arrival order. Because "arrival"
//! is a *cut*, not a scalar, each run keeps an **antichain** of minimal
//! arrival cuts; feasibility of a handoff is monotone in the arrival cut,
//! so dominated arrivals are pruned. On every workload in this repository
//! the antichains stay tiny (they are bounded by the width of the
//! computation in the worst case constructions we know), giving
//! polynomial behaviour; the worst case is unproven — which is consistent
//! with this Table-1 cell being *cited*, not proved, in the paper.

use crate::ef::ef_linear;
use crate::eg::{eg_conjunctive, EgReport};
use crate::result::staircase_path;
use hb_computation::{Computation, Cut};
use hb_predicates::{Conjunctive, Disjunctive, Predicate};
use std::collections::VecDeque;

/// Outcome of an `AF` detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AfReport {
    /// Whether every maximal path passes through a satisfying cut.
    pub holds: bool,
    /// When `!holds`: a maximal path avoiding the predicate entirely.
    pub counterexample: Option<Vec<Cut>>,
}

/// A maximal run of consecutive good local states of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    process: usize,
    /// First good state index (0 = initial state).
    lo: u32,
    /// Last good state index (`m_i` = state after the final event).
    hi: u32,
}

/// Search-arena entry: the token arrived at `run` with cut `arrival`.
struct Arrival {
    run: usize,
    arrival: Cut,
    parent: Option<usize>,
}

/// Detects `EG(p)` for a disjunctive predicate via the token-interval
/// search. Returns a verified-shape witness path on success.
pub fn eg_disjunctive(comp: &Computation, p: &Disjunctive) -> EgReport {
    let final_cut = comp.final_cut();

    // Degenerate: an empty disjunction is false everywhere.
    if p.clauses().is_empty() {
        return EgReport {
            holds: false,
            witness: None,
            steps: 1,
        };
    }

    // Collect maximal good runs per process.
    let mut runs: Vec<Run> = Vec::new();
    for clause in p.clauses() {
        let i = clause.process;
        let m = comp.num_events_of(i) as u32;
        let mut s = 0u32;
        while s <= m {
            if clause.eval_at(comp, s) {
                let lo = s;
                while s < m && clause.eval_at(comp, s + 1) {
                    s += 1;
                }
                runs.push(Run {
                    process: i,
                    lo,
                    hi: s,
                });
            }
            s += 1;
        }
    }

    let accepts = |r: &Run| -> bool { r.hi == comp.num_events_of(r.process) as u32 };

    let mut arena: Vec<Arrival> = Vec::new();
    // Antichain of minimal arrival cuts per run (arena indices).
    let mut fronts: Vec<Vec<usize>> = vec![Vec::new(); runs.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut steps = 0usize;

    let mut found: Option<usize> = None;
    for (ri, r) in runs.iter().enumerate() {
        if r.lo == 0 {
            let idx = arena.len();
            arena.push(Arrival {
                run: ri,
                arrival: comp.initial_cut(),
                parent: None,
            });
            fronts[ri].push(idx);
            if accepts(r) {
                found = Some(idx);
                break;
            }
            queue.push_back(idx);
        }
    }

    'search: while found.is_none() {
        let Some(cur) = queue.pop_front() else {
            break;
        };
        let (j_run, g) = (arena[cur].run, arena[cur].arrival.clone());
        let j = runs[j_run];
        for (l_run, l) in runs.iter().enumerate() {
            if l.process == j.process {
                continue;
            }
            steps += 1;
            if g.get(l.process) > l.hi {
                continue;
            }
            let h = comp.least_extension(&g, l.process, l.lo);
            if h.get(l.process) > l.hi || h.get(j.process) > j.hi {
                continue;
            }
            debug_assert!(h.get(l.process) >= l.lo || l.lo == 0);
            // Antichain insertion: skip if dominated, prune the dominated.
            if fronts[l_run].iter().any(|&a| arena[a].arrival.leq(&h)) {
                continue;
            }
            fronts[l_run].retain(|&a| !h.leq(&arena[a].arrival));
            let idx = arena.len();
            arena.push(Arrival {
                run: l_run,
                arrival: h,
                parent: Some(cur),
            });
            fronts[l_run].push(idx);
            if accepts(&runs[l_run]) {
                found = Some(idx);
                break 'search;
            }
            queue.push_back(idx);
        }
    }

    match found {
        None => EgReport {
            holds: false,
            witness: None,
            steps: steps.max(1),
        },
        Some(mut idx) => {
            // Reconstruct handoff cuts, then pave cover chains between them.
            let mut handoffs = Vec::new();
            loop {
                handoffs.push(arena[idx].arrival.clone());
                match arena[idx].parent {
                    Some(p) => idx = p,
                    None => break,
                }
            }
            handoffs.reverse();
            let mut path = vec![comp.initial_cut()];
            for h in handoffs.iter() {
                let seg = staircase_path(comp, path.last().expect("nonempty"), h);
                path.extend(seg.into_iter().skip(1));
            }
            let seg = staircase_path(comp, path.last().expect("nonempty"), &final_cut);
            path.extend(seg.into_iter().skip(1));
            debug_assert!(path.iter().all(|g| p.eval(comp, g)));
            EgReport {
                holds: true,
                witness: Some(path),
                steps: steps.max(1),
            }
        }
    }
}

/// Detects `AF(p)` — *definitely: p* — for a conjunctive predicate via
/// `AF(p) = ¬EG(¬p)` with `¬p` disjunctive. The counterexample, when
/// `AF` fails, is a maximal path avoiding `p`.
pub fn af_conjunctive(comp: &Computation, p: &Conjunctive) -> AfReport {
    let r = eg_disjunctive(comp, &p.negated());
    AfReport {
        holds: !r.holds,
        counterexample: r.witness,
    }
}

/// Detects `AF(p)` for a disjunctive predicate via `¬EG(¬p)` with `¬p`
/// conjunctive (Algorithm A1 territory).
pub fn af_disjunctive(comp: &Computation, p: &Disjunctive) -> AfReport {
    let r = eg_conjunctive(comp, &p.negated());
    AfReport {
        holds: !r.holds,
        counterexample: r.witness,
    }
}

/// Detects `EF(p)` for a disjunctive predicate: some disjunct must hold at
/// some local state, and every local state is current in some consistent
/// cut (its event's causal past). `O(Σ states)`.
pub fn ef_disjunctive(comp: &Computation, p: &Disjunctive) -> crate::ef::EfReport {
    for clause in p.clauses() {
        let i = clause.process;
        for s in 0..=comp.num_events_of(i) as u32 {
            if clause.eval_at(comp, s) {
                let witness = if s == 0 {
                    comp.initial_cut()
                } else {
                    comp.causal_past_cut(hb_computation::EventId::new(i, s as usize - 1))
                };
                debug_assert!(p.eval(comp, &witness));
                return crate::ef::EfReport {
                    holds: true,
                    witness: Some(witness),
                    steps: s as usize,
                };
            }
        }
    }
    crate::ef::EfReport {
        holds: false,
        witness: None,
        steps: 0,
    }
}

/// Detects `AG(p)` for a disjunctive predicate via `¬EF(¬p)` with `¬p`
/// conjunctive (Chase–Garg). The counterexample is the least cut violating
/// `p`.
pub fn ag_disjunctive(comp: &Computation, p: &Disjunctive) -> crate::ag::AgReport {
    let r = ef_linear(comp, &p.negated());
    crate::ag::AgReport {
        holds: !r.holds,
        counterexample: r.witness,
        checked: r.steps + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::{verify_af_counterexample, verify_eg_witness};
    use crate::ModelChecker;
    use hb_computation::ComputationBuilder;
    use hb_predicates::LocalExpr;

    /// P0: ok=1 …… ok=0 at its second event; P1: ok=0 until its first
    /// event sets ok=1. The "relay" needs a handoff.
    fn relay() -> (Computation, hb_computation::VarId) {
        let mut b = ComputationBuilder::new(2);
        let ok = b.var("ok");
        b.init(0, ok, 1);
        b.internal(0).done(); // P0 still ok
        b.internal(0).set(ok, 0).done(); // P0 goes bad
        b.internal(1).set(ok, 1).done(); // P1 becomes ok
        b.internal(1).done();
        (b.finish().unwrap(), ok)
    }

    fn ok_pred(ok: hb_computation::VarId) -> Disjunctive {
        Disjunctive::new(vec![(0, LocalExpr::eq(ok, 1)), (1, LocalExpr::eq(ok, 1))])
    }

    #[test]
    fn relay_handoff_found() {
        let (comp, ok) = relay();
        let p = ok_pred(ok);
        let r = eg_disjunctive(&comp, &p);
        assert!(r.holds);
        verify_eg_witness(&comp, &p, r.witness.as_deref().unwrap()).unwrap();
    }

    #[test]
    fn no_handoff_when_gap_unavoidable() {
        // P0 bad from its first event on; P1 only good from its first
        // event; but P1's first event *requires* P0's second (message), so
        // there is a moment with nobody good.
        let mut b = ComputationBuilder::new(2);
        let ok = b.var("ok");
        b.init(0, ok, 1);
        b.internal(0).set(ok, 0).done();
        let m = b.send(0).done_send();
        b.receive(1, m).set(ok, 1).done();
        let comp = b.finish().unwrap();
        let p = ok_pred(ok);
        assert!(!eg_disjunctive(&comp, &p).holds);
    }

    #[test]
    fn handoff_through_message_dependency_works_when_consistent() {
        // Same as above but P1 is good from the start: token can sit on
        // P1 the whole time.
        let mut b = ComputationBuilder::new(2);
        let ok = b.var("ok");
        b.init(1, ok, 1);
        b.internal(0).set(ok, 0).done();
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        let comp = b.finish().unwrap();
        let p = ok_pred(ok);
        let r = eg_disjunctive(&comp, &p);
        assert!(r.holds);
        verify_eg_witness(&comp, &p, r.witness.as_deref().unwrap()).unwrap();
    }

    #[test]
    fn agrees_with_model_checker_on_relay_family() {
        let (comp, ok) = relay();
        let mc = ModelChecker::new(&comp);
        for p in [
            ok_pred(ok),
            Disjunctive::new(vec![(0, LocalExpr::eq(ok, 1))]),
            Disjunctive::new(vec![(1, LocalExpr::eq(ok, 1))]),
            Disjunctive::new(vec![(0, LocalExpr::eq(ok, 9))]),
            Disjunctive::bottom(),
        ] {
            assert_eq!(
                eg_disjunctive(&comp, &p).holds,
                mc.eg(&p),
                "{}",
                p.describe()
            );
        }
    }

    #[test]
    fn af_conjunctive_with_counterexample() {
        let (comp, ok) = relay();
        // "Both bad at once" is avoidable (it is the complement of the
        // relay property): AF fails with the relay path as witness.
        let bad = Conjunctive::new(vec![(0, LocalExpr::eq(ok, 0)), (1, LocalExpr::eq(ok, 0))]);
        let r = af_conjunctive(&comp, &bad);
        assert!(!r.holds);
        verify_af_counterexample(&comp, &bad, r.counterexample.as_deref().unwrap()).unwrap();

        // "P0 eventually bad" is inevitable.
        let p0bad = Conjunctive::new(vec![(0, LocalExpr::eq(ok, 0))]);
        assert!(af_conjunctive(&comp, &p0bad).holds);
    }

    #[test]
    fn af_disjunctive_matches_model_checker() {
        let (comp, ok) = relay();
        let mc = ModelChecker::new(&comp);
        for p in [
            ok_pred(ok),
            Disjunctive::new(vec![(0, LocalExpr::eq(ok, 0))]),
            Disjunctive::new(vec![(1, LocalExpr::eq(ok, 7))]),
        ] {
            assert_eq!(
                af_disjunctive(&comp, &p).holds,
                mc.af(&p),
                "{}",
                p.describe()
            );
        }
    }

    #[test]
    fn ef_and_ag_disjunctive_wrappers() {
        let (comp, ok) = relay();
        let mc = ModelChecker::new(&comp);
        let p = ok_pred(ok);
        let ef = ef_disjunctive(&comp, &p);
        assert_eq!(ef.holds, mc.ef(&p));
        assert!(p.eval(&comp, &ef.witness.unwrap()));
        assert_eq!(ag_disjunctive(&comp, &p).holds, mc.ag(&p));
        // Always-true disjunct: AG holds.
        let tautology =
            Disjunctive::new(vec![(0, LocalExpr::ge(ok, 0)), (0, LocalExpr::lt(ok, 0))]);
        assert!(ag_disjunctive(&comp, &tautology).holds);
    }

    #[test]
    fn empty_disjunction_is_never_controllable() {
        let (comp, _) = relay();
        assert!(!eg_disjunctive(&comp, &Disjunctive::bottom()).holds);
    }

    #[test]
    fn token_rides_single_process_through_whole_run() {
        let mut b = ComputationBuilder::new(3);
        let ok = b.var("ok");
        b.init(0, ok, 1);
        for _ in 0..3 {
            b.internal(1).done();
            b.internal(2).done();
        }
        let comp = b.finish().unwrap();
        let p = Disjunctive::new(vec![(0, LocalExpr::eq(ok, 1))]);
        let r = eg_disjunctive(&comp, &p);
        assert!(r.holds);
        verify_eg_witness(&comp, &p, r.witness.as_deref().unwrap()).unwrap();
    }
}
