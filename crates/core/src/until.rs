//! **Algorithm A3**: `E[p U q]` for `p` conjunctive and `q` linear
//! (Fig. 5 of the paper), and `A[p U q]` for disjunctive `p, q` via the
//! §7 identity.
//!
//! Theorem 7 reduces `E[p U q]` to a *single* target: it suffices to find
//! a path from the initial cut to `I_q` (the least cut satisfying `q`)
//! along which `p` holds — no other `q`-cut needs to be considered.
//! Operationally (Fig. 5):
//!
//! 1. compute `I_q` with the Chase–Garg advancement algorithm;
//! 2. for each maximal event `e` of `I_q`, check `EG(p)` on the
//!    sub-computation `I_q − {e}` with Algorithm A1; if any check passes,
//!    appending `I_q` to A1's witness yields the `E[p U q]` witness.
//!
//! `A[p U q]` for disjunctive `p, q` uses
//! `A[p U q] ⟺ ¬(EG(¬q) ∨ E[¬q U (¬p ∧ ¬q)])`: `¬q` is conjunctive, so
//! `EG(¬q)` is Algorithm A1 and `E[¬q U (¬p ∧ ¬q)]` is Algorithm A3 with
//! a conjunctive (hence linear) target.

use crate::ef::ef_linear;
use crate::eg::eg_conjunctive;
use hb_computation::{Computation, Cut};
use hb_predicates::{Conjunctive, Disjunctive, LinearPredicate};

/// Outcome of an `E[p U q]` detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EuReport {
    /// Whether `E[p U q]` holds at the initial cut.
    pub holds: bool,
    /// When `holds`: a path `∅ ▷ … ▷ I_q` with `p` before the end and `q`
    /// at the end.
    pub witness: Option<Vec<Cut>>,
    /// The least cut satisfying `q`, when it exists.
    pub i_q: Option<Cut>,
}

/// Outcome of an `A[p U q]` detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuReport {
    /// Whether `A[p U q]` holds at the initial cut.
    pub holds: bool,
    /// When `!holds`: a maximal-path prefix demonstrating the violation —
    /// either a full path on which `q` never holds, or a path reaching a
    /// cut where `p ∧ q` both fail with `q` false throughout.
    pub counterexample: Option<Vec<Cut>>,
}

/// Algorithm A3: detects `E[p U q]` for conjunctive `p`, linear `q`.
pub fn eu_conjunctive_linear<Q: LinearPredicate + ?Sized>(
    comp: &Computation,
    p: &Conjunctive,
    q: &Q,
) -> EuReport {
    // Step 1: the least cut satisfying q.
    let ef = ef_linear(comp, q);
    let Some(i_q) = ef.witness else {
        return EuReport {
            holds: false,
            witness: None,
            i_q: None,
        };
    };

    // k = 0 case: q already holds initially.
    if i_q.rank() == 0 {
        return EuReport {
            holds: true,
            witness: Some(vec![i_q.clone()]),
            i_q: Some(i_q),
        };
    }

    // Step 2: EG(p) on I_q − {e} for each maximal event e of I_q.
    for e in comp.maximal_events(&i_q) {
        let e_prime = i_q.retreated(e.process);
        let sub = comp.restricted_to(&e_prime);
        let r = eg_conjunctive(&sub, p);
        if r.holds {
            let mut path = r.witness.expect("EG holds implies witness");
            path.push(i_q.clone());
            return EuReport {
                holds: true,
                witness: Some(path),
                i_q: Some(i_q),
            };
        }
    }
    EuReport {
        holds: false,
        witness: None,
        i_q: Some(i_q),
    }
}

/// Conjunction of two conjunctive predicates (clause concatenation).
fn conj_and(a: &Conjunctive, b: &Conjunctive) -> Conjunctive {
    let mut clauses: Vec<(usize, hb_predicates::LocalExpr)> = Vec::new();
    for c in a.clauses().iter().chain(b.clauses()) {
        clauses.push((c.process, c.expr.clone()));
    }
    Conjunctive::new(clauses)
}

/// §7 identity: detects `A[p U q]` for disjunctive `p`, `q`.
pub fn au_disjunctive(comp: &Computation, p: &Disjunctive, q: &Disjunctive) -> AuReport {
    let not_q = q.negated();

    // Case 1: some maximal path avoids q entirely.
    let eg = eg_conjunctive(comp, &not_q);
    if eg.holds {
        return AuReport {
            holds: false,
            counterexample: eg.witness,
        };
    }

    // Case 2: some path stays ¬q until a cut where both p and q fail.
    let not_p_and_not_q = conj_and(&p.negated(), &not_q);
    let eu = eu_conjunctive_linear(comp, &not_q, &not_p_and_not_q);
    if eu.holds {
        return AuReport {
            holds: false,
            counterexample: eu.witness,
        };
    }

    AuReport {
        holds: true,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::verify_eu_witness;
    use crate::ModelChecker;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{ChannelsEmpty, LocalExpr, Predicate, TrueP};

    /// A mutual-exclusion-shaped computation: both processes try, then
    /// enter their critical sections at different times.
    fn try_crit() -> (Computation, hb_computation::VarId, hb_computation::VarId) {
        let mut b = ComputationBuilder::new(2);
        let try_ = b.var("try");
        let crit = b.var("crit");
        b.internal(0).set(try_, 1).done();
        let m = b.send(0).done_send();
        b.internal(0).set(crit, 1).done();
        b.internal(1).set(try_, 1).done();
        b.receive(1, m).done();
        b.internal(1).set(crit, 1).done();
        (b.finish().unwrap(), try_, crit)
    }

    #[test]
    fn eu_holds_with_valid_witness() {
        let (comp, try_, crit) = try_crit();
        // E["P0 trying" U "P0 critical"]: p after its first event, q at
        // its third.
        let p = Conjunctive::new(vec![(
            0,
            LocalExpr::eq(try_, 1).and(LocalExpr::eq(crit, 0)),
        )]);
        let q = Conjunctive::new(vec![(0, LocalExpr::eq(crit, 1))]);
        let r = eu_conjunctive_linear(&comp, &p, &q);
        // p fails at the initial cut (try=0), so EU should fail!
        assert!(!r.holds);

        // With p = "P0 not critical" the prefix is fine.
        let p2 = Conjunctive::new(vec![(0, LocalExpr::eq(crit, 0))]);
        let r2 = eu_conjunctive_linear(&comp, &p2, &q);
        assert!(r2.holds);
        verify_eu_witness(&comp, &p2, &q, r2.witness.as_deref().unwrap()).unwrap();
        assert_eq!(r2.i_q.unwrap(), Cut::from_counters(vec![3, 0]));
    }

    #[test]
    fn eu_matches_model_checker() {
        let (comp, try_, crit) = try_crit();
        let mc = ModelChecker::new(&comp);
        let cases: Vec<(Conjunctive, Conjunctive)> = vec![
            (
                Conjunctive::new(vec![(0, LocalExpr::eq(crit, 0))]),
                Conjunctive::new(vec![(0, LocalExpr::eq(crit, 1))]),
            ),
            (
                Conjunctive::new(vec![(1, LocalExpr::eq(try_, 0))]),
                Conjunctive::new(vec![(0, LocalExpr::eq(crit, 1))]),
            ),
            (
                Conjunctive::top(),
                Conjunctive::new(vec![
                    (0, LocalExpr::eq(crit, 1)),
                    (1, LocalExpr::eq(crit, 1)),
                ]),
            ),
            (
                Conjunctive::new(vec![(0, LocalExpr::eq(crit, 7))]),
                Conjunctive::new(vec![(1, LocalExpr::eq(crit, 1))]),
            ),
        ];
        for (p, q) in &cases {
            let ours = eu_conjunctive_linear(&comp, p, q);
            assert_eq!(
                ours.holds,
                mc.eu(p, q),
                "E[{} U {}]",
                p.describe(),
                q.describe()
            );
            if let Some(w) = ours.witness.as_deref() {
                verify_eu_witness(&comp, p, q, w).unwrap();
            }
        }
    }

    #[test]
    fn eu_with_channel_predicate_target() {
        // Fig. 4 flavor: q = channels empty ∧ trying; here just channels.
        let (comp, _, _) = try_crit();
        let r = eu_conjunctive_linear(&comp, &Conjunctive::top(), &ChannelsEmpty);
        assert!(r.holds);
        // Channels start empty: I_q is the initial cut.
        assert_eq!(r.i_q.unwrap().rank(), 0);
        assert_eq!(r.witness.unwrap().len(), 1);
    }

    #[test]
    fn eu_q_never_holds() {
        let (comp, _, crit) = try_crit();
        let q = Conjunctive::new(vec![(0, LocalExpr::eq(crit, 9))]);
        let r = eu_conjunctive_linear(&comp, &Conjunctive::top(), &q);
        assert!(!r.holds);
        assert_eq!(r.i_q, None);
    }

    #[test]
    fn au_matches_model_checker() {
        let (comp, try_, crit) = try_crit();
        let mc = ModelChecker::new(&comp);
        let cases: Vec<(Disjunctive, Disjunctive)> = vec![
            // A[(try0 | try1) U (crit0 | crit1)]: every path must reach a
            // critical section with someone trying beforehand — fails at
            // the initial cut where nobody tries yet… unless a crit is
            // first. Model checker decides; we just must agree.
            (
                Disjunctive::new(vec![
                    (0, LocalExpr::eq(try_, 1)),
                    (1, LocalExpr::eq(try_, 1)),
                ]),
                Disjunctive::new(vec![
                    (0, LocalExpr::eq(crit, 1)),
                    (1, LocalExpr::eq(crit, 1)),
                ]),
            ),
            // A[true-ish U crit0]: crit0 is inevitable.
            (
                Disjunctive::new(vec![(0, LocalExpr::ge(try_, 0))]),
                Disjunctive::new(vec![(0, LocalExpr::eq(crit, 1))]),
            ),
            // Target never holds.
            (
                Disjunctive::new(vec![(0, LocalExpr::ge(try_, 0))]),
                Disjunctive::new(vec![(1, LocalExpr::eq(crit, 5))]),
            ),
        ];
        for (p, q) in &cases {
            let ours = au_disjunctive(&comp, p, q);
            assert_eq!(
                ours.holds,
                mc.au(p, q),
                "A[{} U {}]",
                p.describe(),
                q.describe()
            );
        }
    }

    #[test]
    fn au_true_until_inevitable() {
        let (comp, _, crit) = try_crit();
        let mc = ModelChecker::new(&comp);
        // AF(crit0 ∧ crit1) as A[true U ·] through the disjunctive API:
        // use tautological disjuncts for p.
        let p = Disjunctive::new(vec![
            (0, LocalExpr::ge(crit, 0)),
            (1, LocalExpr::ge(crit, 0)),
        ]);
        let q = Disjunctive::new(vec![(1, LocalExpr::eq(crit, 1))]);
        let ours = au_disjunctive(&comp, &p, &q);
        assert_eq!(ours.holds, mc.au(&TrueP, &q));
        assert!(ours.holds);
    }

    #[test]
    fn au_counterexample_is_meaningful() {
        let (comp, try_, crit) = try_crit();
        let p = Disjunctive::new(vec![(0, LocalExpr::eq(try_, 1))]);
        let q = Disjunctive::new(vec![(0, LocalExpr::eq(crit, 5))]); // never
        let r = au_disjunctive(&comp, &p, &q);
        assert!(!r.holds);
        let cex = r.counterexample.unwrap();
        // The counterexample avoids q everywhere.
        for g in &cex {
            assert!(!q.eval(&comp, g));
        }
    }
}
