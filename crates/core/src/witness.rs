//! Witness validation against raw CTL semantics.
//!
//! Every detection algorithm in this crate returns a witness when it
//! answers positively (or a counterexample when a universal property
//! fails). These validators re-check witnesses from first principles —
//! consistency of every cut, the `▷` step relation, the endpoint
//! conditions, and the predicate at each position — so a test failure
//! pinpoints exactly which obligation broke.

use hb_computation::{Computation, Cut};
use hb_predicates::Predicate;
use std::fmt;

/// Why a witness failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The path is empty.
    Empty,
    /// The path does not start at the required cut.
    WrongStart {
        /// Expected first cut.
        expected: Cut,
        /// Actual first cut.
        actual: Cut,
    },
    /// The path does not end at the required cut.
    WrongEnd {
        /// Expected last cut.
        expected: Cut,
        /// Actual last cut.
        actual: Cut,
    },
    /// Some cut on the path is not a consistent cut.
    Inconsistent {
        /// Index within the path.
        position: usize,
    },
    /// Two adjacent cuts are not related by `▷` (one event added).
    NotAStep {
        /// Index of the first cut of the offending pair.
        position: usize,
    },
    /// The predicate fails where the operator requires it to hold.
    PredicateFails {
        /// Index within the path.
        position: usize,
        /// The predicate's description.
        predicate: String,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Empty => write!(f, "empty witness path"),
            WitnessError::WrongStart { expected, actual } => {
                write!(f, "path starts at {actual}, expected {expected}")
            }
            WitnessError::WrongEnd { expected, actual } => {
                write!(f, "path ends at {actual}, expected {expected}")
            }
            WitnessError::Inconsistent { position } => {
                write!(f, "cut at position {position} is inconsistent")
            }
            WitnessError::NotAStep { position } => {
                write!(
                    f,
                    "positions {position}..{} differ by ≠1 event",
                    position + 1
                )
            }
            WitnessError::PredicateFails {
                position,
                predicate,
            } => write!(f, "predicate {predicate} fails at position {position}"),
        }
    }
}

impl std::error::Error for WitnessError {}

/// Checks that `path` is a consistent-cut sequence under `▷` from `from`
/// to `to`.
pub fn verify_step_path(
    comp: &Computation,
    from: &Cut,
    to: &Cut,
    path: &[Cut],
) -> Result<(), WitnessError> {
    let first = path.first().ok_or(WitnessError::Empty)?;
    if first != from {
        return Err(WitnessError::WrongStart {
            expected: from.clone(),
            actual: first.clone(),
        });
    }
    let last = path.last().expect("nonempty");
    if last != to {
        return Err(WitnessError::WrongEnd {
            expected: to.clone(),
            actual: last.clone(),
        });
    }
    for (i, g) in path.iter().enumerate() {
        if !comp.is_consistent(g) {
            return Err(WitnessError::Inconsistent { position: i });
        }
    }
    for (i, w) in path.windows(2).enumerate() {
        if !w[0].covers_step(&w[1]) {
            return Err(WitnessError::NotAStep { position: i });
        }
    }
    Ok(())
}

/// Validates an `EG(p)` witness: a maximal path `∅ → E` with `p` at every
/// cut.
pub fn verify_eg_witness<P: Predicate + ?Sized>(
    comp: &Computation,
    p: &P,
    path: &[Cut],
) -> Result<(), WitnessError> {
    verify_step_path(comp, &comp.initial_cut(), &comp.final_cut(), path)?;
    for (i, g) in path.iter().enumerate() {
        if !p.eval(comp, g) {
            return Err(WitnessError::PredicateFails {
                position: i,
                predicate: p.describe(),
            });
        }
    }
    Ok(())
}

/// Validates an `E[p U q]` witness: a path `∅ = G_0 ▷ … ▷ G_k` of
/// consistent cuts with `q(G_k)` and `p(G_i)` for all `i < k`.
pub fn verify_eu_witness<P: Predicate + ?Sized, Q: Predicate + ?Sized>(
    comp: &Computation,
    p: &P,
    q: &Q,
    path: &[Cut],
) -> Result<(), WitnessError> {
    let last = path.last().ok_or(WitnessError::Empty)?.clone();
    verify_step_path(comp, &comp.initial_cut(), &last, path)?;
    if !q.eval(comp, &last) {
        return Err(WitnessError::PredicateFails {
            position: path.len() - 1,
            predicate: q.describe(),
        });
    }
    for (i, g) in path.iter().take(path.len() - 1).enumerate() {
        if !p.eval(comp, g) {
            return Err(WitnessError::PredicateFails {
                position: i,
                predicate: p.describe(),
            });
        }
    }
    Ok(())
}

/// Validates an `¬AF(p)` counterexample (equivalently an `EG(¬p)`
/// witness): a maximal path avoiding `p` everywhere.
pub fn verify_af_counterexample<P: Predicate + ?Sized>(
    comp: &Computation,
    p: &P,
    path: &[Cut],
) -> Result<(), WitnessError> {
    verify_step_path(comp, &comp.initial_cut(), &comp.final_cut(), path)?;
    for (i, g) in path.iter().enumerate() {
        if p.eval(comp, g) {
            return Err(WitnessError::PredicateFails {
                position: i,
                predicate: format!("!({})", p.describe()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;
    use hb_predicates::{FalseP, TrueP};

    fn tiny() -> Computation {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(1).done();
        b.finish().unwrap()
    }

    #[test]
    fn accepts_valid_path() {
        let c = tiny();
        let path = vec![
            Cut::from_counters(vec![0, 0]),
            Cut::from_counters(vec![1, 0]),
            Cut::from_counters(vec![1, 1]),
        ];
        assert!(verify_eg_witness(&c, &TrueP, &path).is_ok());
    }

    #[test]
    fn rejects_wrong_endpoints_and_gaps() {
        let c = tiny();
        assert_eq!(verify_eg_witness(&c, &TrueP, &[]), Err(WitnessError::Empty));
        let bad_start = vec![
            Cut::from_counters(vec![1, 0]),
            Cut::from_counters(vec![1, 1]),
        ];
        assert!(matches!(
            verify_eg_witness(&c, &TrueP, &bad_start),
            Err(WitnessError::WrongStart { .. })
        ));
        let gap = vec![
            Cut::from_counters(vec![0, 0]),
            Cut::from_counters(vec![1, 1]),
        ];
        assert!(matches!(
            verify_eg_witness(&c, &TrueP, &gap),
            Err(WitnessError::NotAStep { position: 0 })
        ));
    }

    #[test]
    fn rejects_predicate_violation() {
        let c = tiny();
        let path = vec![
            Cut::from_counters(vec![0, 0]),
            Cut::from_counters(vec![1, 0]),
            Cut::from_counters(vec![1, 1]),
        ];
        assert!(matches!(
            verify_eg_witness(&c, &FalseP, &path),
            Err(WitnessError::PredicateFails { position: 0, .. })
        ));
    }

    #[test]
    fn eu_witness_checks_q_only_at_end() {
        let c = tiny();
        let path = vec![
            Cut::from_counters(vec![0, 0]),
            Cut::from_counters(vec![1, 0]),
        ];
        // p=true everywhere before the end; q must hold at the end.
        struct AtEnd;
        impl Predicate for AtEnd {
            fn eval(&self, _: &Computation, g: &Cut) -> bool {
                g.get(0) == 1 && g.get(1) == 0
            }
        }
        assert!(verify_eu_witness(&c, &TrueP, &AtEnd, &path).is_ok());
        // p is checked strictly before the end, so a p that fails at the
        // start is rejected even though q holds at the end.
        assert!(matches!(
            verify_eu_witness(&c, &AtEnd, &AtEnd, &path),
            Err(WitnessError::PredicateFails { position: 0, .. })
        ));
        assert!(matches!(
            verify_eu_witness(&c, &TrueP, &FalseP, &path),
            Err(WitnessError::PredicateFails { .. })
        ));
    }

    #[test]
    fn inconsistent_cut_detected() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).done_send();
        b.receive(1, m).done();
        let c = b.finish().unwrap();
        let path = vec![
            Cut::from_counters(vec![0, 0]),
            Cut::from_counters(vec![0, 1]), // receive before send
            Cut::from_counters(vec![1, 1]),
        ];
        assert!(matches!(
            verify_eg_witness(&c, &TrueP, &path),
            Err(WitnessError::Inconsistent { position: 1 })
        ));
    }
}
