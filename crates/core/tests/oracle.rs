//! Oracle property tests: every structural detection algorithm must agree
//! with the explicit-lattice CTL model checker on random computations and
//! random predicates of the appropriate class, and every positive answer
//! must carry a witness that validates against raw semantics.

use hb_computation::{Computation, ComputationBuilder};
use hb_detect::witness::{verify_af_counterexample, verify_eg_witness, verify_eu_witness};
use hb_detect::{
    af_conjunctive, af_disjunctive, ag_disjunctive, ag_linear, au_disjunctive, ef_disjunctive,
    ef_linear, ef_observer_independent, eg_conjunctive, eg_disjunctive, eg_linear,
    eu_conjunctive_linear, ModelChecker,
};
use hb_predicates::classify;
use hb_predicates::{ChannelsEmpty, Conjunctive, Disjunctive, LocalExpr, Predicate};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Internal(usize),
    Send(usize),
    Receive(usize),
}

fn plan(n_procs: usize, max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0..n_procs, 0u8..4), 1..max_ops).prop_map(|raw| {
        raw.into_iter()
            .map(|(p, k)| match k {
                0 | 1 => Op::Internal(p),
                2 => Op::Send(p),
                _ => Op::Receive(p),
            })
            .collect()
    })
}

/// Builds a computation where variable `x` cycles through small values, so
/// random comparisons carve interesting satisfying sets.
fn build(n_procs: usize, ops: &[Op]) -> Computation {
    let mut b = ComputationBuilder::new(n_procs);
    let x = b.var("x");
    let mut pending = std::collections::VecDeque::new();
    let mut v = 0i64;
    for op in ops {
        v = (v + 1) % 3;
        match *op {
            Op::Internal(p) => {
                b.internal(p).set(x, v).done();
            }
            Op::Send(p) => pending.push_back(b.send(p).set(x, v).done_send()),
            Op::Receive(p) => match pending.pop_front() {
                Some(tok) => {
                    b.receive(p, tok).set(x, v).done();
                }
                None => {
                    b.internal(p).set(x, v).done();
                }
            },
        }
    }
    let mut p = 0usize;
    while let Some(tok) = pending.pop_front() {
        b.receive(p % n_procs, tok).done();
        p += 1;
    }
    b.finish().expect("plan builds")
}

fn x_of(comp: &Computation) -> hb_computation::VarId {
    comp.vars().lookup("x").expect("x declared")
}

/// A random local expression over x with values in 0..3.
fn local_expr(comp: &Computation, sel: u8, lit: i64) -> LocalExpr {
    let x = x_of(comp);
    match sel % 6 {
        0 => LocalExpr::eq(x, lit),
        1 => LocalExpr::ne(x, lit),
        2 => LocalExpr::lt(x, lit),
        3 => LocalExpr::le(x, lit),
        4 => LocalExpr::gt(x, lit),
        _ => LocalExpr::ge(x, lit),
    }
}

fn conjunctive(comp: &Computation, spec: &[(u8, i64)]) -> Conjunctive {
    Conjunctive::new(
        spec.iter()
            .enumerate()
            .map(|(i, &(sel, lit))| (i % comp.num_processes(), local_expr(comp, sel, lit)))
            .collect(),
    )
}

fn disjunctive(comp: &Computation, spec: &[(u8, i64)]) -> Disjunctive {
    Disjunctive::new(
        spec.iter()
            .enumerate()
            .map(|(i, &(sel, lit))| (i % comp.num_processes(), local_expr(comp, sel, lit)))
            .collect(),
    )
}

fn pred_spec() -> impl Strategy<Value = Vec<(u8, i64)>> {
    prop::collection::vec((0u8..6, 0i64..3), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ef_linear_matches_oracle(ops in plan(3, 10), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let r = ef_linear(&comp, &p);
        prop_assert_eq!(r.holds, mc.ef(&p), "{}", p.describe());
        if let Some(w) = r.witness {
            prop_assert!(comp.is_consistent(&w));
            prop_assert!(p.eval(&comp, &w));
        }
    }

    #[test]
    fn eg_linear_and_conjunctive_match_oracle(ops in plan(3, 10), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let expected = mc.eg(&p);
        let naive = eg_linear(&comp, &p);
        let inc = eg_conjunctive(&comp, &p);
        prop_assert_eq!(naive.holds, expected, "naive {}", p.describe());
        prop_assert_eq!(inc.holds, expected, "incremental {}", p.describe());
        if let Some(w) = naive.witness.as_deref() {
            prop_assert!(verify_eg_witness(&comp, &p, w).is_ok());
        }
        if let Some(w) = inc.witness.as_deref() {
            prop_assert!(verify_eg_witness(&comp, &p, w).is_ok());
        }
    }

    #[test]
    fn ag_linear_matches_oracle(ops in plan(3, 10), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let r = ag_linear(&comp, &p);
        prop_assert_eq!(r.holds, mc.ag(&p), "{}", p.describe());
        if let Some(cex) = r.counterexample {
            prop_assert!(comp.is_consistent(&cex));
            prop_assert!(!p.eval(&comp, &cex));
        }
    }

    #[test]
    fn eg_disjunctive_matches_oracle(ops in plan(3, 9), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = disjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let r = eg_disjunctive(&comp, &p);
        prop_assert_eq!(r.holds, mc.eg(&p), "{}", p.describe());
        if let Some(w) = r.witness.as_deref() {
            prop_assert!(verify_eg_witness(&comp, &p, w).is_ok());
        }
    }

    #[test]
    fn af_conjunctive_matches_oracle(ops in plan(3, 9), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let r = af_conjunctive(&comp, &p);
        prop_assert_eq!(r.holds, mc.af(&p), "{}", p.describe());
        if let Some(cex) = r.counterexample.as_deref() {
            prop_assert!(verify_af_counterexample(&comp, &p, cex).is_ok());
        }
    }

    #[test]
    fn af_ef_ag_disjunctive_match_oracle(ops in plan(3, 9), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = disjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        prop_assert_eq!(af_disjunctive(&comp, &p).holds, mc.af(&p), "AF {}", p.describe());
        prop_assert_eq!(ef_disjunctive(&comp, &p).holds, mc.ef(&p), "EF {}", p.describe());
        prop_assert_eq!(ag_disjunctive(&comp, &p).holds, mc.ag(&p), "AG {}", p.describe());
    }

    #[test]
    fn oi_sampling_matches_oracle_for_disjunctive(ops in plan(3, 9), spec in pred_spec()) {
        // Disjunctive predicates are observer-independent, so one sampled
        // observation decides EF and AF.
        let comp = build(3, &ops);
        let p = disjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let r = ef_observer_independent(&comp, &p);
        prop_assert_eq!(r.holds, mc.ef(&p));
        prop_assert_eq!(r.holds, mc.af(&p));
    }

    #[test]
    fn eu_matches_oracle(ops in plan(3, 8), pspec in pred_spec(), qspec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &pspec);
        let q = conjunctive(&comp, &qspec);
        let mc = ModelChecker::new(&comp);
        let r = eu_conjunctive_linear(&comp, &p, &q);
        prop_assert_eq!(
            r.holds, mc.eu(&p, &q),
            "E[{} U {}]", p.describe(), q.describe()
        );
        if let Some(w) = r.witness.as_deref() {
            prop_assert!(verify_eu_witness(&comp, &p, &q, w).is_ok());
        }
    }

    #[test]
    fn eu_with_channel_target_matches_oracle(ops in plan(3, 8), pspec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &pspec);
        let mc = ModelChecker::new(&comp);
        let r = eu_conjunctive_linear(&comp, &p, &ChannelsEmpty);
        prop_assert_eq!(r.holds, mc.eu(&p, &ChannelsEmpty));
        if let Some(w) = r.witness.as_deref() {
            prop_assert!(verify_eu_witness(&comp, &p, &ChannelsEmpty, w).is_ok());
        }
    }

    #[test]
    fn au_matches_oracle(ops in plan(3, 8), pspec in pred_spec(), qspec in pred_spec()) {
        let comp = build(3, &ops);
        let p = disjunctive(&comp, &pspec);
        let q = disjunctive(&comp, &qspec);
        let mc = ModelChecker::new(&comp);
        let r = au_disjunctive(&comp, &p, &q);
        prop_assert_eq!(
            r.holds, mc.au(&p, &q),
            "A[{} U {}]", p.describe(), q.describe()
        );
    }

    #[test]
    fn class_declarations_audited(ops in plan(3, 8), spec in pred_spec()) {
        // The structural foundation: conjunctive predicates really are
        // regular with a sound advancement oracle; disjunctive predicates
        // really are observer-independent; channel-emptiness is regular.
        let comp = build(3, &ops);
        let lat = mc_lattice(&comp);
        let c = conjunctive(&comp, &spec);
        prop_assert!(classify::is_regular_on(&lat, &comp, &c));
        prop_assert!(classify::verify_linear_oracle(&lat, &comp, &c));
        let d = disjunctive(&comp, &spec);
        prop_assert!(classify::is_observer_independent_on(&lat, &comp, &d));
        prop_assert!(classify::is_regular_on(&lat, &comp, &ChannelsEmpty));
        prop_assert!(classify::verify_linear_oracle(&lat, &comp, &ChannelsEmpty));
    }
}

fn mc_lattice(comp: &Computation) -> hb_lattice::CutLattice {
    hb_lattice::CutLattice::build(comp)
}

/// Streams a computation into the on-line conjunctive monitor in the
/// lowest-index topological order.
fn stream_online(comp: &Computation, p: &Conjunctive) -> hb_detect::online::OnlineVerdict {
    use hb_detect::online::OnlineEfConjunctive;
    let n = comp.num_processes();
    let participating: Vec<bool> = (0..n)
        .map(|i| p.clauses().iter().any(|c| c.process == i))
        .collect();
    let initially: Vec<bool> = (0..n).map(|i| p.clause_holds_at(comp, i, 0)).collect();
    let mut m = OnlineEfConjunctive::new(n, participating, initially);
    let mut cut = comp.initial_cut();
    let final_cut = comp.final_cut();
    while cut != final_cut {
        let i = (0..cut.width())
            .find(|&i| comp.can_advance(&cut, i))
            .expect("enabled process");
        let e = hb_computation::EventId::new(i, cut.get(i) as usize);
        let holds = p.clause_holds_at(comp, i, cut.get(i) + 1);
        m.observe(i, holds, comp.clock(e));
        cut = cut.advanced(i);
    }
    for i in 0..n {
        m.finish_process(i);
    }
    m.verdict().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn online_ef_matches_offline(ops in plan(3, 10), spec in pred_spec()) {
        use hb_detect::online::OnlineVerdict;
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let offline = ef_linear(&comp, &p);
        match stream_online(&comp, &p) {
            OnlineVerdict::Detected(cut) => {
                prop_assert!(offline.holds, "{}", p.describe());
                prop_assert_eq!(Some(cut), offline.witness, "{}", p.describe());
            }
            OnlineVerdict::Impossible => prop_assert!(!offline.holds, "{}", p.describe()),
            OnlineVerdict::Pending => prop_assert!(false, "finished stream left Pending"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ef_post_linear_finds_greatest_cut(ops in plan(3, 10), spec in pred_spec()) {
        // Conjunctive predicates are regular, hence post-linear: the dual
        // walk must find the *greatest* satisfying cut.
        use hb_detect::ef_post_linear;
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let r = ef_post_linear(&comp, &p);
        prop_assert_eq!(r.holds, mc.ef(&p), "{}", p.describe());
        if let Some(w) = r.witness {
            prop_assert!(p.eval(&comp, &w));
            // Greatest: every satisfying cut lies below it.
            for i in 0..mc.lattice().len() {
                let g = mc.lattice().cut(i);
                if p.eval(&comp, g) {
                    prop_assert!(g.leq(&w), "{} not below {}", g, w);
                }
            }
        }
    }

    #[test]
    fn eg_post_linear_matches_oracle_for_channels(ops in plan(3, 9)) {
        use hb_detect::eg_post_linear;
        let comp = build(3, &ops);
        let mc = ModelChecker::new(&comp);
        let r = eg_post_linear(&comp, &ChannelsEmpty);
        prop_assert_eq!(r.holds, mc.eg(&ChannelsEmpty));
        if let Some(w) = r.witness.as_deref() {
            prop_assert!(verify_eg_witness(&comp, &ChannelsEmpty, w).is_ok());
        }
    }

    #[test]
    fn slicer_membership_matches_predicate(ops in plan(3, 9), spec in pred_spec()) {
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let slice = hb_slicer::Slice::compute(&comp, &p);
        for i in 0..mc.lattice().len() {
            let g = mc.lattice().cut(i);
            prop_assert_eq!(slice.contains(g), p.eval(&comp, g), "{} at {}", p.describe(), g);
        }
        // Slice-based EG agrees with A1.
        let via_slice = hb_slicer::eg_regular_via_slice(&comp, &p);
        prop_assert_eq!(via_slice.holds, mc.eg(&p), "{}", p.describe());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn four_process_cross_check(ops in plan(4, 12), spec in pred_spec()) {
        // Wider computations: every core algorithm against the oracle.
        let comp = build(4, &ops);
        let mc = match ModelChecker::with_limit(&comp, 60_000) {
            Ok(mc) => mc,
            Err(_) => return Ok(()), // lattice too large for the oracle
        };
        let c = conjunctive(&comp, &spec);
        let d = disjunctive(&comp, &spec);
        prop_assert_eq!(ef_linear(&comp, &c).holds, mc.ef(&c));
        prop_assert_eq!(eg_conjunctive(&comp, &c).holds, mc.eg(&c));
        prop_assert_eq!(ag_linear(&comp, &c).holds, mc.ag(&c));
        prop_assert_eq!(af_conjunctive(&comp, &c).holds, mc.af(&c));
        prop_assert_eq!(eg_disjunctive(&comp, &d).holds, mc.eg(&d));
        prop_assert_eq!(af_disjunctive(&comp, &d).holds, mc.af(&d));
        prop_assert_eq!(
            eu_conjunctive_linear(&comp, &c, &ChannelsEmpty).holds,
            mc.eu(&c, &ChannelsEmpty)
        );
        prop_assert_eq!(
            au_disjunctive(&comp, &d, &d).holds,
            mc.au(&d, &d)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eg_holds_iff_some_path_survives_counting(ops in plan(3, 9), spec in pred_spec()) {
        // Quantified controllability: A1 answers true iff the number of
        // all-satisfying observations is nonzero.
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let mc = ModelChecker::new(&comp);
        let sat = mc.label(&p);
        let count = mc.lattice().count_paths_through(|i| sat[i]);
        prop_assert_eq!(eg_conjunctive(&comp, &p).holds, count > 0, "{}", p.describe());
        // And the unfiltered count matches total path statistics.
        prop_assert_eq!(
            mc.lattice().count_paths_through(|_| true),
            mc.lattice().path_counts().total_paths
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn control_schedules_enforce_invariance(ops in plan(3, 9), spec in pred_spec()) {
        // Predicate control soundness (Tarafdar–Garg): whenever EG(p)
        // holds, the synchronization schedule extracted from the witness
        // makes p invariant on the controlled computation.
        use hb_detect::control::{control_edges, ControlledComputation};
        let comp = build(3, &ops);
        let p = conjunctive(&comp, &spec);
        let r = eg_conjunctive(&comp, &p);
        if let Some(path) = r.witness.as_deref() {
            let edges = control_edges(&comp, path).expect("valid witness");
            let controlled = ControlledComputation::new(&comp, edges);
            prop_assert_eq!(controlled.ag_exhaustive(&p, 100_000), Some(true));
        }
    }
}
