//! Stress tests for the token-interval `EG(disjunctive)` search: many
//! short alternating runs across several processes (the shape that
//! maximizes handoff churn and antichain pressure), validated against
//! the model checker where feasible and for witness soundness beyond.

use hb_computation::{Computation, ComputationBuilder};
use hb_detect::witness::verify_eg_witness;
use hb_detect::{eg_disjunctive, ModelChecker};
use hb_predicates::{Disjunctive, LocalExpr};

/// `n` processes; process `i` alternates ok=1/ok=0 every event, with a
/// phase shift, so good runs are short and numerous. Messages stitch the
/// processes into a ring every `stride` events to constrain handoffs.
fn alternating(n: usize, events: usize, stride: usize) -> (Computation, hb_computation::VarId) {
    let mut b = ComputationBuilder::new(n);
    let ok = b.var("ok");
    for i in 0..n {
        b.init(i, ok, (i % 2) as i64);
    }
    let mut pending: Vec<Option<hb_computation::MsgToken>> = vec![None; n];
    for k in 0..events {
        for i in 0..n {
            let phase = ((k + i) % 2) as i64;
            if stride > 0 && k % stride == stride - 1 {
                // Send to the next process; receive whatever the previous
                // one last sent (if anything).
                let tok = b.send(i).set(ok, phase).done_send();
                let prev = (i + n - 1) % n;
                if let Some(t) = pending[prev].take() {
                    b.receive(i, t).done();
                }
                pending[i] = Some(tok);
            } else {
                b.internal(i).set(ok, phase).done();
            }
        }
    }
    // Drain leftover sends.
    let leftovers: Vec<(usize, hb_computation::MsgToken)> = pending
        .iter_mut()
        .enumerate()
        .filter_map(|(i, slot)| slot.take().map(|t| (i, t)))
        .collect();
    for (i, t) in leftovers {
        b.receive((i + 1) % n, t).done();
    }
    (b.finish().unwrap(), ok)
}

fn someone_ok(n: usize, ok: hb_computation::VarId) -> Disjunctive {
    Disjunctive::new((0..n).map(|i| (i, LocalExpr::eq(ok, 1))).collect())
}

#[test]
fn matches_model_checker_on_dense_alternations() {
    for (n, events, stride) in [(2, 6, 0), (3, 4, 2), (3, 5, 3), (4, 3, 2)] {
        let (comp, ok) = alternating(n, events, stride);
        let p = someone_ok(n, ok);
        let ours = eg_disjunctive(&comp, &p);
        let mc = ModelChecker::with_limit(&comp, 500_000).expect("stress sizes stay below the cap");
        assert_eq!(
            ours.holds,
            mc.eg(&p),
            "n={n} events={events} stride={stride}"
        );
        if let Some(w) = ours.witness.as_deref() {
            verify_eg_witness(&comp, &p, w).unwrap();
        }
    }
}

#[test]
fn large_instances_terminate_quickly_with_valid_witnesses() {
    // Far beyond any buildable lattice: 6 processes × 200 alternations.
    let (comp, ok) = alternating(6, 200, 5);
    assert!(comp.num_events() > 1200);
    let p = someone_ok(6, ok);
    let start = std::time::Instant::now();
    let r = eg_disjunctive(&comp, &p);
    assert!(
        start.elapsed().as_secs() < 10,
        "token search took {:?}",
        start.elapsed()
    );
    if let Some(w) = r.witness.as_deref() {
        verify_eg_witness(&comp, &p, w).unwrap();
    }
}

#[test]
fn single_good_process_needs_no_handoffs_even_at_scale() {
    let mut b = ComputationBuilder::new(4);
    let ok = b.var("ok");
    b.init(0, ok, 1);
    for _ in 0..500 {
        for i in 1..4 {
            b.internal(i).done();
        }
    }
    let comp = b.finish().unwrap();
    let p = Disjunctive::new(vec![(0, LocalExpr::eq(ok, 1))]);
    let r = eg_disjunctive(&comp, &p);
    assert!(r.holds);
    verify_eg_witness(&comp, &p, r.witness.as_deref().unwrap()).unwrap();
}

#[test]
fn adversarial_narrow_windows() {
    // Good windows exactly one state wide, forced through messages: the
    // token must hand off at precisely one cut each time.
    let mut b = ComputationBuilder::new(2);
    let ok = b.var("ok");
    b.init(0, ok, 1);
    // P0 good only initially; P1 good only after its first event, which
    // requires P0's second event (message) — a gap is unavoidable.
    b.internal(0).set(ok, 0).done();
    let m = b.send(0).done_send();
    b.receive(1, m).set(ok, 1).done();
    let comp = b.finish().unwrap();
    let p = someone_ok(2, ok);
    let ours = eg_disjunctive(&comp, &p);
    let mc = ModelChecker::new(&comp);
    assert_eq!(ours.holds, mc.eg(&p));
    assert!(!ours.holds);
}
