//! The CTL abstract syntax tree.

use hb_predicates::CmpOp;
use std::fmt;

/// An atomic proposition over a global state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// Constant truth value.
    Const(bool),
    /// `var@process ⊙ literal` — a comparison on one process's variable.
    Cmp {
        /// Variable name (resolved against the computation at compile
        /// time).
        var: String,
        /// Process index.
        process: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Integer literal.
        lit: i64,
    },
    /// "All channels are empty."
    ChannelsEmpty,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Const(b) => write!(f, "{b}"),
            Atom::Cmp {
                var,
                process,
                op,
                lit,
            } => write!(f, "{var}@{process} {op} {lit}"),
            Atom::ChannelsEmpty => write!(f, "empty"),
        }
    }
}

/// A CTL formula in the paper's fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// An atomic proposition.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// *possibly*: `EF(p)`.
    Ef(Box<Formula>),
    /// *definitely*: `AF(p)`.
    Af(Box<Formula>),
    /// *controllable*: `EG(p)`.
    Eg(Box<Formula>),
    /// *invariant*: `AG(p)`.
    Ag(Box<Formula>),
    /// `E[p U q]`.
    Eu(Box<Formula>, Box<Formula>),
    /// `A[p U q]`.
    Au(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// True iff the formula contains no temporal operator.
    pub fn is_state_formula(&self) -> bool {
        match self {
            Formula::Atom(_) => true,
            Formula::Not(a) => a.is_state_formula(),
            Formula::And(a, b) | Formula::Or(a, b) => a.is_state_formula() && b.is_state_formula(),
            _ => false,
        }
    }

    /// True iff no temporal operator appears underneath another temporal
    /// operator (the paper's non-nested fragment).
    pub fn is_flat(&self) -> bool {
        match self {
            Formula::Atom(_) => true,
            Formula::Not(a) => a.is_flat(),
            Formula::And(a, b) | Formula::Or(a, b) => a.is_flat() && b.is_flat(),
            Formula::Ef(a) | Formula::Af(a) | Formula::Eg(a) | Formula::Ag(a) => {
                a.is_state_formula()
            }
            Formula::Eu(a, b) | Formula::Au(a, b) => a.is_state_formula() && b.is_state_formula(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(a) => write!(f, "!({a})"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Ef(a) => write!(f, "EF({a})"),
            Formula::Af(a) => write!(f, "AF({a})"),
            Formula::Eg(a) => write!(f, "EG({a})"),
            Formula::Ag(a) => write!(f, "AG({a})"),
            Formula::Eu(a, b) => write!(f, "E[{a} U {b}]"),
            Formula::Au(a, b) => write!(f, "A[{a} U {b}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> Formula {
        Formula::Atom(Atom::Const(true))
    }

    #[test]
    fn state_formula_detection() {
        assert!(atom().is_state_formula());
        assert!(Formula::And(Box::new(atom()), Box::new(atom())).is_state_formula());
        assert!(!Formula::Ef(Box::new(atom())).is_state_formula());
    }

    #[test]
    fn flatness_rejects_nesting() {
        let ef = Formula::Ef(Box::new(atom()));
        assert!(ef.is_flat());
        let nested = Formula::Ag(Box::new(ef.clone()));
        assert!(!nested.is_flat());
        // Boolean combinations of temporal operators are flat.
        let combo = Formula::And(
            Box::new(ef.clone()),
            Box::new(Formula::Ag(Box::new(atom()))),
        );
        assert!(combo.is_flat());
        let eu_nested = Formula::Eu(Box::new(atom()), Box::new(ef));
        assert!(!eu_nested.is_flat());
    }

    #[test]
    fn display_round_trips_structure() {
        let f = Formula::Ag(Box::new(Formula::Not(Box::new(Formula::Atom(Atom::Cmp {
            var: "x".into(),
            process: 1,
            op: hb_predicates::CmpOp::Ge,
            lit: 3,
        })))));
        assert_eq!(f.to_string(), "AG(!(x@1 >= 3))");
    }
}
