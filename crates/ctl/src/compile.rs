//! Compilation of non-temporal (state) formulas: variable resolution,
//! negation normal form, and predicate-class inference.

use crate::ast::{Atom, Formula};
use hb_computation::{Computation, Cut, VarId};
use hb_predicates::{
    AndLinear, ChannelsEmpty, CmpOp, Conjunctive, Disjunctive, LocalExpr, Predicate,
};
use std::fmt;

/// Why a state formula failed to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The formula contains a temporal operator.
    NotAStateFormula,
    /// A variable name does not exist in the computation.
    UnknownVariable(String),
    /// An atom references a process the computation does not have.
    ProcessOutOfRange(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotAStateFormula => {
                write!(f, "temporal operator inside a state formula")
            }
            CompileError::UnknownVariable(v) => write!(f, "unknown variable '{v}'"),
            CompileError::ProcessOutOfRange(p) => write!(f, "process {p} out of range"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The inferred class of a compiled state formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateClass {
    /// Conjunction of local predicates (regular ⊂ linear).
    Conjunctive,
    /// Conjunction of local predicates and channel-emptiness (linear).
    LinearWithChannels,
    /// Disjunction of local predicates (observer-independent).
    Disjunctive,
    /// No structure detected.
    Arbitrary,
}

/// A compiled, variable-resolved state predicate.
#[derive(Debug)]
pub enum CompiledPredicate {
    /// A conjunction of local predicates.
    Conjunctive(Conjunctive),
    /// `conjunctive ∧ channels-empty` — still linear.
    LinearWithChannels(AndLinear<Conjunctive, ChannelsEmpty>),
    /// A disjunction of local predicates.
    Disjunctive(Disjunctive),
    /// Anything else, evaluated by direct interpretation.
    Arbitrary(Resolved),
}

impl CompiledPredicate {
    /// The inferred class.
    pub fn class(&self) -> StateClass {
        match self {
            CompiledPredicate::Conjunctive(_) => StateClass::Conjunctive,
            CompiledPredicate::LinearWithChannels(_) => StateClass::LinearWithChannels,
            CompiledPredicate::Disjunctive(_) => StateClass::Disjunctive,
            CompiledPredicate::Arbitrary(_) => StateClass::Arbitrary,
        }
    }
}

impl Predicate for CompiledPredicate {
    fn eval(&self, comp: &Computation, cut: &Cut) -> bool {
        match self {
            CompiledPredicate::Conjunctive(p) => p.eval(comp, cut),
            CompiledPredicate::LinearWithChannels(p) => p.eval(comp, cut),
            CompiledPredicate::Disjunctive(p) => p.eval(comp, cut),
            CompiledPredicate::Arbitrary(r) => r.eval(comp, cut),
        }
    }

    fn describe(&self) -> String {
        match self {
            CompiledPredicate::Conjunctive(p) => p.describe(),
            CompiledPredicate::LinearWithChannels(p) => p.describe(),
            CompiledPredicate::Disjunctive(p) => p.describe(),
            CompiledPredicate::Arbitrary(r) => format!("{r:?}"),
        }
    }
}

/// A variable-resolved state formula in negation normal form, evaluated by
/// interpretation (the "arbitrary" class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolved {
    /// Constant.
    Const(bool),
    /// Local comparison.
    Cmp {
        /// Process whose state is read.
        process: usize,
        /// Resolved variable slot.
        var: VarId,
        /// Operator.
        op: CmpOp,
        /// Literal.
        lit: i64,
    },
    /// Channels all empty.
    ChannelsEmpty,
    /// Channels not all empty (negation of the above stays interpretable).
    ChannelsNonEmpty,
    /// Conjunction.
    And(Box<Resolved>, Box<Resolved>),
    /// Disjunction.
    Or(Box<Resolved>, Box<Resolved>),
}

impl Resolved {
    fn eval(&self, comp: &Computation, cut: &Cut) -> bool {
        match self {
            Resolved::Const(b) => *b,
            Resolved::Cmp {
                process,
                var,
                op,
                lit,
            } => {
                let v = comp.state_in(cut, *process).get(*var);
                match op {
                    CmpOp::Eq => v == *lit,
                    CmpOp::Ne => v != *lit,
                    CmpOp::Lt => v < *lit,
                    CmpOp::Le => v <= *lit,
                    CmpOp::Gt => v > *lit,
                    CmpOp::Ge => v >= *lit,
                }
            }
            Resolved::ChannelsEmpty => comp.in_transit_count(cut) == 0,
            Resolved::ChannelsNonEmpty => comp.in_transit_count(cut) > 0,
            Resolved::And(a, b) => a.eval(comp, cut) && b.eval(comp, cut),
            Resolved::Or(a, b) => a.eval(comp, cut) || b.eval(comp, cut),
        }
    }

    /// The set of processes whose state the formula reads, or `None` if it
    /// also reads channel state.
    fn footprint(&self) -> Option<Vec<usize>> {
        match self {
            Resolved::Const(_) => Some(vec![]),
            Resolved::Cmp { process, .. } => Some(vec![*process]),
            Resolved::ChannelsEmpty | Resolved::ChannelsNonEmpty => None,
            Resolved::And(a, b) | Resolved::Or(a, b) => {
                let mut fa = a.footprint()?;
                for p in b.footprint()? {
                    if !fa.contains(&p) {
                        fa.push(p);
                    }
                }
                Some(fa)
            }
        }
    }

    /// Converts a single-process formula to a [`LocalExpr`].
    fn to_local_expr(&self) -> Option<LocalExpr> {
        match self {
            Resolved::Const(b) => Some(LocalExpr::Const(*b)),
            Resolved::Cmp { var, op, lit, .. } => Some(LocalExpr::Cmp(*var, *op, *lit)),
            Resolved::ChannelsEmpty | Resolved::ChannelsNonEmpty => None,
            Resolved::And(a, b) => Some(a.to_local_expr()?.and(b.to_local_expr()?)),
            Resolved::Or(a, b) => Some(a.to_local_expr()?.or(b.to_local_expr()?)),
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// Resolves variables and pushes negations to the leaves.
fn resolve(comp: &Computation, f: &Formula, neg: bool) -> Result<Resolved, CompileError> {
    match f {
        Formula::Atom(Atom::Const(b)) => Ok(Resolved::Const(*b != neg)),
        Formula::Atom(Atom::Cmp {
            var,
            process,
            op,
            lit,
        }) => {
            if *process >= comp.num_processes() {
                return Err(CompileError::ProcessOutOfRange(*process));
            }
            let var = comp
                .vars()
                .lookup(var)
                .ok_or_else(|| CompileError::UnknownVariable(var.clone()))?;
            Ok(Resolved::Cmp {
                process: *process,
                var,
                op: if neg { flip(*op) } else { *op },
                lit: *lit,
            })
        }
        Formula::Atom(Atom::ChannelsEmpty) => Ok(if neg {
            Resolved::ChannelsNonEmpty
        } else {
            Resolved::ChannelsEmpty
        }),
        Formula::Not(a) => resolve(comp, a, !neg),
        Formula::And(a, b) => {
            let ra = resolve(comp, a, neg)?;
            let rb = resolve(comp, b, neg)?;
            Ok(if neg {
                Resolved::Or(Box::new(ra), Box::new(rb))
            } else {
                Resolved::And(Box::new(ra), Box::new(rb))
            })
        }
        Formula::Or(a, b) => {
            let ra = resolve(comp, a, neg)?;
            let rb = resolve(comp, b, neg)?;
            Ok(if neg {
                Resolved::And(Box::new(ra), Box::new(rb))
            } else {
                Resolved::Or(Box::new(ra), Box::new(rb))
            })
        }
        _ => Err(CompileError::NotAStateFormula),
    }
}

fn conjuncts(r: &Resolved, out: &mut Vec<Resolved>) {
    match r {
        Resolved::And(a, b) => {
            conjuncts(a, out);
            conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

fn disjuncts(r: &Resolved, out: &mut Vec<Resolved>) {
    match r {
        Resolved::Or(a, b) => {
            disjuncts(a, out);
            disjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Compiles a state formula against a computation, inferring the strongest
/// class the evaluator can exploit.
pub fn compile_state_formula(
    comp: &Computation,
    f: &Formula,
) -> Result<CompiledPredicate, CompileError> {
    if !f.is_state_formula() {
        return Err(CompileError::NotAStateFormula);
    }
    let r = resolve(comp, f, false)?;

    // Try conjunctive (optionally with channel-emptiness conjuncts).
    {
        let mut cs = Vec::new();
        conjuncts(&r, &mut cs);
        let mut locals: Vec<(usize, LocalExpr)> = Vec::new();
        let mut channels = false;
        let mut ok = true;
        for c in &cs {
            match c.footprint() {
                Some(procs) if procs.len() <= 1 => {
                    let expr = c.to_local_expr().expect("footprint implies local");
                    let proc = procs.first().copied().unwrap_or(0);
                    locals.push((proc, expr));
                }
                None if matches!(c, Resolved::ChannelsEmpty) => channels = true,
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            let conj = Conjunctive::new(locals);
            return Ok(if channels {
                CompiledPredicate::LinearWithChannels(AndLinear(conj, ChannelsEmpty))
            } else {
                CompiledPredicate::Conjunctive(conj)
            });
        }
    }

    // Try disjunctive.
    {
        let mut ds = Vec::new();
        disjuncts(&r, &mut ds);
        let mut locals: Vec<(usize, LocalExpr)> = Vec::new();
        let mut ok = true;
        for d in &ds {
            match d.footprint() {
                Some(procs) if procs.len() == 1 => {
                    locals.push((procs[0], d.to_local_expr().expect("local")));
                }
                Some(procs) if procs.is_empty() => {
                    // A constant disjunct: true makes the whole thing a
                    // tautology (still disjunctive via an always-true
                    // clause on process 0); false is droppable.
                    if let Resolved::Const(true) = d {
                        locals.push((0, LocalExpr::Const(true)));
                    }
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Ok(CompiledPredicate::Disjunctive(Disjunctive::new(locals)));
        }
    }

    Ok(CompiledPredicate::Arbitrary(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use hb_computation::ComputationBuilder;

    fn comp() -> Computation {
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        let _y = b.var("y");
        let m = b.send(0).set(x, 1).done_send();
        b.receive(1, m).set(x, 2).done();
        b.finish().unwrap()
    }

    fn class_of(comp: &Computation, src: &str) -> StateClass {
        compile_state_formula(comp, &parse(src).unwrap())
            .unwrap()
            .class()
    }

    #[test]
    fn infers_conjunctive() {
        let c = comp();
        assert_eq!(class_of(&c, "x@0 = 1 & x@1 = 2"), StateClass::Conjunctive);
        assert_eq!(class_of(&c, "x@0 = 1"), StateClass::Conjunctive);
        assert_eq!(class_of(&c, "true"), StateClass::Conjunctive);
        // A negated disjunction is a conjunction (De Morgan through NNF).
        assert_eq!(
            class_of(&c, "!(x@0 = 1 | x@1 = 2)"),
            StateClass::Conjunctive
        );
        // Per-process boolean structure stays local.
        assert_eq!(
            class_of(&c, "(x@0 = 1 | y@0 > 3) & x@1 = 2"),
            StateClass::Conjunctive
        );
    }

    #[test]
    fn infers_linear_with_channels() {
        let c = comp();
        assert_eq!(
            class_of(&c, "empty & x@0 > 1"),
            StateClass::LinearWithChannels
        );
        assert_eq!(class_of(&c, "empty"), StateClass::LinearWithChannels);
    }

    #[test]
    fn infers_disjunctive() {
        let c = comp();
        assert_eq!(class_of(&c, "x@0 = 1 | x@1 = 2"), StateClass::Disjunctive);
        assert_eq!(
            class_of(&c, "!(x@0 = 1 & x@1 = 2)"),
            StateClass::Disjunctive
        );
    }

    #[test]
    fn infers_arbitrary() {
        let c = comp();
        // Cross-process disjunct inside a conjunction: neither shape.
        assert_eq!(
            class_of(&c, "(x@0 = 1 | x@1 = 2) & (x@0 = 2 | x@1 = 1)"),
            StateClass::Arbitrary
        );
        // Channels inside a disjunction.
        assert_eq!(class_of(&c, "empty | x@0 = 1"), StateClass::Arbitrary);
    }

    #[test]
    fn compiled_semantics_match_interpretation() {
        let c = comp();
        let sources = [
            "x@0 = 1 & x@1 = 2",
            "x@0 = 1 | x@1 = 2",
            "empty & x@0 >= 1",
            "(x@0 = 1 | x@1 = 2) & (x@0 = 2 | x@1 = 1)",
            "!(x@0 = 1 | !(x@1 = 2))",
        ];
        for src in sources {
            let f = parse(src).unwrap();
            let compiled = compile_state_formula(&c, &f).unwrap();
            let reference = resolve(&c, &f, false).unwrap();
            for a in 0..=1u32 {
                for b in 0..=1u32 {
                    let g = Cut::from_counters(vec![a, b]);
                    if c.is_consistent(&g) {
                        assert_eq!(
                            compiled.eval(&c, &g),
                            reference.eval(&c, &g),
                            "{src} at {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_variable_and_bad_process_are_errors() {
        let c = comp();
        assert_eq!(
            compile_state_formula(&c, &parse("z@0 = 1").unwrap()).unwrap_err(),
            CompileError::UnknownVariable("z".into())
        );
        assert_eq!(
            compile_state_formula(&c, &parse("x@9 = 1").unwrap()).unwrap_err(),
            CompileError::ProcessOutOfRange(9)
        );
        assert_eq!(
            compile_state_formula(&c, &parse("EF(x@0 = 1)").unwrap()).unwrap_err(),
            CompileError::NotAStateFormula
        );
    }
}
