//! The evaluator: dispatches each formula to the fastest applicable
//! detection algorithm.

use crate::ast::Formula;
use crate::compile::{compile_state_formula, CompileError, CompiledPredicate};
use hb_computation::Computation;
use hb_detect::{
    af_conjunctive, af_disjunctive, ag_disjunctive, ag_linear, au_disjunctive, ef_disjunctive,
    ef_linear, eg_conjunctive, eg_disjunctive, eg_linear, eu_conjunctive_linear, ModelChecker,
};
use hb_predicates::Predicate;
use std::fmt;

/// Which detection engine answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// A state formula evaluated at the initial cut.
    InitialEval,
    /// Chase–Garg linear advancement (`EF`, also `AG` via `¬EF(¬p)`).
    ChaseGargEf,
    /// Direct per-state scan for `EF(disjunctive)`.
    DisjunctiveScan,
    /// Algorithm A1 (backward walk) for `EG(linear)`.
    A1,
    /// Algorithm A1 with the incremental conjunctive check.
    A1Incremental,
    /// Algorithm A2 (meet-irreducibles) for `AG(linear)`.
    A2,
    /// Algorithm A3 for `E[p U q]`.
    A3,
    /// The `A[p U q]` identity over A1 + A3.
    AuIdentity,
    /// The token-interval search for `EG(disjunctive)` / `AF(conjunctive)`.
    TokenInterval,
    /// Boolean combination of sub-evaluations.
    Composite,
    /// Explicit-lattice CTL model checking (exponential fallback).
    Baseline,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Engine::InitialEval => "initial-eval",
            Engine::ChaseGargEf => "chase-garg-ef",
            Engine::DisjunctiveScan => "disjunctive-scan",
            Engine::A1 => "A1",
            Engine::A1Incremental => "A1-incremental",
            Engine::A2 => "A2",
            Engine::A3 => "A3",
            Engine::AuIdentity => "AU-identity",
            Engine::TokenInterval => "token-interval",
            Engine::Composite => "composite",
            Engine::Baseline => "baseline-model-checker",
        };
        f.write_str(s)
    }
}

/// Why evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A temporal operator appears under another temporal operator.
    NestedTemporal,
    /// A state subformula failed to compile.
    Compile(CompileError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NestedTemporal => {
                write!(
                    f,
                    "nested temporal operators are outside the paper's fragment"
                )
            }
            EvalError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<CompileError> for EvalError {
    fn from(e: CompileError) -> Self {
        EvalError::Compile(e)
    }
}

/// Evidence explaining a verdict: a witness for an existential truth, or
/// a counterexample refuting a universal claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// A single consistent cut (e.g. the least cut satisfying an `EF`
    /// target, or a cut violating an `AG` invariant).
    Cut(hb_computation::Cut),
    /// A consistent-cut sequence under the `▷` step relation (e.g. an
    /// `EG`/`EU` witness path, or a path avoiding an `AF` target).
    Path(Vec<hb_computation::Cut>),
}

/// The verdict of evaluating a formula at the initial cut, with the
/// engine that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// Whether the formula holds at the initial cut of the lattice.
    pub verdict: bool,
    /// The engine that decided it (the *slowest* engine for composites).
    pub engine: Engine,
    /// Supporting or refuting evidence, when the engine produces one.
    pub evidence: Option<Evidence>,
}

/// Evaluates a flat CTL formula on a computation, choosing the fastest
/// applicable algorithm per operator.
pub fn evaluate(comp: &Computation, f: &Formula) -> Result<Evaluation, EvalError> {
    if !f.is_flat() {
        return Err(EvalError::NestedTemporal);
    }
    eval_rec(comp, f)
}

/// Evaluates an **arbitrarily nested** CTL formula by recursive labeling
/// on the explicit lattice — full CTL, beyond the paper's non-nested
/// fragment, at the baseline's exponential cost. Use for properties like
/// `AG(EF(reset@0 = 1))` ("a reset is always still possible").
///
/// The engine is always [`Engine::Baseline`]; prefer [`evaluate`] for
/// formulas inside the fragment.
pub fn evaluate_nested(comp: &Computation, f: &Formula) -> Result<Evaluation, EvalError> {
    let mc = ModelChecker::new(comp);
    let labels = label_rec(comp, &mc, f)?;
    Ok(Evaluation {
        verdict: labels[mc.lattice().bottom()],
        engine: Engine::Baseline,
        evidence: None,
    })
}

/// Labels every consistent cut with the truth of `f` (bottom-up CTL
/// labeling over the materialized lattice).
fn label_rec(
    comp: &Computation,
    mc: &ModelChecker<'_>,
    f: &Formula,
) -> Result<Vec<bool>, EvalError> {
    Ok(match f {
        Formula::Atom(_) => {
            let p = compile_state_formula(comp, f)?;
            mc.label(&p)
        }
        Formula::Not(a) => {
            let mut v = label_rec(comp, mc, a)?;
            for b in &mut v {
                *b = !*b;
            }
            v
        }
        Formula::And(a, b) => {
            let va = label_rec(comp, mc, a)?;
            let vb = label_rec(comp, mc, b)?;
            va.into_iter().zip(vb).map(|(x, y)| x && y).collect()
        }
        Formula::Or(a, b) => {
            let va = label_rec(comp, mc, a)?;
            let vb = label_rec(comp, mc, b)?;
            va.into_iter().zip(vb).map(|(x, y)| x || y).collect()
        }
        Formula::Ef(a) => mc.ef_labels(&label_rec(comp, mc, a)?),
        Formula::Af(a) => mc.af_labels(&label_rec(comp, mc, a)?),
        Formula::Eg(a) => mc.eg_labels(&label_rec(comp, mc, a)?),
        Formula::Ag(a) => mc.ag_labels(&label_rec(comp, mc, a)?),
        Formula::Eu(a, b) => {
            let va = label_rec(comp, mc, a)?;
            let vb = label_rec(comp, mc, b)?;
            mc.eu_labels(&va, &vb)
        }
        Formula::Au(a, b) => {
            let va = label_rec(comp, mc, a)?;
            let vb = label_rec(comp, mc, b)?;
            mc.au_labels(&va, &vb)
        }
    })
}

fn eval_rec(comp: &Computation, f: &Formula) -> Result<Evaluation, EvalError> {
    match f {
        Formula::Ef(inner) => {
            let p = compile_state_formula(comp, inner)?;
            Ok(match &p {
                CompiledPredicate::Conjunctive(c) => {
                    let r = ef_linear(comp, c);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::ChaseGargEf,
                        evidence: r.witness.map(Evidence::Cut),
                    }
                }
                CompiledPredicate::LinearWithChannels(l) => {
                    let r = ef_linear(comp, l);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::ChaseGargEf,
                        evidence: r.witness.map(Evidence::Cut),
                    }
                }
                CompiledPredicate::Disjunctive(d) => {
                    let r = ef_disjunctive(comp, d);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::DisjunctiveScan,
                        evidence: r.witness.map(Evidence::Cut),
                    }
                }
                CompiledPredicate::Arbitrary(_) => Evaluation {
                    verdict: ModelChecker::new(comp).ef(&p),
                    engine: Engine::Baseline,
                    evidence: None,
                },
            })
        }
        Formula::Af(inner) => {
            let p = compile_state_formula(comp, inner)?;
            Ok(match &p {
                CompiledPredicate::Conjunctive(c) => {
                    let r = af_conjunctive(comp, c);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::TokenInterval,
                        evidence: r.counterexample.map(Evidence::Path),
                    }
                }
                CompiledPredicate::Disjunctive(d) => {
                    let r = af_disjunctive(comp, d);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A1Incremental,
                        evidence: r.counterexample.map(Evidence::Path),
                    }
                }
                _ => Evaluation {
                    verdict: ModelChecker::new(comp).af(&p),
                    engine: Engine::Baseline,
                    evidence: None,
                },
            })
        }
        Formula::Eg(inner) => {
            let p = compile_state_formula(comp, inner)?;
            Ok(match &p {
                CompiledPredicate::Conjunctive(c) => {
                    let r = eg_conjunctive(comp, c);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A1Incremental,
                        evidence: r.witness.map(Evidence::Path),
                    }
                }
                CompiledPredicate::LinearWithChannels(l) => {
                    let r = eg_linear(comp, l);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A1,
                        evidence: r.witness.map(Evidence::Path),
                    }
                }
                CompiledPredicate::Disjunctive(d) => {
                    let r = eg_disjunctive(comp, d);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::TokenInterval,
                        evidence: r.witness.map(Evidence::Path),
                    }
                }
                CompiledPredicate::Arbitrary(_) => {
                    let mc = ModelChecker::new(comp);
                    Evaluation {
                        verdict: mc.eg(&p),
                        engine: Engine::Baseline,
                        evidence: mc.eg_witness(&p).map(Evidence::Path),
                    }
                }
            })
        }
        Formula::Ag(inner) => {
            let p = compile_state_formula(comp, inner)?;
            Ok(match &p {
                CompiledPredicate::Conjunctive(c) => {
                    let r = ag_linear(comp, c);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A2,
                        evidence: r.counterexample.map(Evidence::Cut),
                    }
                }
                CompiledPredicate::LinearWithChannels(l) => {
                    let r = ag_linear(comp, l);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A2,
                        evidence: r.counterexample.map(Evidence::Cut),
                    }
                }
                CompiledPredicate::Disjunctive(d) => {
                    let r = ag_disjunctive(comp, d);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::ChaseGargEf,
                        evidence: r.counterexample.map(Evidence::Cut),
                    }
                }
                CompiledPredicate::Arbitrary(_) => Evaluation {
                    verdict: ModelChecker::new(comp).ag(&p),
                    engine: Engine::Baseline,
                    evidence: None,
                },
            })
        }
        Formula::Eu(pf, qf) => {
            let p = compile_state_formula(comp, pf)?;
            let q = compile_state_formula(comp, qf)?;
            Ok(match (&p, &q) {
                (CompiledPredicate::Conjunctive(pc), CompiledPredicate::Conjunctive(qc)) => {
                    let r = eu_conjunctive_linear(comp, pc, qc);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A3,
                        evidence: r.witness.map(Evidence::Path),
                    }
                }
                (CompiledPredicate::Conjunctive(pc), CompiledPredicate::LinearWithChannels(ql)) => {
                    let r = eu_conjunctive_linear(comp, pc, ql);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::A3,
                        evidence: r.witness.map(Evidence::Path),
                    }
                }
                _ => Evaluation {
                    verdict: ModelChecker::new(comp).eu(&p, &q),
                    engine: Engine::Baseline,
                    evidence: None,
                },
            })
        }
        Formula::Au(pf, qf) => {
            let p = compile_state_formula(comp, pf)?;
            let q = compile_state_formula(comp, qf)?;
            Ok(match (as_disjunctive(&p), as_disjunctive(&q)) {
                (Some(pd), Some(qd)) => {
                    let r = au_disjunctive(comp, &pd, &qd);
                    Evaluation {
                        verdict: r.holds,
                        engine: Engine::AuIdentity,
                        evidence: r.counterexample.map(Evidence::Path),
                    }
                }
                _ => Evaluation {
                    verdict: ModelChecker::new(comp).au(&p, &q),
                    engine: Engine::Baseline,
                    evidence: None,
                },
            })
        }
        Formula::Not(a) => {
            if a.is_state_formula() && f.is_state_formula() {
                return initial_eval(comp, f);
            }
            let ra = eval_rec(comp, a)?;
            Ok(Evaluation {
                verdict: !ra.verdict,
                engine: compose(ra.engine, ra.engine),
                evidence: ra.evidence,
            })
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            if f.is_state_formula() {
                return initial_eval(comp, f);
            }
            let ra = eval_rec(comp, a)?;
            let rb = eval_rec(comp, b)?;
            let verdict = if matches!(f, Formula::And(_, _)) {
                ra.verdict && rb.verdict
            } else {
                ra.verdict || rb.verdict
            };
            Ok(Evaluation {
                verdict,
                engine: compose(ra.engine, rb.engine),
                evidence: None,
            })
        }
        Formula::Atom(_) => initial_eval(comp, f),
    }
}

/// Views a compiled predicate as disjunctive when possible. The compiler
/// prefers the conjunctive shape, so a predicate reading a single process
/// (which is *both* conjunctive and disjunctive) arrives here as
/// `Conjunctive` with at most one clause; re-expose it as a disjunction so
/// the `A[p U q]` identity applies.
fn as_disjunctive(p: &CompiledPredicate) -> Option<hb_predicates::Disjunctive> {
    match p {
        CompiledPredicate::Disjunctive(d) => Some(d.clone()),
        CompiledPredicate::Conjunctive(c) => match c.clauses() {
            [] => Some(hb_predicates::Disjunctive::new(vec![(
                0,
                hb_predicates::LocalExpr::Const(true),
            )])),
            [only] => Some(hb_predicates::Disjunctive::new(vec![(
                only.process,
                only.expr.clone(),
            )])),
            _ => None,
        },
        _ => None,
    }
}

fn initial_eval(comp: &Computation, f: &Formula) -> Result<Evaluation, EvalError> {
    let p = compile_state_formula(comp, f)?;
    Ok(Evaluation {
        verdict: p.eval(comp, &comp.initial_cut()),
        engine: Engine::InitialEval,
        evidence: None,
    })
}

fn compose(a: Engine, b: Engine) -> Engine {
    if a == Engine::Baseline || b == Engine::Baseline {
        Engine::Baseline
    } else {
        Engine::Composite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use hb_computation::ComputationBuilder;

    /// Mutual exclusion trace where the two critical sections are
    /// concurrent (a real violation).
    fn racy_mutex() -> Computation {
        let mut b = ComputationBuilder::new(2);
        let t = b.var("try");
        let c = b.var("crit");
        b.internal(0).set(t, 1).done();
        b.internal(0).set(c, 1).done();
        b.internal(0).set(c, 0).done();
        b.internal(1).set(t, 1).done();
        b.internal(1).set(c, 1).done();
        b.internal(1).set(c, 0).done();
        b.finish().unwrap()
    }

    fn check(comp: &Computation, src: &str) -> Evaluation {
        evaluate(comp, &parse(src).unwrap()).unwrap()
    }

    #[test]
    fn mutex_violation_found_by_chase_garg() {
        let comp = racy_mutex();
        let r = check(&comp, "AG(!(crit@0 = 1 & crit@1 = 1))");
        assert!(!r.verdict);
        assert_eq!(r.engine, Engine::ChaseGargEf);
        let r2 = check(&comp, "EF(crit@0 = 1 & crit@1 = 1)");
        assert!(r2.verdict);
        assert_eq!(r2.engine, Engine::ChaseGargEf);
    }

    #[test]
    fn engines_match_declared_classes() {
        let comp = racy_mutex();
        assert_eq!(check(&comp, "EG(try@0 >= 0)").engine, Engine::A1Incremental);
        assert_eq!(check(&comp, "AG(try@0 >= 0)").engine, Engine::A2);
        assert_eq!(
            check(&comp, "EG(try@0 = 1 | try@1 = 1)").engine,
            Engine::TokenInterval
        );
        assert_eq!(
            check(&comp, "AF(crit@0 = 1 & crit@1 = 1)").engine,
            Engine::TokenInterval
        );
        assert_eq!(
            check(&comp, "E[ crit@0 = 0 U crit@0 = 1 ]").engine,
            Engine::A3
        );
        assert_eq!(
            check(&comp, "A[ try@0 = 1 | try@0 = 0 U crit@0 = 1 ]").engine,
            Engine::AuIdentity
        );
        assert_eq!(check(&comp, "crit@0 = 0").engine, Engine::InitialEval);
    }

    #[test]
    fn arbitrary_formulas_fall_back_to_baseline() {
        let comp = racy_mutex();
        let r = check(
            &comp,
            "EF((crit@0 = 1 | crit@1 = 1) & (try@0 = 1 | try@1 = 1))",
        );
        assert_eq!(r.engine, Engine::Baseline);
        assert!(r.verdict);
    }

    #[test]
    fn verdicts_agree_with_model_checker_across_engines() {
        let comp = racy_mutex();
        let mc = ModelChecker::new(&comp);
        let cases = [
            "EF(crit@0 = 1 & crit@1 = 1)",
            "AF(crit@0 = 1 & crit@1 = 1)",
            "EG(crit@0 = 0 | crit@1 = 0)",
            "AG(try@0 >= 0 & try@1 >= 0)",
            "E[ crit@1 = 0 U crit@0 = 1 ]",
            "A[ crit@0 = 0 | crit@1 = 0 U try@0 = 1 | try@1 = 1 ]",
        ];
        for src in cases {
            let f = parse(src).unwrap();
            let ours = evaluate(&comp, &f).unwrap().verdict;
            let truth = match &f {
                Formula::Ef(p) => mc.ef(&compile_state_formula(&comp, p).unwrap()),
                Formula::Af(p) => mc.af(&compile_state_formula(&comp, p).unwrap()),
                Formula::Eg(p) => mc.eg(&compile_state_formula(&comp, p).unwrap()),
                Formula::Ag(p) => mc.ag(&compile_state_formula(&comp, p).unwrap()),
                Formula::Eu(p, q) => mc.eu(
                    &compile_state_formula(&comp, p).unwrap(),
                    &compile_state_formula(&comp, q).unwrap(),
                ),
                Formula::Au(p, q) => mc.au(
                    &compile_state_formula(&comp, p).unwrap(),
                    &compile_state_formula(&comp, q).unwrap(),
                ),
                _ => unreachable!(),
            };
            assert_eq!(ours, truth, "{src}");
        }
    }

    #[test]
    fn boolean_combinations_of_temporal_operators() {
        let comp = racy_mutex();
        let r = check(&comp, "EF(crit@0 = 1) & AG(try@0 >= 0)");
        assert!(r.verdict);
        assert_eq!(r.engine, Engine::Composite);
        let r2 = check(&comp, "!EF(crit@0 = 5)");
        assert!(r2.verdict);
    }

    #[test]
    fn nested_temporal_rejected() {
        let comp = racy_mutex();
        assert_eq!(
            evaluate(&comp, &parse("AG(EF(crit@0 = 1))").unwrap()).unwrap_err(),
            EvalError::NestedTemporal
        );
    }

    #[test]
    fn compile_errors_propagate() {
        let comp = racy_mutex();
        assert!(matches!(
            evaluate(&comp, &parse("EF(nope@0 = 1)").unwrap()).unwrap_err(),
            EvalError::Compile(CompileError::UnknownVariable(_))
        ));
    }
}
