//! CTL on the happened-before model: syntax, parsing, class inference,
//! and an evaluator that picks the fastest applicable detection algorithm.
//!
//! This crate is the front door of `hbtl`. It implements the CTL fragment
//! of Section 3 of the paper — atomic propositions over global states,
//! `¬`, `∧`, `∨`, and the temporal operators `EF`, `AF`, `EG`, `AG`,
//! `E[· U ·]`, `A[· U ·]` interpreted on the lattice of consistent cuts —
//! plus:
//!
//! * a **parser** for a textual formula language
//!   (`"AG(!(crit@0 = 1 & crit@1 = 1))"`, `"E[ try@0 = 1 U crit@0 = 1 ]"`),
//! * a **compiler** that normalizes non-temporal subformulas and infers
//!   their predicate class (conjunctive, disjunctive, linear, arbitrary),
//! * an **evaluator** ([`evaluate`]) that dispatches each operator to the
//!   best algorithm the inferred class admits (Algorithms A1/A2/A3, the
//!   Chase–Garg walk, the token-interval search, observation sampling)
//!   and falls back to the explicit-lattice model checker otherwise,
//!   reporting which [`Engine`] it used.
//!
//! Nested temporal operators are rejected, matching the paper's fragment
//! ("we do not consider nested temporal predicates in this paper").
//!
//! # Example
//!
//! ```
//! use hb_computation::ComputationBuilder;
//! use hb_ctl::{evaluate, parse, Engine};
//!
//! let mut b = ComputationBuilder::new(2);
//! let crit = b.var("crit");
//! b.internal(0).set(crit, 1).done();
//! b.internal(0).set(crit, 0).done();
//! b.internal(1).set(crit, 1).done();
//! let comp = b.finish().unwrap();
//!
//! // Mutual exclusion can be violated in this trace (the two critical
//! // sections are concurrent), so the invariant is false…
//! let f = parse("AG(!(crit@0 = 1 & crit@1 = 1))").unwrap();
//! let r = evaluate(&comp, &f).unwrap();
//! assert!(!r.verdict);
//! // …and the violation was found without building the lattice:
//! assert_eq!(r.engine, Engine::ChaseGargEf);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
mod eval;
mod parser;

pub use ast::{Atom, Formula};
pub use compile::{compile_state_formula, CompileError, CompiledPredicate, StateClass};
pub use eval::{evaluate, evaluate_nested, Engine, EvalError, Evaluation, Evidence};
pub use parser::{parse, ParseError};
