//! Recursive-descent parser for the CTL formula language.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula   := or
//! or        := and ( '|' and )*
//! and       := unary ( '&' unary )*
//! unary     := '!' unary | temporal | primary
//! temporal  := ('EF'|'AF'|'EG'|'AG') '(' formula ')'
//!            | ('E'|'A') '[' formula 'U' formula ']'
//! primary   := 'true' | 'false' | 'empty' | '(' formula ')' | cmp
//! cmp       := IDENT '@' INT ('='|'!='|'<'|'<='|'>'|'>=') INT
//! ```

use crate::ast::{Atom, Formula};
use hb_predicates::CmpOp;
use std::fmt;

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from its textual form.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let f = p.or_formula()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let bytes = kw.as_bytes();
        if self.input[self.pos..].starts_with(bytes) {
            // Keywords made of letters must not run into an identifier.
            let end = self.pos + bytes.len();
            let boundary = self
                .input
                .get(end)
                .is_none_or(|&c| !(c.is_ascii_alphanumeric() || c == b'_'));
            if boundary || !kw.chars().all(|c| c.is_ascii_alphanumeric()) {
                self.pos = end;
                return true;
            }
        }
        false
    }

    fn or_formula(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and_formula()?;
        while self.peek() == Some(b'|') {
            self.pos += 1;
            let rhs = self.and_formula()?;
            lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_formula(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(b'&') {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Formula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.peek() == Some(b'!') {
            self.pos += 1;
            return Ok(Formula::Not(Box::new(self.unary()?)));
        }
        // Temporal operators — checked before identifiers so that `EF(`
        // is not read as a variable name.
        for (kw, ctor) in [
            ("EF", Formula::Ef as fn(Box<Formula>) -> Formula),
            ("AF", Formula::Af),
            ("EG", Formula::Eg),
            ("AG", Formula::Ag),
        ] {
            let save = self.pos;
            if self.try_keyword(kw) {
                if self.peek() == Some(b'(') {
                    self.pos += 1;
                    let inner = self.or_formula()?;
                    self.eat(b')')?;
                    return Ok(ctor(Box::new(inner)));
                }
                self.pos = save;
            }
        }
        for (kw, is_exists) in [("E", true), ("A", false)] {
            let save = self.pos;
            if self.try_keyword(kw) {
                if self.peek() == Some(b'[') {
                    self.pos += 1;
                    let p = self.or_formula()?;
                    if !self.try_keyword("U") {
                        return Err(self.err("expected 'U' in until formula"));
                    }
                    let q = self.or_formula()?;
                    self.eat(b']')?;
                    return Ok(if is_exists {
                        Formula::Eu(Box::new(p), Box::new(q))
                    } else {
                        Formula::Au(Box::new(p), Box::new(q))
                    });
                }
                self.pos = save;
            }
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let f = self.or_formula()?;
                self.eat(b')')?;
                Ok(f)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                if self.try_keyword("true") {
                    return Ok(Formula::Atom(Atom::Const(true)));
                }
                if self.try_keyword("false") {
                    return Ok(Formula::Atom(Atom::Const(false)));
                }
                if self.try_keyword("empty") {
                    return Ok(Formula::Atom(Atom::ChannelsEmpty));
                }
                self.comparison()
            }
            _ => Err(self.err("expected a formula")),
        }
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let var = self.ident()?;
        self.eat(b'@')?;
        let process = self.integer()? as usize;
        let op = self.cmp_op()?;
        let lit = self.signed_integer()?;
        Ok(Formula::Atom(Atom::Cmp {
            var,
            process,
            op,
            lit,
        }))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn integer(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected integer"));
        }
        String::from_utf8_lossy(&self.input[start..self.pos])
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn signed_integer(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mag = self.integer()? as i64;
        Ok(if negative { -mag } else { mag })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let (op, len) = if rest.starts_with(b"!=") {
            (CmpOp::Ne, 2)
        } else if rest.starts_with(b"<=") {
            (CmpOp::Le, 2)
        } else if rest.starts_with(b">=") {
            (CmpOp::Ge, 2)
        } else if rest.starts_with(b"=") {
            (CmpOp::Eq, 1)
        } else if rest.starts_with(b"<") {
            (CmpOp::Lt, 1)
        } else if rest.starts_with(b">") {
            (CmpOp::Gt, 1)
        } else {
            return Err(self.err("expected comparison operator"));
        };
        self.pos += len;
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_mutex_spec() {
        let f = parse("A[ try@0 = 1 U crit@0 = 1 ]").unwrap();
        assert_eq!(f.to_string(), "A[try@0 = 1 U crit@0 = 1]");
        assert!(f.is_flat());
    }

    #[test]
    fn parses_invariants_and_boolean_structure() {
        let f = parse("AG(!(crit@0 = 1 & crit@1 = 1))").unwrap();
        assert!(matches!(f, Formula::Ag(_)));
        let g = parse("EF(x@0 >= 2 | y@1 < -3)").unwrap();
        assert_eq!(g.to_string(), "EF((x@0 >= 2 | y@1 < -3))");
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = parse("a@0 = 1 | b@1 = 1 & c@2 = 1").unwrap();
        assert!(matches!(f, Formula::Or(_, _)));
    }

    #[test]
    fn parses_fig4_style_until() {
        let f = parse("E[ z@2 < 6 & x@0 < 4 U empty & x@0 > 1 ]").unwrap();
        assert!(matches!(f, Formula::Eu(_, _)));
        assert!(f.is_flat());
    }

    #[test]
    fn keywords_do_not_shadow_identifiers() {
        // A variable literally named "EF" still parses as a comparison.
        let f = parse("EF@0 = 1").unwrap();
        assert!(matches!(
            f,
            Formula::Atom(Atom::Cmp { ref var, .. }) if var == "EF"
        ));
        // And "trueish" is an identifier, not the constant.
        let g = parse("trueish@1 > 0").unwrap();
        assert!(matches!(g, Formula::Atom(Atom::Cmp { .. })));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("AG(").is_err());
        assert!(parse("x@0").is_err());
        assert!(parse("x@0 = 1 extra").is_err());
        assert!(parse("E[x@0 = 1]").is_err()); // missing U
        assert!(parse("x = 1").is_err()); // missing @process
    }

    #[test]
    fn negative_literals_parse() {
        let f = parse("x@0 >= -5").unwrap();
        assert!(matches!(f, Formula::Atom(Atom::Cmp { lit: -5, .. })));
    }

    #[test]
    fn whitespace_is_free() {
        assert_eq!(
            parse("AG(x@0=1)").unwrap(),
            parse("  AG ( x @ 0 = 1 )  ").unwrap()
        );
    }
}
