//! Tests for full (nested) CTL evaluation via recursive lattice labeling —
//! properties beyond the paper's flat fragment.

use hb_computation::ComputationBuilder;
use hb_ctl::{evaluate, evaluate_nested, parse, EvalError};

/// A "resettable" system: P0 can always return x to 0… until its final
/// event locks x at 2 forever.
fn resettable() -> hb_computation::Computation {
    let mut b = ComputationBuilder::new(2);
    let x = b.var("x");
    b.internal(0).set(x, 1).done();
    b.internal(0).set(x, 0).done(); // reset
    b.internal(0).set(x, 1).done();
    b.internal(0).set(x, 0).done(); // reset
    b.internal(1).set(x, 5).done();
    b.finish().unwrap()
}

#[test]
fn ag_ef_reset_is_decidable_nested() {
    let comp = resettable();
    // Flat evaluator rejects nesting…
    let f = parse("AG(EF(x@0 = 0))").unwrap();
    assert_eq!(evaluate(&comp, &f).unwrap_err(), EvalError::NestedTemporal);
    // …the nested evaluator decides it: from every reachable cut, a
    // future cut has x@0 = 0 (the trace ends in a reset state).
    assert!(evaluate_nested(&comp, &f).unwrap().verdict);
}

#[test]
fn nested_and_flat_agree_on_flat_formulas() {
    let comp = resettable();
    for src in [
        "EF(x@0 = 1 & x@1 = 5)",
        "AG(x@0 <= 1)",
        "AF(x@1 = 5)",
        "E[ x@1 = 0 U x@0 = 1 ]",
        "EG(x@0 = 0 | x@0 = 1)",
    ] {
        let f = parse(src).unwrap();
        assert_eq!(
            evaluate(&comp, &f).unwrap().verdict,
            evaluate_nested(&comp, &f).unwrap().verdict,
            "{src}"
        );
    }
}

#[test]
fn deeply_nested_formulas() {
    let comp = resettable();
    // EF(EG(…)) and AG(AF(…)) combinations.
    let f = parse("EF( EG( x@0 >= 0 ) )").unwrap();
    assert!(evaluate_nested(&comp, &f).unwrap().verdict);
    // "From some point on, x@0 stays 0 along some run" — true: take the
    // run where P0 finishes (x=0) before P1 moves.
    let g = parse("EF( EG( x@0 = 0 ) )").unwrap();
    assert!(evaluate_nested(&comp, &g).unwrap().verdict);
    // "Inevitably, x@0 = 1 becomes *impossible*" — true once P0 passes
    // its last x=1 event.
    let h = parse("AF( AG( x@0 != 1 ) )").unwrap();
    assert!(evaluate_nested(&comp, &h).unwrap().verdict);
    // But "x@0 = 1 forever possible" is false.
    let i = parse("AG( EF( x@0 = 1 ) )").unwrap();
    assert!(!evaluate_nested(&comp, &i).unwrap().verdict);
}

#[test]
fn nested_compile_errors_propagate() {
    let comp = resettable();
    let f = parse("AG(EF(zz@0 = 1))").unwrap();
    assert!(matches!(
        evaluate_nested(&comp, &f),
        Err(EvalError::Compile(_))
    ));
}

mod evidence {
    use hb_computation::ComputationBuilder;
    use hb_ctl::{evaluate, parse, Evidence};

    fn comp() -> hb_computation::Computation {
        let mut b = ComputationBuilder::new(2);
        let x = b.var("x");
        b.internal(0).set(x, 1).done();
        b.internal(0).set(x, 2).done();
        b.internal(1).set(x, 1).done();
        b.finish().unwrap()
    }

    #[test]
    fn ef_returns_the_least_witness_cut() {
        let c = comp();
        let r = evaluate(&c, &parse("EF(x@0 = 2 & x@1 = 1)").unwrap()).unwrap();
        assert!(r.verdict);
        match r.evidence {
            Some(Evidence::Cut(cut)) => {
                assert_eq!(cut.counters(), &[2, 1]);
            }
            other => panic!("expected cut evidence, got {other:?}"),
        }
    }

    #[test]
    fn ag_returns_a_counterexample_cut_only_when_false() {
        let c = comp();
        let r = evaluate(&c, &parse("AG(x@0 <= 1)").unwrap()).unwrap();
        assert!(!r.verdict);
        assert!(matches!(r.evidence, Some(Evidence::Cut(_))));
        let ok = evaluate(&c, &parse("AG(x@0 >= 0)").unwrap()).unwrap();
        assert!(ok.verdict);
        assert!(ok.evidence.is_none());
    }

    #[test]
    fn eg_and_eu_return_witness_paths() {
        let c = comp();
        let r = evaluate(&c, &parse("EG(x@0 >= 0)").unwrap()).unwrap();
        match r.evidence {
            Some(Evidence::Path(p)) => {
                assert_eq!(p.len(), c.num_events() + 1);
                assert_eq!(p[0], c.initial_cut());
                assert_eq!(p[p.len() - 1], c.final_cut());
            }
            other => panic!("expected path, got {other:?}"),
        }
        let u = evaluate(&c, &parse("E[ x@1 = 0 U x@0 = 2 ]").unwrap()).unwrap();
        assert!(u.verdict);
        match u.evidence {
            Some(Evidence::Path(p)) => assert_eq!(p.last().unwrap().counters(), &[2, 0]),
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn af_counterexample_is_an_avoiding_path() {
        let c = comp();
        // "x@0 = 2 and x@1 = 1 simultaneously" is avoidable? No: P0 ends
        // at x=2 and P1 ends at x=1, so the final cut always satisfies it
        // — AF holds, no evidence.
        let r = evaluate(&c, &parse("AF(x@0 = 2 & x@1 = 1)").unwrap()).unwrap();
        assert!(r.verdict);
        assert!(r.evidence.is_none());
        // An avoidable target produces a counterexample path.
        let r2 = evaluate(&c, &parse("AF(x@0 = 1 & x@1 = 1)").unwrap()).unwrap();
        assert!(!r2.verdict);
        assert!(matches!(r2.evidence, Some(Evidence::Path(_))));
    }
}
