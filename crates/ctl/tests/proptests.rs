//! Property tests for the CTL front end: parser/printer round trips,
//! compile-eval coherence, and evaluator-vs-baseline agreement on random
//! formulas.

use hb_computation::{Computation, ComputationBuilder, Cut};
use hb_ctl::{compile_state_formula, evaluate, parse, Atom, Formula};
use hb_detect::ModelChecker;
use hb_predicates::{CmpOp, Predicate};
use proptest::prelude::*;

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn atom(n_procs: usize) -> impl Strategy<Value = Formula> {
    prop_oneof![
        (0..n_procs, cmp_op(), -2i64..4).prop_map(|(p, op, lit)| {
            Formula::Atom(Atom::Cmp {
                var: "x".to_string(),
                process: p,
                op,
                lit,
            })
        }),
        Just(Formula::Atom(Atom::ChannelsEmpty)),
        any::<bool>().prop_map(|b| Formula::Atom(Atom::Const(b))),
    ]
}

/// Random *state* formulas (no temporal operators).
fn state_formula(n_procs: usize) -> impl Strategy<Value = Formula> {
    atom(n_procs).prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
        ]
    })
}

/// Random flat temporal formulas.
fn temporal_formula(n_procs: usize) -> impl Strategy<Value = Formula> {
    let sf = || state_formula(n_procs).boxed();
    prop_oneof![
        sf().prop_map(|f| Formula::Ef(Box::new(f))),
        sf().prop_map(|f| Formula::Af(Box::new(f))),
        sf().prop_map(|f| Formula::Eg(Box::new(f))),
        sf().prop_map(|f| Formula::Ag(Box::new(f))),
        (sf(), sf()).prop_map(|(p, q)| Formula::Eu(Box::new(p), Box::new(q))),
        (sf(), sf()).prop_map(|(p, q)| Formula::Au(Box::new(p), Box::new(q))),
    ]
}

fn tiny_computation(seed: u64) -> Computation {
    // Three processes, a couple of events and one message, values 0..3.
    let mut b = ComputationBuilder::new(3);
    let x = b.var("x");
    let s = seed as i64;
    b.internal(0).set(x, s % 3).done();
    let m = b.send(0).set(x, (s + 1) % 3).done_send();
    b.internal(1).set(x, (s + 2) % 3).done();
    b.receive(2, m).set(x, s % 2).done();
    b.internal(2).set(x, (s + 1) % 2).done();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trip(f in temporal_formula(3)) {
        let printed = f.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
        prop_assert_eq!(reparsed, f);
    }

    #[test]
    fn state_display_parse_round_trip(f in state_formula(3)) {
        let printed = f.to_string();
        prop_assert_eq!(parse(&printed).unwrap(), f);
    }

    #[test]
    fn compiled_predicate_matches_direct_interpretation(
        f in state_formula(3),
        seed in 0u64..8,
    ) {
        // Whatever class the compiler infers, evaluation must equal the
        // formula's direct truth-table semantics on every consistent cut.
        let comp = tiny_computation(seed);
        let compiled = compile_state_formula(&comp, &f).unwrap();
        let truth = |g: &Cut| -> bool { interp(&comp, &f, g) };
        for a in 0..=2u32 {
            for b in 0..=1u32 {
                for c in 0..=2u32 {
                    let g = Cut::from_counters(vec![a, b, c]);
                    if comp.is_consistent(&g) {
                        prop_assert_eq!(
                            compiled.eval(&comp, &g),
                            truth(&g),
                            "{} at {}", f, g
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn evaluator_matches_baseline_on_random_formulas(
        f in temporal_formula(3),
        seed in 0u64..6,
    ) {
        let comp = tiny_computation(seed);
        let ours = evaluate(&comp, &f).unwrap();
        let mc = ModelChecker::new(&comp);
        let truth = match &f {
            Formula::Ef(p) => mc.ef(&compile_state_formula(&comp, p).unwrap()),
            Formula::Af(p) => mc.af(&compile_state_formula(&comp, p).unwrap()),
            Formula::Eg(p) => mc.eg(&compile_state_formula(&comp, p).unwrap()),
            Formula::Ag(p) => mc.ag(&compile_state_formula(&comp, p).unwrap()),
            Formula::Eu(p, q) => mc.eu(
                &compile_state_formula(&comp, p).unwrap(),
                &compile_state_formula(&comp, q).unwrap(),
            ),
            Formula::Au(p, q) => mc.au(
                &compile_state_formula(&comp, p).unwrap(),
                &compile_state_formula(&comp, q).unwrap(),
            ),
            _ => unreachable!(),
        };
        prop_assert_eq!(ours.verdict, truth, "{} [engine {}]", f, ours.engine);
        // The nested evaluator must agree on flat formulas too.
        let nested = hb_ctl::evaluate_nested(&comp, &f).unwrap();
        prop_assert_eq!(nested.verdict, truth, "nested {}", f);
    }
}

/// Reference interpreter for state formulas.
fn interp(comp: &Computation, f: &Formula, g: &Cut) -> bool {
    match f {
        Formula::Atom(Atom::Const(b)) => *b,
        Formula::Atom(Atom::ChannelsEmpty) => comp.in_transit_count(g) == 0,
        Formula::Atom(Atom::Cmp {
            var,
            process,
            op,
            lit,
        }) => {
            let v = comp
                .state_in(g, *process)
                .get(comp.vars().lookup(var).unwrap());
            match op {
                CmpOp::Eq => v == *lit,
                CmpOp::Ne => v != *lit,
                CmpOp::Lt => v < *lit,
                CmpOp::Le => v <= *lit,
                CmpOp::Gt => v > *lit,
                CmpOp::Ge => v >= *lit,
            }
        }
        Formula::Not(a) => !interp(comp, a, g),
        Formula::And(a, b) => interp(comp, a, g) && interp(comp, b, g),
        Formula::Or(a, b) => interp(comp, a, g) || interp(comp, b, g),
        _ => unreachable!("state formulas only"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(garbage in "\\PC{0,60}") {
        let _ = parse(&garbage);
    }

    #[test]
    fn parser_never_panics_on_formula_shaped_input(
        src in "(EF|AF|EG|AG|E\\[|A\\[|!|\\(|\\)|\\]|U| |x@[0-9]|=|<|>|[0-9]|&|\\||true|false|empty){0,25}"
    ) {
        let _ = parse(&src);
    }
}
