//! The aggregator side of a distributed session.
//!
//! The aggregator assembles the global slice from the workers' update
//! streams and is the only member of the partition a client ever
//! hears: its session carries the origin name, and the verdict and
//! error frames it produces must be **byte-identical** to a
//! single-backend sliced session fed the same events.
//!
//! It achieves that by being a *replica* of the single-backend
//! pipeline with the per-event payload swapped: where a session
//! ingests `(process, clock, assignments)` into its [`CausalBuffer`]
//! and evaluates clauses on delivery, the aggregator ingests
//! `(process, clock, membership bits)` — the clause truth the owning
//! worker already computed — and on delivery feeds the detectors
//! through the same deferred-skip bookkeeping the slicing filter
//! uses. Hold, duplicate, overflow, and discard behavior all come
//! from the same buffer type, so every error frame and every verdict
//! settle point lands in the same place in the frame stream.
//!
//! Updates arrive tagged with the gateway's per-session sequence
//! numbers and may interleave arbitrarily across workers; a reorder
//! stage processes them in contiguous sequence order, which *is* the
//! single backend's arrival order. Sequences below the watermark are
//! dropped: after a worker failover the gateway re-derives a
//! partition's stream from its journal, and the replayed prefix must
//! be idempotent.

use crate::buffer::{CausalBuffer, OverflowPolicy};
use crate::compile::compile_conjunctive;
use crate::DistError;
use hb_detect::online::{
    restore_monitor, DetectorState, OnlineEfConjunctive, OnlineMonitor, OnlineVerdict,
};
use hb_tracefmt::wire::{SliceUpdateBody, WirePredicate};
use hb_vclock::VectorClock;
use std::collections::BTreeMap;

/// One registered predicate and its detector replica.
struct AggPred {
    id: String,
    monitor: Box<dyn OnlineMonitor + Send>,
    /// Non-member deliveries per process not yet flushed into the
    /// detector as `skip_states` (the slicing filter's `pending`).
    pending: Vec<u64>,
    /// Set once the verdict has been reported.
    emitted: bool,
}

/// One observable consequence of an update, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub enum AggStep {
    /// A predicate's verdict settled.
    Verdict {
        /// The predicate's caller-chosen id.
        predicate: String,
        /// The settled verdict.
        verdict: OnlineVerdict,
    },
    /// The update was refused; the message mirrors the single-backend
    /// session's error frame.
    Error(DistError),
    /// The session closed (a `close` update was processed).
    Closed {
        /// Stranded held updates discarded at close.
        discarded: u64,
    },
}

/// Persistable state of a [`DistAggregator`], for WAL snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatorSnapshot {
    /// The partition width.
    pub k: usize,
    /// Declared variable names, in declaration order.
    pub vars: Vec<String>,
    /// The predicates as registered at open.
    pub predicates: Vec<WirePredicate>,
    /// The replica buffer's delivered frontier.
    pub frontier: Vec<u32>,
    /// Held updates in arrival order: `(process, clock, holds)`.
    pub held: Vec<(usize, Vec<u32>, Vec<usize>)>,
    /// Client-declared stream ends.
    pub finished: Vec<bool>,
    /// Finishes already forwarded to the detectors.
    pub monitor_finished: Vec<bool>,
    /// Updates delivered to the detectors.
    pub delivered: u64,
    /// Per-predicate detector state:
    /// `(id, emitted, state, pending skips)`.
    pub monitors: Vec<(String, bool, DetectorState, Vec<u64>)>,
    /// Next sequence number to process.
    pub next_seq: u64,
    /// Updates waiting for a sequence gap, by sequence number.
    pub reorder: Vec<(u64, SliceUpdateBody)>,
}

/// The aggregator engine: one per distributed session, living on the
/// backend elected by the gateway.
pub struct DistAggregator {
    k: usize,
    vars: Vec<String>,
    predicates: Vec<WirePredicate>,
    buffer: CausalBuffer<Vec<usize>>,
    monitors: Vec<AggPred>,
    finished: Vec<bool>,
    monitor_finished: Vec<bool>,
    delivered: u64,
    next_seq: u64,
    reorder: BTreeMap<u64, SliceUpdateBody>,
    pending_initial: Vec<(String, OnlineVerdict)>,
}

impl DistAggregator {
    /// Opens an aggregator over the origin session's full open
    /// request. Validation (checks, order, messages) matches the
    /// single-backend session, because this refusal is the one the
    /// client sees.
    pub fn open(
        k: usize,
        processes: usize,
        var_names: &[String],
        initial: &[BTreeMap<String, i64>],
        predicates: &[WirePredicate],
        buffer_capacity: usize,
        policy: OverflowPolicy,
    ) -> Result<DistAggregator, DistError> {
        if k == 0 {
            return Err(DistError::BadOpen("zero workers".into()));
        }
        let compiled = compile_conjunctive(processes, var_names, initial, predicates)
            .map_err(DistError::BadOpen)?;
        let monitors = compiled
            .predicates
            .iter()
            .map(|pred| {
                let participating: Vec<bool> = pred.clauses.iter().map(Option::is_some).collect();
                let initially: Vec<bool> = (0..processes)
                    .map(|i| {
                        pred.clauses[i]
                            .as_ref()
                            .is_some_and(|c| c.eval(&compiled.states[i]))
                    })
                    .collect();
                AggPred {
                    id: pred.id.clone(),
                    monitor: Box::new(OnlineEfConjunctive::new(
                        processes,
                        participating,
                        initially,
                    )),
                    pending: vec![0; processes],
                    emitted: false,
                }
            })
            .collect();
        let mut a = DistAggregator {
            k,
            vars: var_names.to_vec(),
            predicates: predicates.to_vec(),
            buffer: CausalBuffer::new(processes, buffer_capacity, policy),
            monitors,
            finished: vec![false; processes],
            monitor_finished: vec![false; processes],
            delivered: 0,
            next_seq: 0,
            reorder: BTreeMap::new(),
            pending_initial: Vec::new(),
        };
        // A predicate can already hold in the initial cut.
        let mut initial_verdicts = Vec::new();
        a.collect_settled(&mut initial_verdicts);
        a.pending_initial = initial_verdicts
            .into_iter()
            .map(|s| match s {
                AggStep::Verdict { predicate, verdict } => (predicate, verdict),
                other => unreachable!("settle emits verdicts only, got {other:?}"),
            })
            .collect();
        Ok(a)
    }

    /// Verdicts that settled at open time (initial-cut detections).
    pub fn take_initial_verdicts(&mut self) -> Vec<(String, OnlineVerdict)> {
        std::mem::take(&mut self.pending_initial)
    }

    /// The partition width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.finished.len()
    }

    /// Updates delivered to the detectors so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Updates held in the replica causal buffer.
    pub fn held(&self) -> usize {
        self.buffer.held()
    }

    /// Updates parked in the sequence-reorder stage.
    pub fn reordering(&self) -> usize {
        self.reorder.len()
    }

    /// Accepts one sequenced update and processes every update that
    /// became contiguous, returning their observable consequences in
    /// order. Sequences already processed (failover replays) are
    /// dropped.
    pub fn update(&mut self, seq: u64, body: SliceUpdateBody) -> Vec<AggStep> {
        if seq < self.next_seq {
            return Vec::new();
        }
        self.reorder.insert(seq, body);
        let mut out = Vec::new();
        while let Some(body) = self.reorder.remove(&self.next_seq) {
            self.next_seq += 1;
            self.step(body, &mut out);
        }
        out
    }

    /// Processes one in-order update.
    fn step(&mut self, body: SliceUpdateBody, out: &mut Vec<AggStep>) {
        match body {
            SliceUpdateBody::Observe {
                p,
                clock,
                holds,
                invalid,
            } => self.observe(p, clock, holds, invalid, out),
            SliceUpdateBody::Finish { p } => {
                if p >= self.finished.len() {
                    out.push(AggStep::Error(DistError::BadEvent(format!(
                        "process {p} out of range"
                    ))));
                    return;
                }
                self.finished[p] = true;
                self.forward_finishes(out);
            }
            SliceUpdateBody::Close => {
                let discarded = self.buffer.discard_held().len() as u64;
                for p in 0..self.monitor_finished.len() {
                    if !self.monitor_finished[p] {
                        self.monitor_finished[p] = true;
                        for pred in &mut self.monitors {
                            if !pred.emitted {
                                pred.monitor.finish_process(p);
                            }
                        }
                    }
                }
                self.collect_settled(out);
                out.push(AggStep::Closed { discarded });
            }
        }
    }

    /// Replays the single-backend event path over a worker's
    /// observation: finish-rejection, then the worker's variable
    /// refusal, then replica ingest; detectors see deliveries through
    /// the deferred-skip bookkeeping.
    fn observe(
        &mut self,
        p: usize,
        clock: Vec<u32>,
        holds: Vec<usize>,
        invalid: Option<String>,
        out: &mut Vec<AggStep>,
    ) {
        if p < self.finished.len() && self.monitor_finished[p] {
            out.push(AggStep::Error(DistError::AlreadyFinished(p)));
            return;
        }
        if let Some(message) = invalid {
            out.push(AggStep::Error(DistError::BadEvent(message)));
            return;
        }
        let clock = VectorClock::from_components(clock);
        let released = match self.buffer.ingest(p, clock, holds) {
            Ok(released) => released,
            Err(e) => {
                out.push(AggStep::Error(DistError::Ingest(e)));
                return;
            }
        };
        for d in released {
            self.delivered += 1;
            for (j, pred) in self.monitors.iter_mut().enumerate() {
                if pred.emitted {
                    continue;
                }
                if d.payload.binary_search(&j).is_ok() {
                    // Flush the deferred skips first, so the detector
                    // numbers this state exactly as an unfiltered run
                    // would.
                    let skipped = std::mem::take(&mut pred.pending[d.process]);
                    if skipped > 0 {
                        pred.monitor.skip_states(d.process, skipped);
                    }
                    pred.monitor.observe(d.process, true, &d.clock);
                } else {
                    pred.pending[d.process] += 1;
                }
            }
        }
        self.collect_settled(out);
        // A delivery may have drained the last held update of an
        // already-finished process.
        self.forward_finishes(out);
    }

    /// Forwards client-declared finishes to the detectors once the
    /// buffer holds nothing more from the process.
    fn forward_finishes(&mut self, out: &mut Vec<AggStep>) {
        for p in 0..self.finished.len() {
            if self.finished[p] && !self.monitor_finished[p] && self.buffer.held_from(p) == 0 {
                self.monitor_finished[p] = true;
                for pred in &mut self.monitors {
                    if !pred.emitted {
                        pred.monitor.finish_process(p);
                    }
                }
            }
        }
        self.collect_settled(out);
    }

    /// Emits newly settled verdicts, once each.
    fn collect_settled(&mut self, out: &mut Vec<AggStep>) {
        for pred in &mut self.monitors {
            if !pred.emitted && pred.monitor.is_settled() {
                pred.emitted = true;
                out.push(AggStep::Verdict {
                    predicate: pred.id.clone(),
                    verdict: pred.monitor.verdict().clone(),
                });
            }
        }
    }

    /// Closes out of band — service shutdown, or a plain `close` frame
    /// reaching the aggregator directly instead of the gateway's
    /// sequenced close update. Updates still parked in the reorder
    /// stage are abandoned (their `observe`s count as discarded events
    /// alongside the buffer's held updates), then the normal close
    /// step runs: stranded holds discarded, detectors finished, final
    /// verdicts settled.
    pub fn close_now(&mut self) -> Vec<AggStep> {
        let abandoned = self
            .reorder
            .values()
            .filter(|b| matches!(b, SliceUpdateBody::Observe { .. }))
            .count() as u64;
        self.reorder.clear();
        let mut out = Vec::new();
        self.step(SliceUpdateBody::Close, &mut out);
        for step in &mut out {
            if let AggStep::Closed { discarded } = step {
                *discarded += abandoned;
            }
        }
        out
    }

    /// The final verdict of every predicate (settled or not), for the
    /// close report.
    pub fn all_verdicts(&self) -> Vec<(String, OnlineVerdict)> {
        self.monitors
            .iter()
            .map(|pred| (pred.id.clone(), pred.monitor.verdict().clone()))
            .collect()
    }

    /// Freezes the aggregator for persistence.
    pub fn snapshot(&self) -> AggregatorSnapshot {
        AggregatorSnapshot {
            k: self.k,
            vars: self.vars.clone(),
            predicates: self.predicates.clone(),
            frontier: self.buffer.frontier().to_vec(),
            held: self
                .buffer
                .held_events()
                .map(|(p, clock, holds)| (p, clock.components().to_vec(), holds.clone()))
                .collect(),
            finished: self.finished.clone(),
            monitor_finished: self.monitor_finished.clone(),
            delivered: self.delivered,
            monitors: self
                .monitors
                .iter()
                .map(|pred| {
                    (
                        pred.id.clone(),
                        pred.emitted,
                        pred.monitor.export_state(),
                        pred.pending.clone(),
                    )
                })
                .collect(),
            next_seq: self.next_seq,
            reorder: self
                .reorder
                .iter()
                .map(|(seq, body)| (*seq, body.clone()))
                .collect(),
        }
    }

    /// Rebuilds an aggregator from a snapshot: re-validates through
    /// the normal open path, then overwrites buffer, detectors, and
    /// sequencing state with the frozen values.
    pub fn restore(
        snap: &AggregatorSnapshot,
        processes: usize,
        buffer_capacity: usize,
        policy: OverflowPolicy,
    ) -> Result<DistAggregator, DistError> {
        let shape =
            |what: &str| DistError::BadOpen(format!("aggregator snapshot: inconsistent {what}"));
        let mut a = DistAggregator::open(
            snap.k,
            processes,
            &snap.vars,
            &[],
            &snap.predicates,
            buffer_capacity,
            policy,
        )?;
        if snap.frontier.len() != processes
            || snap.finished.len() != processes
            || snap.monitor_finished.len() != processes
            || snap.monitors.len() != a.monitors.len()
        {
            return Err(shape("per-process vectors"));
        }
        let mut held = Vec::with_capacity(snap.held.len());
        for (p, clock, holds) in &snap.held {
            if *p >= processes || clock.len() != processes {
                return Err(shape("held update"));
            }
            held.push((
                *p,
                VectorClock::from_components(clock.clone()),
                holds.clone(),
            ));
        }
        a.buffer = CausalBuffer::restore(snap.frontier.clone(), held, buffer_capacity, policy);
        for (pred, (id, emitted, state, pending)) in a.monitors.iter_mut().zip(&snap.monitors) {
            if &pred.id != id {
                return Err(shape("monitor order"));
            }
            if pending.len() != processes {
                return Err(shape("pending skips"));
            }
            pred.monitor = restore_monitor(state);
            pred.emitted = *emitted;
            pred.pending.clone_from(pending);
        }
        a.finished = snap.finished.clone();
        a.monitor_finished = snap.monitor_finished.clone();
        a.delivered = snap.delivered;
        a.next_seq = snap.next_seq;
        a.reorder = snap.reorder.iter().cloned().collect();
        a.pending_initial.clear();
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tracefmt::wire::{WireClause, WireMode};

    fn pred(id: &str, clauses: &[(usize, &str, &str, i64)]) -> WirePredicate {
        WirePredicate {
            id: id.into(),
            mode: WireMode::Conjunctive,
            clauses: clauses
                .iter()
                .map(|&(process, var, op, value)| WireClause {
                    process,
                    var: var.into(),
                    op: op.into(),
                    value,
                })
                .collect(),
            pattern: None,
        }
    }

    fn agg() -> DistAggregator {
        DistAggregator::open(
            2,
            2,
            &["x0".to_string(), "x1".to_string()],
            &[],
            &[pred("ef", &[(0, "x0", "=", 2), (1, "x1", "=", 1)])],
            4096,
            OverflowPolicy::Reject,
        )
        .unwrap()
    }

    fn obs(p: usize, clock: &[u32], holds: &[usize]) -> SliceUpdateBody {
        SliceUpdateBody::Observe {
            p,
            clock: clock.to_vec(),
            holds: holds.to_vec(),
            invalid: None,
        }
    }

    /// The Fig. 2(a) stream as membership bits: detection settles at
    /// the same update a single-backend session would.
    #[test]
    fn detects_from_membership_bits() {
        let mut a = agg();
        assert!(a.update(0, obs(1, &[0, 1], &[0])).is_empty()); // x1=1 holds
        assert!(a.update(1, obs(0, &[1, 0], &[])).is_empty()); // x0=1: no
        let steps = a.update(2, obs(0, &[2, 0], &[0])); // x0=2 → detect
        assert_eq!(steps.len(), 1);
        match &steps[0] {
            AggStep::Verdict { predicate, verdict } => {
                assert_eq!(predicate, "ef");
                match verdict {
                    OnlineVerdict::Detected(cut) => assert_eq!(cut.counters(), &[2, 1]),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    /// Updates arrive with scrambled sequence numbers: nothing happens
    /// until the gap fills, then everything processes in seq order.
    #[test]
    fn reorders_by_sequence_number() {
        let mut a = agg();
        assert!(a.update(2, obs(0, &[2, 0], &[0])).is_empty());
        assert!(a.update(1, obs(0, &[1, 0], &[])).is_empty());
        assert_eq!(a.reordering(), 2);
        let steps = a.update(0, obs(1, &[0, 1], &[0]));
        assert_eq!(a.reordering(), 0);
        assert!(steps.iter().any(|s| matches!(s, AggStep::Verdict { .. })));
        // Stale failover replays are dropped.
        assert!(a.update(1, obs(0, &[1, 0], &[])).is_empty());
        assert_eq!(a.reordering(), 0);
    }

    #[test]
    fn errors_mirror_the_single_backend_session() {
        let mut a = agg();
        a.update(0, obs(0, &[1, 0], &[]));
        // Duplicate clock: re-derived by the replica buffer.
        let steps = a.update(1, obs(0, &[1, 0], &[]));
        assert_eq!(
            steps,
            vec![AggStep::Error(DistError::Ingest(
                crate::IngestError::Duplicate { process: 0, seq: 1 }
            ))]
        );
        // Worker-side variable refusal is forwarded verbatim.
        let steps = a.update(
            2,
            SliceUpdateBody::Observe {
                p: 0,
                clock: vec![2, 0],
                holds: vec![],
                invalid: Some("undeclared variable 'nope'".into()),
            },
        );
        assert_eq!(
            steps,
            vec![AggStep::Error(DistError::BadEvent(
                "undeclared variable 'nope'".into()
            ))]
        );
        // Out-of-range process in an update.
        let steps = a.update(3, obs(9, &[1, 0], &[]));
        assert!(matches!(
            &steps[0],
            AggStep::Error(DistError::Ingest(crate::IngestError::BadProcess { .. }))
        ));
        // Finish, then an event for the finished process.
        a.update(4, SliceUpdateBody::Finish { p: 0 });
        let steps = a.update(5, obs(0, &[2, 0], &[0]));
        assert_eq!(steps, vec![AggStep::Error(DistError::AlreadyFinished(0))]);
        // Finish out of range.
        let steps = a.update(6, SliceUpdateBody::Finish { p: 9 });
        assert_eq!(
            steps,
            vec![AggStep::Error(DistError::BadEvent(
                "process 9 out of range".into()
            ))]
        );
    }

    #[test]
    fn finishes_settle_impossible_and_close_discards() {
        let mut a = agg();
        a.update(0, obs(0, &[1, 0], &[]));
        let steps = a.update(1, SliceUpdateBody::Finish { p: 0 });
        assert!(matches!(
            &steps[0],
            AggStep::Verdict {
                verdict: OnlineVerdict::Impossible,
                ..
            }
        ));

        // A fresh aggregator with a stranded held update: close
        // discards it and settles.
        let mut a = agg();
        a.update(0, obs(1, &[1, 1], &[0])); // held: needs [1,*]
        assert_eq!(a.held(), 1);
        let steps = a.update(1, SliceUpdateBody::Close);
        assert_eq!(
            steps,
            vec![
                AggStep::Verdict {
                    predicate: "ef".into(),
                    verdict: OnlineVerdict::Impossible,
                },
                AggStep::Closed { discarded: 1 },
            ]
        );
    }

    #[test]
    fn initially_true_predicates_settle_at_open() {
        let mut a = DistAggregator::open(
            2,
            2,
            &["x".to_string()],
            &[
                [("x".to_string(), 1)].into_iter().collect(),
                [("x".to_string(), 1)].into_iter().collect(),
            ],
            &[pred("now", &[(0, "x", "=", 1), (1, "x", "=", 1)])],
            4096,
            OverflowPolicy::Reject,
        )
        .unwrap();
        let v = a.take_initial_verdicts();
        assert_eq!(v.len(), 1);
        match &v[0].1 {
            OnlineVerdict::Detected(cut) => assert_eq!(cut.counters(), &[0, 0]),
            other => panic!("{other:?}"),
        }
        assert!(a.take_initial_verdicts().is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips_mid_stream() {
        let mut a = agg();
        a.update(0, obs(1, &[0, 1], &[0]));
        a.update(2, obs(0, &[2, 0], &[0])); // parked in reorder
        a.update(3, obs(1, &[2, 2], &[0])); // will be held once seq 2 lands
        let snap = a.snapshot();
        let mut r = DistAggregator::restore(&snap, 2, 4096, OverflowPolicy::Reject).unwrap();
        assert_eq!(r.snapshot(), snap, "snapshot is stable");
        for x in [&mut a, &mut r] {
            let steps = x.update(1, obs(0, &[1, 0], &[]));
            assert!(steps.iter().any(|s| matches!(s, AggStep::Verdict { .. })));
        }
        assert_eq!(a.snapshot(), r.snapshot());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let a = agg();
        let good = a.snapshot();
        let mut bad = good.clone();
        bad.frontier = vec![0];
        assert!(DistAggregator::restore(&bad, 2, 4096, OverflowPolicy::Reject).is_err());
        let mut bad = good.clone();
        bad.monitors.clear();
        assert!(DistAggregator::restore(&bad, 2, 4096, OverflowPolicy::Reject).is_err());
        let mut bad = good;
        bad.held.push((7, vec![1, 1], vec![]));
        assert!(DistAggregator::restore(&bad, 2, 4096, OverflowPolicy::Reject).is_err());
    }
}
