//! Causal delivery buffering.
//!
//! A monitor receives vector-clock-stamped events over the network, so
//! they can arrive in any order — including orders that violate
//! causality (a receive before the matching send, a process's third
//! event before its second). The on-line detectors, however, require
//! per-process order and benefit from causal order (the conjunctive
//! queue algorithm assumes the observed prefix is a consistent cut).
//!
//! [`CausalBuffer`] restores causal order, the classic vector-clock
//! delivery condition specialized to one sink observing everything: an
//! event `e` of process `p` with clock `V` is **deliverable** when
//!
//! * `V[p] == delivered[p] + 1` — it is `p`'s next event, and
//! * `V[j] <= delivered[j]` for all `j ≠ p` — every event in its causal
//!   past has been delivered.
//!
//! Undeliverable events are **held**; each delivery re-examines held
//! events until a fixpoint, so one arrival can release a cascade. The
//! hold space is bounded: at capacity, ingest either rejects the event
//! (explicit backpressure — the transport should slow the producer) or
//! drops it, per [`OverflowPolicy`]. An event whose clock shows it was
//! already delivered (`V[p] <= delivered[p]`) is a **duplicate** and is
//! rejected outright, making ingestion idempotent under at-least-once
//! transports.

use hb_vclock::VectorClock;
use std::collections::VecDeque;
use std::fmt;

/// What to do with a new undeliverable event when the hold space is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Refuse the event with [`IngestError::Overflow`]; the caller
    /// should retry after draining deliveries (backpressure). Lossless.
    #[default]
    Reject,
    /// Silently drop the newest event and count it. Lossy: a dropped
    /// event's causal successors can never be delivered, so only use
    /// this when monitoring best-effort over an unreliable feed.
    DropNewest,
}

/// Why an event was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The event's clock says it was already delivered.
    Duplicate {
        /// The sending process.
        process: usize,
        /// The event's own component `V[p]`.
        seq: u32,
    },
    /// The hold space is full and the policy is [`OverflowPolicy::Reject`].
    Overflow {
        /// The configured capacity.
        capacity: usize,
    },
    /// The hold space was full and the event was dropped
    /// ([`OverflowPolicy::DropNewest`]).
    Dropped,
    /// `process` is out of range for this buffer.
    BadProcess {
        /// The offending index.
        process: usize,
        /// The buffer's width.
        width: usize,
    },
    /// The clock's width does not match the buffer's.
    BadClockWidth {
        /// The clock's width.
        got: usize,
        /// The buffer's width.
        want: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Duplicate { process, seq } => {
                write!(f, "duplicate event {seq} of process {process}")
            }
            IngestError::Overflow { capacity } => {
                write!(
                    f,
                    "hold buffer full ({capacity} events); retry after draining"
                )
            }
            IngestError::Dropped => write!(f, "hold buffer full; event dropped"),
            IngestError::BadProcess { process, width } => {
                write!(f, "process {process} out of range (width {width})")
            }
            IngestError::BadClockWidth { got, want } => {
                write!(
                    f,
                    "clock width {got} does not match computation width {want}"
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// An event released by the buffer, in causal order.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered<T> {
    /// The producing process.
    pub process: usize,
    /// The event's vector clock.
    pub clock: VectorClock,
    /// The caller's payload.
    pub payload: T,
}

/// A held (not yet deliverable) event.
#[derive(Debug)]
struct Held<T> {
    process: usize,
    clock: VectorClock,
    payload: T,
}

/// A bounded causal-order delivery buffer for one monitored computation.
#[derive(Debug)]
pub struct CausalBuffer<T> {
    /// Per-process count of delivered events.
    delivered: Vec<u32>,
    /// Held events, oldest first (arrival order).
    held: VecDeque<Held<T>>,
    /// Held events per source process (drives finish-process deferral).
    held_by_source: Vec<u32>,
    capacity: usize,
    policy: OverflowPolicy,
    /// Most events ever held at once.
    high_water: usize,
    /// Events dropped by [`OverflowPolicy::DropNewest`].
    dropped: u64,
}

impl<T> CausalBuffer<T> {
    /// A buffer for `n` processes holding at most `capacity` events.
    pub fn new(n: usize, capacity: usize, policy: OverflowPolicy) -> Self {
        CausalBuffer {
            delivered: vec![0; n],
            held: VecDeque::new(),
            held_by_source: vec![0; n],
            capacity,
            policy,
            high_water: 0,
            dropped: 0,
        }
    }

    /// Rebuilds a buffer from persisted state: a delivered frontier and
    /// the held events (arrival order). Used by crash recovery; the
    /// high-water mark restarts at the restored backlog.
    pub fn restore(
        delivered: Vec<u32>,
        held: Vec<(usize, VectorClock, T)>,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Self {
        let mut held_by_source = vec![0u32; delivered.len()];
        let held: VecDeque<Held<T>> = held
            .into_iter()
            .map(|(process, clock, payload)| {
                held_by_source[process] += 1;
                Held {
                    process,
                    clock,
                    payload,
                }
            })
            .collect();
        let high_water = held.len();
        CausalBuffer {
            delivered,
            held,
            held_by_source,
            capacity,
            policy,
            high_water,
            dropped: 0,
        }
    }

    /// The held events in arrival order, for persistence.
    pub fn held_events(&self) -> impl Iterator<Item = (usize, &VectorClock, &T)> {
        self.held.iter().map(|h| (h.process, &h.clock, &h.payload))
    }

    /// The number of processes.
    pub fn width(&self) -> usize {
        self.delivered.len()
    }

    /// Events currently held back.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Events of process `p` currently held back.
    pub fn held_from(&self, p: usize) -> usize {
        self.held_by_source[p] as usize
    }

    /// The most events ever held at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Events dropped under [`OverflowPolicy::DropNewest`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-process delivered counts (the buffer's consistent frontier).
    pub fn frontier(&self) -> &[u32] {
        &self.delivered
    }

    fn deliverable(&self, process: usize, clock: &VectorClock) -> bool {
        clock.get(process) == self.delivered[process] + 1
            && (0..self.width()).all(|j| j == process || clock.get(j) <= self.delivered[j])
    }

    /// Accepts one event; returns everything that became deliverable, in
    /// causal order (the new event itself may or may not be included —
    /// it is held if its past is incomplete).
    pub fn ingest(
        &mut self,
        process: usize,
        clock: VectorClock,
        payload: T,
    ) -> Result<Vec<Delivered<T>>, IngestError> {
        let n = self.width();
        if process >= n {
            return Err(IngestError::BadProcess { process, width: n });
        }
        if clock.width() != n {
            return Err(IngestError::BadClockWidth {
                got: clock.width(),
                want: n,
            });
        }
        let seq = clock.get(process);
        if seq <= self.delivered[process] {
            return Err(IngestError::Duplicate { process, seq });
        }

        if self.deliverable(process, &clock) {
            let mut out = vec![self.deliver(process, clock, payload)];
            self.drain_held(&mut out);
            return Ok(out);
        }

        // Not deliverable yet: hold, within bounds.
        if self.held.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::Reject => {
                    return Err(IngestError::Overflow {
                        capacity: self.capacity,
                    })
                }
                OverflowPolicy::DropNewest => {
                    self.dropped += 1;
                    return Err(IngestError::Dropped);
                }
            }
        }
        self.held.push_back(Held {
            process,
            clock,
            payload,
        });
        self.held_by_source[process] += 1;
        self.high_water = self.high_water.max(self.held.len());
        Ok(Vec::new())
    }

    fn deliver(&mut self, process: usize, clock: VectorClock, payload: T) -> Delivered<T> {
        self.delivered[process] += 1;
        debug_assert_eq!(self.delivered[process], clock.get(process));
        Delivered {
            process,
            clock,
            payload,
        }
    }

    /// Releases held events until no more are deliverable.
    fn drain_held(&mut self, out: &mut Vec<Delivered<T>>) {
        loop {
            let pos = self
                .held
                .iter()
                .position(|h| self.deliverable(h.process, &h.clock));
            match pos {
                Some(i) => {
                    let h = self.held.remove(i).expect("position is in range");
                    self.held_by_source[h.process] -= 1;
                    out.push(self.deliver(h.process, h.clock, h.payload));
                }
                None => return,
            }
        }
    }

    /// Empties the hold space, returning the stranded events (arrival
    /// order). Used at session close: whatever is still held can never
    /// be delivered (its causal past is incomplete for good).
    pub fn discard_held(&mut self) -> Vec<(usize, VectorClock, T)> {
        self.held_by_source.iter_mut().for_each(|c| *c = 0);
        self.held
            .drain(..)
            .map(|h| (h.process, h.clock, h.payload))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clock helper.
    fn vc(components: &[u32]) -> VectorClock {
        VectorClock::from_components(components.to_vec())
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 8, OverflowPolicy::Reject);
        let d = b.ingest(0, vc(&[1, 0]), 10).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].process, d[0].payload), (0, 10));
        let d = b.ingest(1, vc(&[0, 1]), 20).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(b.held(), 0);
    }

    #[test]
    fn out_of_order_delivery_is_held_and_cascades() {
        let mut b: CausalBuffer<&str> = CausalBuffer::new(2, 8, OverflowPolicy::Reject);
        // P1's receive of P0's message (clock [1,1]) arrives first.
        assert!(b.ingest(1, vc(&[1, 1]), "recv").unwrap().is_empty());
        assert_eq!(b.held(), 1);
        assert_eq!(b.held_from(1), 1);
        // P0's send arrives: both deliver, send first.
        let d = b.ingest(0, vc(&[1, 0]), "send").unwrap();
        assert_eq!(
            d.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["send", "recv"]
        );
        assert_eq!(b.held(), 0);
        assert_eq!(b.high_water(), 1);
    }

    #[test]
    fn per_process_gaps_are_held() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(1, 8, OverflowPolicy::Reject);
        assert!(b.ingest(0, vc(&[2]), 2).unwrap().is_empty()); // second first
        let d = b.ingest(0, vc(&[1]), 1).unwrap();
        assert_eq!(d.iter().map(|d| d.payload).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn duplicates_are_rejected_idempotently() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 8, OverflowPolicy::Reject);
        b.ingest(0, vc(&[1, 0]), 1).unwrap();
        assert_eq!(
            b.ingest(0, vc(&[1, 0]), 1).unwrap_err(),
            IngestError::Duplicate { process: 0, seq: 1 }
        );
        // Replays of older events are duplicates too, whatever the rest
        // of the clock says.
        b.ingest(0, vc(&[2, 0]), 2).unwrap();
        assert!(matches!(
            b.ingest(0, vc(&[1, 0]), 1),
            Err(IngestError::Duplicate { .. })
        ));
    }

    #[test]
    fn reject_policy_applies_backpressure_then_recovers() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 2, OverflowPolicy::Reject);
        // Three undeliverable events against capacity 2.
        assert!(b.ingest(1, vc(&[1, 1]), 0).unwrap().is_empty());
        assert!(b.ingest(1, vc(&[1, 2]), 0).unwrap().is_empty());
        assert_eq!(
            b.ingest(1, vc(&[1, 3]), 0).unwrap_err(),
            IngestError::Overflow { capacity: 2 }
        );
        // Delivering the missing predecessor drains the hold space…
        let d = b.ingest(0, vc(&[1, 0]), 9).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(b.held(), 0);
        // …and the rejected event can be retried.
        let d = b.ingest(1, vc(&[1, 3]), 0).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn drop_newest_policy_counts_losses() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 1, OverflowPolicy::DropNewest);
        assert!(b.ingest(1, vc(&[1, 1]), 0).unwrap().is_empty());
        assert_eq!(
            b.ingest(1, vc(&[1, 2]), 0).unwrap_err(),
            IngestError::Dropped
        );
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.held(), 1);
    }

    #[test]
    fn rejects_bad_process_and_clock_width() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 8, OverflowPolicy::Reject);
        assert!(matches!(
            b.ingest(5, vc(&[1, 0]), 0),
            Err(IngestError::BadProcess {
                process: 5,
                width: 2
            })
        ));
        assert!(matches!(
            b.ingest(0, vc(&[1, 0, 0]), 0),
            Err(IngestError::BadClockWidth { got: 3, want: 2 })
        ));
    }

    #[test]
    fn restore_resumes_exactly_where_the_old_buffer_stopped() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 8, OverflowPolicy::Reject);
        b.ingest(0, vc(&[1, 0]), 1).unwrap();
        b.ingest(1, vc(&[1, 2]), 9).unwrap(); // held: needs [*,1]
        let frontier = b.frontier().to_vec();
        let held: Vec<_> = b
            .held_events()
            .map(|(p, c, payload)| (p, c.clone(), *payload))
            .collect();
        let mut r = CausalBuffer::restore(frontier, held, 8, OverflowPolicy::Reject);
        assert_eq!(r.held(), 1);
        assert_eq!(r.held_from(1), 1);
        // The missing event releases the restored held one, in order.
        let d = r.ingest(1, vc(&[1, 1]), 8).unwrap();
        assert_eq!(d.iter().map(|d| d.payload).collect::<Vec<_>>(), vec![8, 9]);
        // And duplicates of already-delivered events stay duplicates.
        assert!(matches!(
            r.ingest(0, vc(&[1, 0]), 1),
            Err(IngestError::Duplicate { .. })
        ));
    }

    #[test]
    fn discard_returns_stranded_events() {
        let mut b: CausalBuffer<u32> = CausalBuffer::new(2, 8, OverflowPolicy::Reject);
        b.ingest(1, vc(&[1, 1]), 7).unwrap();
        b.ingest(1, vc(&[1, 2]), 8).unwrap();
        let stranded = b.discard_held();
        assert_eq!(stranded.len(), 2);
        assert_eq!(b.held(), 0);
        assert_eq!(b.held_from(1), 0);
    }
}
