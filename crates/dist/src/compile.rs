//! Shared open-time validation for the distributed engines.
//!
//! Workers and the aggregator both receive the origin session's full
//! open request (variables, initial states, predicates) and must
//! accept or refuse it exactly as a single-backend session would: the
//! aggregator's refusal is what the client sees. This module
//! reproduces the monitor session's validation sequence — same checks,
//! same order, same messages — for the conjunctive predicates a
//! distributed session supports.

use hb_computation::{LocalState, VarTable};
use hb_predicates::{CmpOp, LocalExpr};
use hb_tracefmt::wire::{WireClause, WireMode, WirePredicate};
use std::collections::BTreeMap;

/// One conjunctive predicate folded to per-process local clauses.
#[derive(Debug)]
pub struct CompiledPredicate {
    /// The predicate's caller-chosen id.
    pub id: String,
    /// Per-process clause (`None` = the process has no clause).
    pub clauses: Vec<Option<LocalExpr>>,
}

/// A validated open request: variable table, initial local states, and
/// compiled predicates.
#[derive(Debug)]
pub struct CompiledSession {
    /// The session's variable namespace.
    pub vars: VarTable,
    /// Initial local state per process.
    pub states: Vec<LocalState>,
    /// The predicates, in registration order.
    pub predicates: Vec<CompiledPredicate>,
}

fn parse_op(op: &str) -> Option<CmpOp> {
    Some(match op {
        "=" | "==" => CmpOp::Eq,
        "!=" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return None,
    })
}

/// Validates and compiles an open request for a distributed session.
///
/// The error string is the message a single-backend session would put
/// in its `bad open: …` reply (without the prefix). Any
/// non-conjunctive predicate is refused: disjunctive and pattern
/// detection carry cross-process state that does not decompose into
/// worker-local clause streams.
pub fn compile_conjunctive(
    processes: usize,
    var_names: &[String],
    initial: &[BTreeMap<String, i64>],
    predicates: &[WirePredicate],
) -> Result<CompiledSession, String> {
    if processes == 0 {
        return Err("zero processes".into());
    }
    if initial.len() > processes {
        return Err(format!(
            "{} initial maps for {processes} processes",
            initial.len()
        ));
    }
    let mut vars = VarTable::new();
    for v in var_names {
        vars.declare(v);
    }
    let mut states = vec![LocalState::zeroed(vars.len()); processes];
    for (i, init) in initial.iter().enumerate() {
        for (vname, &value) in init {
            let id = vars
                .lookup(vname)
                .ok_or_else(|| format!("undeclared variable '{vname}' in initial"))?;
            states[i].set(id, value);
        }
    }

    let mut compiled = Vec::with_capacity(predicates.len());
    let mut seen_ids = std::collections::BTreeSet::new();
    for pred in predicates {
        if !seen_ids.insert(&pred.id) {
            return Err(format!("duplicate predicate id '{}'", pred.id));
        }
        if pred.mode != WireMode::Conjunctive {
            return Err(format!(
                "predicate '{}': distributed sessions support conjunctive predicates only",
                pred.id
            ));
        }
        if pred.pattern.is_some() {
            return Err(format!(
                "predicate '{}': a pattern body requires mode 'pattern'",
                pred.id
            ));
        }
        if pred.clauses.is_empty() {
            return Err(format!("predicate '{}' has no clauses", pred.id));
        }
        let mut clauses: Vec<Option<LocalExpr>> = vec![None; processes];
        for WireClause {
            process,
            var,
            op,
            value,
        } in &pred.clauses
        {
            if *process >= processes {
                return Err(format!(
                    "predicate '{}': process {process} out of range",
                    pred.id
                ));
            }
            let id = vars
                .lookup(var)
                .ok_or_else(|| format!("predicate '{}': undeclared variable '{var}'", pred.id))?;
            let cmp = parse_op(op)
                .ok_or_else(|| format!("predicate '{}': unknown operator '{op}'", pred.id))?;
            let expr = LocalExpr::Cmp(id, cmp, *value);
            clauses[*process] = Some(match clauses[*process].take() {
                None => expr,
                Some(prev) => prev.and(expr),
            });
        }
        compiled.push(CompiledPredicate {
            id: pred.id.clone(),
            clauses,
        });
    }
    Ok(CompiledSession {
        vars,
        states,
        predicates: compiled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tracefmt::wire::{WireAtom, WirePattern};

    fn pred(id: &str, clauses: &[(usize, &str, &str, i64)]) -> WirePredicate {
        WirePredicate {
            id: id.into(),
            mode: WireMode::Conjunctive,
            clauses: clauses
                .iter()
                .map(|&(process, var, op, value)| WireClause {
                    process,
                    var: var.into(),
                    op: op.into(),
                    value,
                })
                .collect(),
            pattern: None,
        }
    }

    #[test]
    fn compiles_and_folds_clauses() {
        let c = compile_conjunctive(
            2,
            &["x".to_string()],
            &[],
            &[pred("band", &[(0, "x", ">=", 1), (0, "x", "<=", 3)])],
        )
        .unwrap();
        let p = &c.predicates[0];
        assert!(p.clauses[0].is_some());
        assert!(p.clauses[1].is_none());
        let mut s = LocalState::zeroed(1);
        s.set(c.vars.lookup("x").unwrap(), 2);
        assert!(p.clauses[0].as_ref().unwrap().eval(&s));
        s.set(c.vars.lookup("x").unwrap(), 9);
        assert!(!p.clauses[0].as_ref().unwrap().eval(&s));
    }

    #[test]
    fn error_messages_match_the_single_backend_session() {
        let x = ["x".to_string()];
        let e = |preds: &[WirePredicate]| compile_conjunctive(2, &x, &[], preds).unwrap_err();
        assert_eq!(
            compile_conjunctive(0, &x, &[], &[]).unwrap_err(),
            "zero processes"
        );
        assert_eq!(
            compile_conjunctive(1, &x, &[BTreeMap::new(), BTreeMap::new()], &[]).unwrap_err(),
            "2 initial maps for 1 processes"
        );
        assert_eq!(
            e(&[pred("p", &[(9, "x", "=", 1)])]),
            "predicate 'p': process 9 out of range"
        );
        assert_eq!(
            e(&[pred("p", &[(0, "y", "=", 1)])]),
            "predicate 'p': undeclared variable 'y'"
        );
        assert_eq!(
            e(&[pred("p", &[(0, "x", "~", 1)])]),
            "predicate 'p': unknown operator '~'"
        );
        assert_eq!(e(&[pred("p", &[])]), "predicate 'p' has no clauses");
        assert_eq!(
            e(&[
                pred("p", &[(0, "x", "=", 1)]),
                pred("p", &[(1, "x", "=", 1)])
            ]),
            "duplicate predicate id 'p'"
        );
    }

    #[test]
    fn non_conjunctive_predicates_are_refused() {
        let x = ["x".to_string()];
        let mut disj = pred("d", &[(0, "x", "=", 1)]);
        disj.mode = WireMode::Disjunctive;
        assert_eq!(
            compile_conjunctive(2, &x, &[], &[disj]).unwrap_err(),
            "predicate 'd': distributed sessions support conjunctive predicates only"
        );
        let pat = WirePredicate {
            id: "pat".into(),
            mode: WireMode::Pattern,
            clauses: Vec::new(),
            pattern: Some(WirePattern {
                atoms: vec![WireAtom {
                    process: None,
                    var: "x".into(),
                    op: "=".into(),
                    value: 1,
                    causal: false,
                }],
            }),
        };
        assert_eq!(
            compile_conjunctive(2, &x, &[], &[pat]).unwrap_err(),
            "predicate 'pat': distributed sessions support conjunctive predicates only"
        );
    }
}
