//! # hb-dist
//!
//! Distributed online slice detection: the engines that let one
//! monitored computation be detected by **several** monitor backends
//! cooperating, in the style of Chauhan–Garg distributed slicing.
//!
//! A distributed session partitions the computation's processes across
//! `k` *workers* — process `p` belongs to worker [`owner`]`(p, k)` —
//! plus one *aggregator*. Each worker runs the slicing membership
//! filter of `hb-slice` over its own processes only: it applies events
//! in per-process position order, evaluates the registered conjunctive
//! predicates' local clauses on the post-state, and emits one compact
//! [`SliceUpdateBody`] per event carrying the slice-membership bits
//! (which predicates' clauses hold). The aggregator consumes updates
//! in gateway-assigned sequence order and replays, over those
//! payloads, exactly the causal-delivery/detection pipeline a single
//! backend would run — same [`CausalBuffer`], same deferred-skip
//! bookkeeping, same verdict settle points — so the frames a client
//! sees are **byte-identical** to a single-backend sliced session.
//!
//! The split mirrors the paper's observation that conjunctive
//! predicates decompose into independent local clauses: clause truth
//! is computed where the state lives (the worker owning the process),
//! and only booleans cross the monitor-to-monitor wire. See
//! `DESIGN.md` §15 for the protocol, the failover semantics, and the
//! deliberate divergences from Chauhan–Garg.
//!
//! Three invariants carry the equivalence proof:
//!
//! 1. **One update per sequence number.** Every gateway-stamped frame
//!    eventually produces exactly one update (a held process-order gap
//!    is flushed on drain or at close), so the aggregator's contiguous
//!    sequence processing never deadlocks.
//! 2. **Position-order evaluation.** A worker applies events of one
//!    process strictly in vector-clock position order, which is the
//!    order any causal delivery presents them; local clause truth
//!    depends on nothing else.
//! 3. **Replica classification.** The aggregator never trusts a
//!    worker's refusal beyond variable validation: duplicates, range
//!    errors, and clock-width errors are re-derived from its own
//!    [`CausalBuffer`], reproducing the single-backend error frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod buffer;
mod compile;
pub mod worker;

pub use aggregator::{AggStep, AggregatorSnapshot, DistAggregator};
pub use buffer::{CausalBuffer, Delivered, IngestError, OverflowPolicy};
pub use compile::{compile_conjunctive, CompiledPredicate, CompiledSession};
pub use worker::{DistWorker, WorkerSnapshot};

use hb_tracefmt::wire::SliceUpdateBody;
use std::fmt;

/// The worker owning process `p` in a `k`-way partition.
///
/// Round-robin by process id: cheap, deterministic, and independent of
/// event content, so the gateway can route without any session state
/// beyond `k`. (Chauhan–Garg shard by slice responsibility instead;
/// see DESIGN.md §15 for why we diverge.)
pub fn owner(p: usize, k: usize) -> usize {
    p % k
}

/// The decorated session name a worker opens on its backend.
///
/// Worker sessions live in the same per-backend namespace as plain
/// sessions; the `#w<i>` suffix keeps them from colliding with the
/// origin session (which names the aggregator's session) while staying
/// readable in stats output.
pub fn worker_session(origin: &str, worker: usize) -> String {
    format!("{origin}#w{worker}")
}

/// Why a distributed engine refused an open or an update.
///
/// Mirrors the monitor's session error taxonomy — variant for variant
/// and message for message — because aggregator errors are forwarded
/// to clients verbatim and must be indistinguishable from a
/// single-backend session's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// The open request was malformed (bad predicate, var, process…).
    BadOpen(String),
    /// An update referenced something undeclared or out of range.
    BadEvent(String),
    /// An event arrived for a process already declared finished.
    AlreadyFinished(usize),
    /// The replica causal buffer refused the event.
    Ingest(IngestError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::BadOpen(m) => write!(f, "bad open: {m}"),
            DistError::BadEvent(m) => write!(f, "bad event: {m}"),
            DistError::AlreadyFinished(p) => {
                write!(f, "bad event: process {p} already finished")
            }
            DistError::Ingest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<IngestError> for DistError {
    fn from(e: IngestError) -> Self {
        DistError::Ingest(e)
    }
}

/// A `(sequence, update)` pair emitted by a worker, ready to be put on
/// the wire as a `slice-update` frame.
pub type SeqUpdate = (u64, SliceUpdateBody);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_partitions_round_robin() {
        assert_eq!(owner(0, 3), 0);
        assert_eq!(owner(4, 3), 1);
        assert_eq!(owner(5, 1), 0);
    }

    #[test]
    fn worker_sessions_are_decorated() {
        assert_eq!(worker_session("app", 2), "app#w2");
    }

    #[test]
    fn dist_errors_format_like_session_errors() {
        assert_eq!(
            DistError::BadOpen("zero processes".into()).to_string(),
            "bad open: zero processes"
        );
        assert_eq!(
            DistError::AlreadyFinished(3).to_string(),
            "bad event: process 3 already finished"
        );
        assert_eq!(
            DistError::from(IngestError::Duplicate { process: 1, seq: 2 }).to_string(),
            "duplicate event 2 of process 1"
        );
    }
}
