//! The worker side of a distributed session.
//!
//! A worker owns the processes `p` with [`crate::owner`]`(p, k) == i`
//! and turns each of their events into one compact slice update for
//! the aggregator. It is a stripped-down replica of the single-backend
//! session's *ingest filter* stage: full-width local states, the
//! slicing membership logic of `hb-slice` (per-predicate variable
//! footprints and cached clause truth), but **no causal buffer and no
//! detectors** — clause truth of process `p`'s events depends only on
//! `p`'s own state sequence, so per-process position order suffices
//! and cross-process causality is left entirely to the aggregator.
//!
//! Three refusal paths mirror the single-backend session's precedence
//! (finish-rejection lives at the aggregator, which owns finishes):
//!
//! 1. An undeclared variable refuses the event *before* any state
//!    change; the update carries the exact message in `invalid`.
//! 2. A process/clock-width mismatch emits an empty-holds update and
//!    leaves the event to the aggregator's replica buffer, which
//!    reproduces the single-backend error.
//! 3. A position replay (`clock[p] <= applied count`) emits an
//!    empty-holds update: the aggregator classifies it — duplicate if
//!    the original was delivered, stranded-held otherwise — and the
//!    payload is provably never used (the original's update, scanned
//!    first in arrival order, wins delivery).
//!
//! Events ahead of their position (`clock[p] > count + 1`) are held
//! and drained when the gap fills; whatever is still held at close is
//! flushed with empty holds — at that point every held event sits at
//! least two positions past anything the aggregator can deliver, so
//! the payload is again unreachable. This is what keeps the
//! one-update-per-sequence invariant: every sequence number the
//! gateway routed here is answered by exactly one update by the time
//! the worker closes.

use crate::compile::{compile_conjunctive, CompiledPredicate};
use hb_computation::{LocalState, VarId, VarTable};
use hb_predicates::LocalExpr;
use hb_slice::clause_vars;
use hb_tracefmt::wire::{SliceUpdateBody, WirePredicate};
use hb_vclock::VectorClock;
use std::collections::BTreeMap;

/// One registered predicate's membership-filter state.
struct WorkerPred {
    id: String,
    /// Per-process local clause (`None` = non-participating).
    clauses: Vec<Option<LocalExpr>>,
    /// Per-process clause variable footprint, `None` = non-participating.
    deps: Vec<Option<Vec<VarId>>>,
    /// Cached clause truth of each process's current state.
    holds: Vec<bool>,
    /// Events applied while this predicate was registered.
    events_in: u64,
    /// Applied events that were not slice members.
    events_filtered: u64,
    /// Counter watermark already reported through
    /// [`DistWorker::take_slice_stats`].
    reported: (u64, u64),
}

/// An event ahead of its per-process position, waiting for the gap.
struct HeldEvent {
    seq: u64,
    p: usize,
    clock: VectorClock,
    set: BTreeMap<String, i64>,
}

/// Persistable state of a [`DistWorker`], for WAL snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// This worker's index in the partition.
    pub worker: usize,
    /// The partition width.
    pub k: usize,
    /// Declared variable names, in declaration order.
    pub vars: Vec<String>,
    /// The predicates as registered at open.
    pub predicates: Vec<WirePredicate>,
    /// Local state values per process.
    pub states: Vec<Vec<i64>>,
    /// Applied events per process.
    pub counts: Vec<u32>,
    /// Cached clause truth per predicate (registration order), per
    /// process.
    pub holds: Vec<Vec<bool>>,
    /// Filter counters per predicate: `(events_in, events_filtered)`.
    pub filtered: Vec<(u64, u64)>,
    /// Held (ahead-of-position) events in arrival order.
    pub held: Vec<HeldRecord>,
}

/// A held event as persisted in snapshots: `(seq, p, clock, set)`.
pub type HeldRecord = (u64, usize, Vec<u32>, BTreeMap<String, i64>);

/// The worker engine: one per `(origin session, worker index)`.
pub struct DistWorker {
    worker: usize,
    k: usize,
    vars: VarTable,
    predicates: Vec<WirePredicate>,
    states: Vec<LocalState>,
    /// Events applied per process (per-process position frontier).
    counts: Vec<u32>,
    preds: Vec<WorkerPred>,
    held: Vec<HeldEvent>,
}

impl DistWorker {
    /// Opens a worker over the origin session's full open request.
    ///
    /// Validation is byte-identical to the aggregator's (and the
    /// single-backend session's), so a malformed open is refused by
    /// every member of the partition, not just the one the client
    /// hears from.
    pub fn open(
        worker: usize,
        k: usize,
        processes: usize,
        var_names: &[String],
        initial: &[BTreeMap<String, i64>],
        predicates: &[WirePredicate],
    ) -> Result<DistWorker, String> {
        if k == 0 || worker >= k {
            return Err(format!("worker {worker} out of range for k={k}"));
        }
        let compiled = compile_conjunctive(processes, var_names, initial, predicates)?;
        let preds = compiled
            .predicates
            .iter()
            .map(|CompiledPredicate { id, clauses }| WorkerPred {
                id: id.clone(),
                deps: clauses
                    .iter()
                    .map(|c| c.as_ref().map(clause_vars))
                    .collect(),
                holds: clauses
                    .iter()
                    .zip(&compiled.states)
                    .map(|(c, s)| c.as_ref().is_none_or(|e| e.eval(s)))
                    .collect(),
                clauses: clauses.clone(),
                events_in: 0,
                events_filtered: 0,
                reported: (0, 0),
            })
            .collect();
        Ok(DistWorker {
            worker,
            k,
            vars: compiled.vars,
            predicates: predicates.to_vec(),
            states: compiled.states,
            counts: vec![0; processes],
            preds,
            held: Vec::new(),
        })
    }

    /// The number of processes in the computation (full width).
    pub fn processes(&self) -> usize {
        self.states.len()
    }

    /// Events currently held for a per-process position gap.
    pub fn held(&self) -> usize {
        self.held.len()
    }

    /// Ingests one routed event and returns the updates to ship, in
    /// emission order. Always at least one update for `seq` unless the
    /// event was held; held sequences are answered on drain or close.
    pub fn observe(
        &mut self,
        seq: u64,
        p: usize,
        clock: VectorClock,
        set: &BTreeMap<String, i64>,
    ) -> Vec<(u64, SliceUpdateBody)> {
        // Variable validation first, mirroring the single-backend
        // session (which resolves variables before ingesting).
        for vname in set.keys() {
            if self.vars.lookup(vname).is_none() {
                return vec![(
                    seq,
                    refusal(p, &clock, Some(format!("undeclared variable '{vname}'"))),
                )];
            }
        }
        let n = self.states.len();
        if p >= n || clock.width() != n {
            // The aggregator's replica buffer re-derives the exact
            // BadProcess/BadClockWidth refusal from the same fields.
            return vec![(seq, refusal(p, &clock, None))];
        }
        let pos = clock.get(p);
        if pos <= self.counts[p] {
            // Position replay: the original update (earlier sequence)
            // already carries the real membership bits.
            return vec![(seq, refusal(p, &clock, None))];
        }
        let mut out = Vec::new();
        if pos == self.counts[p] + 1 {
            let update = self.apply(p, &clock, set);
            out.push((seq, update));
            self.drain(&mut out);
        } else {
            self.held.push(HeldEvent {
                seq,
                p,
                clock,
                set: set.clone(),
            });
        }
        out
    }

    /// Applies the next-in-position event of `p` and computes its
    /// slice-membership bits.
    fn apply(
        &mut self,
        p: usize,
        clock: &VectorClock,
        set: &BTreeMap<String, i64>,
    ) -> SliceUpdateBody {
        self.counts[p] += 1;
        let touched: Vec<VarId> = set
            .keys()
            .map(|v| self.vars.lookup(v).expect("validated above"))
            .collect();
        for (&var, (_, &value)) in touched.iter().zip(set) {
            self.states[p].set(var, value);
        }
        let state = &self.states[p];
        let mut holds = Vec::new();
        for (j, pred) in self.preds.iter_mut().enumerate() {
            pred.events_in += 1;
            let Some(dep) = &pred.deps[p] else {
                pred.events_filtered += 1;
                continue;
            };
            if touched.iter().any(|v| dep.contains(v)) {
                pred.holds[p] = pred.clauses[p]
                    .as_ref()
                    .expect("participating process has a clause")
                    .eval(state);
            }
            if pred.holds[p] {
                holds.push(j);
            } else {
                pred.events_filtered += 1;
            }
        }
        SliceUpdateBody::Observe {
            p,
            clock: clock.components().to_vec(),
            holds,
            invalid: None,
        }
    }

    /// Releases held events until no more are at or behind the
    /// position frontier. Scanning in arrival order matches the causal
    /// buffer's drain, so replay copies are classified after their
    /// originals.
    fn drain(&mut self, out: &mut Vec<(u64, SliceUpdateBody)>) {
        loop {
            let idx = self
                .held
                .iter()
                .position(|h| h.clock.get(h.p) <= self.counts[h.p] + 1);
            let Some(idx) = idx else { return };
            let h = self.held.remove(idx);
            if h.clock.get(h.p) == self.counts[h.p] + 1 {
                let update = self.apply(h.p, &h.clock, &h.set);
                out.push((h.seq, update));
            } else {
                out.push((h.seq, refusal(h.p, &h.clock, None)));
            }
        }
    }

    /// Flushes every held event (arrival order) with empty membership:
    /// their per-process predecessors never arrived, so the aggregator
    /// can never deliver them — it will strand and discard them
    /// exactly as a single backend would.
    pub fn close(&mut self) -> Vec<(u64, SliceUpdateBody)> {
        self.held
            .drain(..)
            .map(|h| (h.seq, refusal(h.p, &h.clock, None)))
            .collect()
    }

    /// Per-predicate filter counters not yet reported:
    /// `(predicate id, Δevents_in, Δevents_filtered)`. Watermarked like
    /// the single-backend session's slice stats.
    pub fn take_slice_stats(&mut self) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        for pred in &mut self.preds {
            let delta_in = pred.events_in - pred.reported.0;
            let delta_filtered = pred.events_filtered - pred.reported.1;
            if delta_in > 0 || delta_filtered > 0 {
                pred.reported = (pred.events_in, pred.events_filtered);
                out.push((pred.id.clone(), delta_in, delta_filtered));
            }
        }
        out
    }

    /// Freezes the worker for persistence.
    pub fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            worker: self.worker,
            k: self.k,
            vars: self.vars.iter().map(|(_, n)| n.to_string()).collect(),
            predicates: self.predicates.clone(),
            states: self.states.iter().map(|s| s.values().to_vec()).collect(),
            counts: self.counts.clone(),
            holds: self.preds.iter().map(|p| p.holds.clone()).collect(),
            filtered: self
                .preds
                .iter()
                .map(|p| (p.events_in, p.events_filtered))
                .collect(),
            held: self
                .held
                .iter()
                .map(|h| (h.seq, h.p, h.clock.components().to_vec(), h.set.clone()))
                .collect(),
        }
    }

    /// Rebuilds a worker from a snapshot. The report watermark
    /// restarts at zero, like the session's slice stats: the first
    /// flush resyncs fresh metrics with the recovered totals.
    pub fn restore(snap: &WorkerSnapshot, processes: usize) -> Result<DistWorker, String> {
        let shape = |what: &str| format!("worker snapshot: inconsistent {what}");
        let mut w = DistWorker::open(
            snap.worker,
            snap.k,
            processes,
            &snap.vars,
            &[],
            &snap.predicates,
        )?;
        if snap.states.len() != processes
            || snap.counts.len() != processes
            || snap.holds.len() != w.preds.len()
            || snap.filtered.len() != w.preds.len()
        {
            return Err(shape("per-process vectors"));
        }
        w.states = snap
            .states
            .iter()
            .map(|v| LocalState::from_values(v.clone()))
            .collect();
        w.counts = snap.counts.clone();
        for ((pred, holds), &(events_in, events_filtered)) in
            w.preds.iter_mut().zip(&snap.holds).zip(&snap.filtered)
        {
            if holds.len() != processes {
                return Err(shape("holds cache"));
            }
            pred.holds.clone_from(holds);
            pred.events_in = events_in;
            pred.events_filtered = events_filtered;
        }
        for (seq, p, clock, set) in &snap.held {
            if *p >= processes || clock.len() != processes {
                return Err(shape("held event"));
            }
            for vname in set.keys() {
                if w.vars.lookup(vname).is_none() {
                    return Err(shape("held variable"));
                }
            }
            w.held.push(HeldEvent {
                seq: *seq,
                p: *p,
                clock: VectorClock::from_components(clock.clone()),
                set: set.clone(),
            });
        }
        Ok(w)
    }
}

/// An empty-membership update: either an explicit refusal (`invalid`)
/// or a payload the aggregator is guaranteed to classify away.
fn refusal(p: usize, clock: &VectorClock, invalid: Option<String>) -> SliceUpdateBody {
    SliceUpdateBody::Observe {
        p,
        clock: clock.components().to_vec(),
        holds: Vec::new(),
        invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tracefmt::wire::{WireClause, WireMode};

    fn vc(c: &[u32]) -> VectorClock {
        VectorClock::from_components(c.to_vec())
    }

    fn set(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    fn pred(id: &str, clauses: &[(usize, &str, &str, i64)]) -> WirePredicate {
        WirePredicate {
            id: id.into(),
            mode: WireMode::Conjunctive,
            clauses: clauses
                .iter()
                .map(|&(process, var, op, value)| WireClause {
                    process,
                    var: var.into(),
                    op: op.into(),
                    value,
                })
                .collect(),
            pattern: None,
        }
    }

    /// Two processes, worker 0 of k=2 owns process 0; predicate wants
    /// `x0=2 ∧ x1=1`.
    fn worker() -> DistWorker {
        DistWorker::open(
            0,
            2,
            2,
            &["x0".to_string(), "x1".to_string()],
            &[],
            &[pred("ef", &[(0, "x0", "=", 2), (1, "x1", "=", 1)])],
        )
        .unwrap()
    }

    fn holds_of(u: &SliceUpdateBody) -> &[usize] {
        match u {
            SliceUpdateBody::Observe { holds, .. } => holds,
            other => panic!("expected observe, got {other:?}"),
        }
    }

    #[test]
    fn membership_follows_the_local_clause() {
        let mut w = worker();
        let u = w.observe(0, 0, vc(&[1, 0]), &set(&[("x0", 1)]));
        assert_eq!(u.len(), 1);
        assert_eq!(holds_of(&u[0].1), &[] as &[usize]); // x0=1: clause false
        let u = w.observe(1, 0, vc(&[2, 0]), &set(&[("x0", 2)]));
        assert_eq!(holds_of(&u[0].1), &[0]); // x0=2: member
                                             // Untouched event reuses the cached truth (still a member).
        let u = w.observe(2, 0, vc(&[3, 0]), &set(&[]));
        assert_eq!(holds_of(&u[0].1), &[0]);
    }

    #[test]
    fn position_gaps_hold_and_drain_in_order() {
        let mut w = worker();
        // Position 2 before position 1: held, no update yet.
        assert!(w.observe(5, 0, vc(&[2, 0]), &set(&[("x0", 2)])).is_empty());
        assert_eq!(w.held(), 1);
        // The gap fills: position 1 applies, then the held position 2
        // drains — sequence numbers preserved per event.
        let u = w.observe(9, 0, vc(&[1, 0]), &set(&[("x0", 1)]));
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].0, 9);
        assert_eq!(holds_of(&u[0].1), &[] as &[usize]);
        assert_eq!(u[1].0, 5);
        assert_eq!(holds_of(&u[1].1), &[0]);
        assert_eq!(w.held(), 0);
    }

    #[test]
    fn replays_and_invalid_events_are_refused_without_state_change() {
        let mut w = worker();
        w.observe(0, 0, vc(&[1, 0]), &set(&[("x0", 2)]));
        // Same position again: empty holds, no double-apply.
        let u = w.observe(1, 0, vc(&[1, 0]), &set(&[("x0", 7)]));
        assert_eq!(holds_of(&u[0].1), &[] as &[usize]);
        // Undeclared variable: refused with the exact session message.
        let u = w.observe(2, 0, vc(&[2, 0]), &set(&[("nope", 1)]));
        match &u[0].1 {
            SliceUpdateBody::Observe { invalid, holds, .. } => {
                assert_eq!(invalid.as_deref(), Some("undeclared variable 'nope'"));
                assert!(holds.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // Out-of-range process / bad clock width: deferred to the
        // aggregator's replica buffer.
        let u = w.observe(3, 9, vc(&[1, 0]), &set(&[]));
        assert!(matches!(
            &u[0].1,
            SliceUpdateBody::Observe { invalid: None, holds, .. } if holds.is_empty()
        ));
        // The next in-position event still evaluates correctly.
        let u = w.observe(4, 0, vc(&[2, 0]), &set(&[("x0", 2)]));
        assert_eq!(holds_of(&u[0].1), &[0]);
    }

    #[test]
    fn close_flushes_stranded_holds() {
        let mut w = worker();
        assert!(w.observe(3, 0, vc(&[4, 0]), &set(&[("x0", 2)])).is_empty());
        assert!(w.observe(4, 0, vc(&[3, 0]), &set(&[("x0", 2)])).is_empty());
        let u = w.close();
        assert_eq!(u.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 4]);
        assert!(u.iter().all(|(_, b)| holds_of(b).is_empty()));
        assert_eq!(w.held(), 0);
    }

    #[test]
    fn slice_stats_are_watermarked() {
        let mut w = worker();
        assert!(w.take_slice_stats().is_empty());
        w.observe(0, 0, vc(&[1, 0]), &set(&[("x0", 1)])); // filtered
        w.observe(1, 0, vc(&[2, 0]), &set(&[("x0", 2)])); // member
        assert_eq!(w.take_slice_stats(), vec![("ef".to_string(), 2, 1)]);
        assert!(w.take_slice_stats().is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips_mid_stream() {
        let mut w = worker();
        w.observe(0, 0, vc(&[1, 0]), &set(&[("x0", 2)]));
        w.observe(1, 0, vc(&[3, 0]), &set(&[("x0", 5)])); // held
        let snap = w.snapshot();
        let mut r = DistWorker::restore(&snap, 2).unwrap();
        assert_eq!(r.snapshot(), snap, "snapshot is stable");
        // Both continue identically: the gap fills, the held event
        // drains with the same bits.
        let a = w.observe(2, 0, vc(&[2, 0]), &set(&[]));
        let b = r.observe(2, 0, vc(&[2, 0]), &set(&[]));
        assert_eq!(a.len(), 2);
        for ((sa, ua), (sb, ub)) in a.iter().zip(&b) {
            assert_eq!(sa, sb);
            assert_eq!(ua, ub);
        }
        assert_eq!(w.snapshot(), r.snapshot());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let w = worker();
        let good = w.snapshot();
        let mut bad = good.clone();
        bad.counts = vec![0];
        assert!(DistWorker::restore(&bad, 2).is_err());
        let mut bad = good;
        bad.held.push((9, 7, vec![1, 1], BTreeMap::new()));
        assert!(DistWorker::restore(&bad, 2).is_err());
    }
}
