//! The bounded per-session frame journal.
//!
//! Failover replay needs every frame the client has sent for a session
//! — the `open` plus all events, finishes, and a possible `close` — in
//! order. The journal records them as they are forwarded. It is
//! **bounded**: a session that outgrows the limit stops journaling and
//! becomes non-replayable (on backend loss it is reported to the client
//! and dropped, rather than silently replayed from a truncated prefix,
//! which would corrupt detector state on the new backend).

use hb_tracefmt::wire::ClientMsg;

/// An ordered, bounded record of one session's client frames.
#[derive(Debug)]
pub struct SessionJournal {
    frames: Vec<ClientMsg>,
    limit: usize,
    overflowed: bool,
}

impl SessionJournal {
    /// An empty journal holding at most `limit` frames.
    pub fn new(limit: usize) -> Self {
        SessionJournal {
            frames: Vec::new(),
            limit: limit.max(1),
            overflowed: false,
        }
    }

    /// Records one frame; returns `false` once the journal has
    /// overflowed (the frame is *not* recorded — a truncated journal
    /// must never masquerade as a complete one).
    pub fn push(&mut self, frame: ClientMsg) -> bool {
        if self.overflowed {
            return false;
        }
        if self.frames.len() >= self.limit {
            self.overflowed = true;
            self.frames.clear();
            self.frames.shrink_to_fit();
            return false;
        }
        self.frames.push(frame);
        true
    }

    /// Whether the limit was ever hit (the journal is then empty and
    /// permanently unusable for replay).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The recorded frames, oldest first.
    pub fn frames(&self) -> &[ClientMsg] {
        &self.frames
    }

    /// Frames currently recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(p: usize) -> ClientMsg {
        ClientMsg::FinishProcess {
            session: "s".into(),
            p,
        }
    }

    #[test]
    fn records_in_order_up_to_the_limit() {
        let mut j = SessionJournal::new(3);
        assert!(j.push(frame(0)));
        assert!(j.push(frame(1)));
        assert!(j.push(frame(2)));
        assert_eq!(j.len(), 3);
        assert!(!j.overflowed());
        assert_eq!(j.frames()[1], frame(1));
    }

    #[test]
    fn a_batch_is_one_journal_frame() {
        use hb_tracefmt::wire::EventFrame;
        let mut j = SessionJournal::new(2);
        let batch = ClientMsg::Events {
            session: "s".into(),
            events: (0..64)
                .map(|i| EventFrame {
                    p: 0,
                    clock: vec![i + 1],
                    set: Default::default(),
                })
                .collect(),
        };
        assert!(j.push(batch.clone()));
        assert_eq!(j.len(), 1, "a batch journals unsplit");
        assert!(j.push(frame(0)));
        assert!(!j.push(batch), "the bound counts frames, not events");
        assert!(j.overflowed());
    }

    #[test]
    fn overflow_discards_everything_permanently() {
        let mut j = SessionJournal::new(2);
        assert!(j.push(frame(0)));
        assert!(j.push(frame(1)));
        assert!(!j.push(frame(2)), "limit hit");
        assert!(j.overflowed());
        assert!(j.is_empty(), "a truncated journal must not replay");
        assert!(!j.push(frame(3)), "overflow is sticky");
    }
}
