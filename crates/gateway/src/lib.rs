//! # hb-gateway
//!
//! A TCP front door for a fleet of `hb-monitor` backends. Clients speak
//! the ordinary [`hb_tracefmt::wire`] protocol to one address; the
//! gateway places each session on a backend by rendezvous hashing over
//! the session name, forwards frames over pooled pipelined connections,
//! and replays a bounded per-session journal onto a surviving backend
//! when one dies mid-session — deduplicating verdicts so clients never
//! observe the failover.
//!
//! The pieces:
//!
//! - [`rendezvous`] — stable highest-random-weight placement;
//!   removing a backend only remaps the sessions that were on it.
//! - [`dial`] — re-exported from [`hb_tracefmt::dial`]: retrying dials
//!   with capped exponential backoff and jitter, plus the
//!   `Hello`/`Welcome` version handshake (which doubles as the health
//!   probe). Shared with the CLI's `--retry` flag and the hb-sdk
//!   flusher so the whole system backs off the same way.
//! - [`journal`] — the bounded per-session frame record that makes
//!   replay possible and refuses to replay a truncated prefix.
//! - [`metrics`] — relaxed-atomic counters in the monitor's style.
//! - [`service`] — the runtime: routing, pools, backpressure,
//!   failover, drain, and aggregated stats fan-out.
//!
//! ```no_run
//! use hb_gateway::service::{GatewayConfig, GatewayService};
//!
//! let gw = GatewayService::start(GatewayConfig {
//!     backends: vec!["127.0.0.1:7601".into(), "127.0.0.2:7602".into()],
//!     ..GatewayConfig::default()
//! }).unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:7575").unwrap();
//! gw.serve(listener).unwrap();
//! ```

#![warn(missing_docs)]

pub use hb_tracefmt::dial;
pub mod journal;
pub mod metrics;
pub mod rendezvous;
pub mod service;

pub use metrics::{GatewayMetrics, GatewaySnapshot};
pub use service::{GatewayConfig, GatewayService};
