//! Gateway observability, mirroring `hb_monitor::metrics` in style: one
//! shared block of relaxed atomics, a point-in-time snapshot, a stable
//! `name → value` map for the wire `stats` reply, and a one-line
//! `Display` for periodic logging.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Shared counters and gauges for one gateway.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Client connections currently open (gauge).
    pub clients_connected: AtomicU64,
    /// Client connections ever accepted.
    pub clients_total: AtomicU64,
    /// Sessions placed on a backend (each session counted once at open).
    pub sessions_routed: AtomicU64,
    /// Sessions currently routed and not yet closed (gauge).
    pub sessions_active: AtomicU64,
    /// Sessions moved to a new backend after their backend was lost.
    pub sessions_failed_over: AtomicU64,
    /// Sessions dropped because failover was impossible (journal
    /// overflow, or no healthy backend to land on).
    pub sessions_dropped: AtomicU64,
    /// Client frames forwarded to a backend (first transmission only).
    pub frames_forwarded: AtomicU64,
    /// Frames re-sent from a journal during failover replay.
    pub frames_replayed: AtomicU64,
    /// Frames currently held across all session journals (gauge).
    pub journal_frames: AtomicU64,
    /// Sessions whose journal hit its limit and became non-replayable.
    pub journal_overflows: AtomicU64,
    /// Verdicts forwarded to clients.
    pub verdicts_forwarded: AtomicU64,
    /// Verdicts suppressed because the client had already seen that
    /// predicate settle (failover replay re-detection).
    pub verdicts_deduped: AtomicU64,
    /// Backend connections dialed (pool fills and redials).
    pub backend_dials: AtomicU64,
    /// Backend dial attempts that failed outright.
    pub backend_dial_failures: AtomicU64,
    /// Backend connection losses that triggered failure handling.
    pub backend_failures: AtomicU64,
    /// Backends currently healthy (gauge).
    pub backends_healthy: AtomicU64,
    /// Health probes sent to down backends.
    pub probes_sent: AtomicU64,
    /// Drains requested.
    pub drains_started: AtomicU64,
    /// Drains that ran to completion (backend removed).
    pub drains_completed: AtomicU64,
    /// Forwards that found the backend pipeline full and had to wait —
    /// each one is a moment client reading stalled (backpressure).
    pub backpressure_stalls: AtomicU64,
    /// Aggregated stats fan-outs served.
    pub stats_fanouts: AtomicU64,
    /// Client-visible protocol errors answered by the gateway itself.
    pub protocol_errors: AtomicU64,
    /// Distributed sessions opened (each counted once; also counted in
    /// `sessions_routed`).
    pub dist_sessions_routed: AtomicU64,
    /// Worker slice-updates relayed to aggregator backends.
    pub dist_updates_relayed: AtomicU64,
    /// Worker partitions re-derived onto a new backend after theirs
    /// was lost.
    pub partitions_failed_over: AtomicU64,
}

impl GatewayMetrics {
    /// A fresh, all-zero metrics block.
    pub fn new() -> Self {
        GatewayMetrics::default()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            clients_connected: self.clients_connected.load(Relaxed),
            clients_total: self.clients_total.load(Relaxed),
            sessions_routed: self.sessions_routed.load(Relaxed),
            sessions_active: self.sessions_active.load(Relaxed),
            sessions_failed_over: self.sessions_failed_over.load(Relaxed),
            sessions_dropped: self.sessions_dropped.load(Relaxed),
            frames_forwarded: self.frames_forwarded.load(Relaxed),
            frames_replayed: self.frames_replayed.load(Relaxed),
            journal_frames: self.journal_frames.load(Relaxed),
            journal_overflows: self.journal_overflows.load(Relaxed),
            verdicts_forwarded: self.verdicts_forwarded.load(Relaxed),
            verdicts_deduped: self.verdicts_deduped.load(Relaxed),
            backend_dials: self.backend_dials.load(Relaxed),
            backend_dial_failures: self.backend_dial_failures.load(Relaxed),
            backend_failures: self.backend_failures.load(Relaxed),
            backends_healthy: self.backends_healthy.load(Relaxed),
            probes_sent: self.probes_sent.load(Relaxed),
            drains_started: self.drains_started.load(Relaxed),
            drains_completed: self.drains_completed.load(Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Relaxed),
            stats_fanouts: self.stats_fanouts.load(Relaxed),
            protocol_errors: self.protocol_errors.load(Relaxed),
            dist_sessions_routed: self.dist_sessions_routed.load(Relaxed),
            dist_updates_relayed: self.dist_updates_relayed.load(Relaxed),
            partitions_failed_over: self.partitions_failed_over.load(Relaxed),
        }
    }
}

/// A point-in-time copy of [`GatewayMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field names mirror `GatewayMetrics` one-to-one
pub struct GatewaySnapshot {
    pub clients_connected: u64,
    pub clients_total: u64,
    pub sessions_routed: u64,
    pub sessions_active: u64,
    pub sessions_failed_over: u64,
    pub sessions_dropped: u64,
    pub frames_forwarded: u64,
    pub frames_replayed: u64,
    pub journal_frames: u64,
    pub journal_overflows: u64,
    pub verdicts_forwarded: u64,
    pub verdicts_deduped: u64,
    pub backend_dials: u64,
    pub backend_dial_failures: u64,
    pub backend_failures: u64,
    pub backends_healthy: u64,
    pub probes_sent: u64,
    pub drains_started: u64,
    pub drains_completed: u64,
    pub backpressure_stalls: u64,
    pub stats_fanouts: u64,
    pub protocol_errors: u64,
    pub dist_sessions_routed: u64,
    pub dist_updates_relayed: u64,
    pub partitions_failed_over: u64,
}

impl GatewaySnapshot {
    /// Name → value, in stable order, for the wire `stats` reply. Names
    /// are prefixed `gateway_` so a merged reply cannot collide with
    /// backend counter names.
    pub fn to_map(&self) -> BTreeMap<String, u64> {
        [
            ("gateway_clients_connected", self.clients_connected),
            ("gateway_clients_total", self.clients_total),
            ("gateway_sessions_routed", self.sessions_routed),
            ("gateway_sessions_active", self.sessions_active),
            ("gateway_sessions_failed_over", self.sessions_failed_over),
            ("gateway_sessions_dropped", self.sessions_dropped),
            ("gateway_frames_forwarded", self.frames_forwarded),
            ("gateway_frames_replayed", self.frames_replayed),
            ("gateway_journal_frames", self.journal_frames),
            ("gateway_journal_overflows", self.journal_overflows),
            ("gateway_verdicts_forwarded", self.verdicts_forwarded),
            ("gateway_verdicts_deduped", self.verdicts_deduped),
            ("gateway_backend_dials", self.backend_dials),
            ("gateway_backend_dial_failures", self.backend_dial_failures),
            ("gateway_backend_failures", self.backend_failures),
            ("gateway_backends_healthy", self.backends_healthy),
            ("gateway_probes_sent", self.probes_sent),
            ("gateway_drains_started", self.drains_started),
            ("gateway_drains_completed", self.drains_completed),
            ("gateway_backpressure_stalls", self.backpressure_stalls),
            ("gateway_stats_fanouts", self.stats_fanouts),
            ("gateway_protocol_errors", self.protocol_errors),
            ("gateway_dist_sessions_routed", self.dist_sessions_routed),
            ("gateway_dist_updates_relayed", self.dist_updates_relayed),
            (
                "gateway_partitions_failed_over",
                self.partitions_failed_over,
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

impl fmt::Display for GatewaySnapshot {
    /// The periodic log-line format: compact `key=value` pairs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clients={}/{} sessions={}/{} failed_over={} dropped={} \
             forwarded={} replayed={} journal={} dedup={} backends_up={} \
             failures={} stalls={} errors={}",
            self.clients_connected,
            self.clients_total,
            self.sessions_active,
            self.sessions_routed,
            self.sessions_failed_over,
            self.sessions_dropped,
            self.frames_forwarded,
            self.frames_replayed,
            self.journal_frames,
            self.verdicts_deduped,
            self.backends_healthy,
            self.backend_failures,
            self.backpressure_stalls,
            self.protocol_errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_map_covers_every_field() {
        let m = GatewayMetrics::new();
        m.sessions_routed.fetch_add(7, Relaxed);
        let map = m.snapshot().to_map();
        assert_eq!(map["gateway_sessions_routed"], 7);
        assert_eq!(map.len(), 25);
        assert!(map.keys().all(|k| k.starts_with("gateway_")));
    }

    #[test]
    fn display_is_one_line() {
        let line = GatewayMetrics::new().snapshot().to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("sessions=0/0"));
    }
}
