//! Rendezvous (highest-random-weight) hashing.
//!
//! Each session is routed to the eligible backend with the highest
//! `weight(backend, session)`. The weight function is a fixed hash —
//! deterministic across processes and builds — so every gateway replica
//! agrees on placement without coordination, and removing one backend
//! only remaps the sessions that were on it (the defining property that
//! makes failover cheap: survivors keep their assignments).

/// The SplitMix64 finalizer: a cheap, well-mixed bijection on `u64`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The placement weight of `session` on `backend` (an FNV-1a hash of
/// `backend ‖ 0xff ‖ session`, finalized with SplitMix64). Stable: not
/// derived from `DefaultHasher`, whose keys the standard library does
/// not promise across processes.
pub fn weight(backend: &str, session: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in backend.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01b3);
    for &b in session.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// Picks the eligible backend with the highest weight for `session`.
///
/// `backends` yields `(index, addr)` pairs for the *eligible* set only
/// (healthy, not draining); the caller filters. Ties break toward the
/// lower index so the choice is total. Returns `None` when the set is
/// empty.
pub fn pick<'a, I>(backends: I, session: &str) -> Option<usize>
where
    I: IntoIterator<Item = (usize, &'a str)>,
{
    backends
        .into_iter()
        .map(|(i, addr)| (weight(addr, session), i))
        // max_by_key keeps the *last* maximum; compare on (weight, Reverse(i))
        .max_by_key(|&(w, i)| (w, std::cmp::Reverse(i)))
        .map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [&str; 3] = ["10.0.0.1:7575", "10.0.0.2:7575", "10.0.0.3:7575"];

    fn eligible(skip: Option<usize>) -> Vec<(usize, &'static str)> {
        BACKENDS
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != skip)
            .map(|(i, &a)| (i, a))
            .collect()
    }

    #[test]
    fn placement_is_deterministic() {
        for s in 0..50 {
            let session = format!("session-{s}");
            let a = pick(eligible(None), &session);
            let b = pick(eligible(None), &session);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn removal_only_remaps_the_removed_backends_sessions() {
        for s in 0..200 {
            let session = format!("session-{s}");
            let before = pick(eligible(None), &session).unwrap();
            let after = pick(eligible(Some(0)), &session).unwrap();
            if before != 0 {
                assert_eq!(before, after, "surviving placement moved for {session}");
            } else {
                assert_ne!(after, 0);
            }
        }
    }

    #[test]
    fn load_spreads_across_backends() {
        let mut counts = [0usize; 3];
        for s in 0..600 {
            let session = format!("session-{s}");
            counts[pick(eligible(None), &session).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // 600 sessions over 3 backends: each should get a real share.
            assert!(c > 100, "backend {i} got only {c} of 600 sessions");
        }
    }

    #[test]
    fn empty_set_has_no_pick() {
        assert_eq!(pick(Vec::new(), "s"), None);
    }
}
