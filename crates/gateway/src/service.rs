//! The gateway runtime.
//!
//! # Architecture
//!
//! ```text
//!                       ┌────────────────────────────┐  pool (K conns,
//!  client conns ──────► │  route by rendezvous hash  │  bounded pipelines)
//!   (wire frames)       │  over the session name     ├──────► backend 0
//!                       │                            ├──────► backend 1
//!    journals ◄──────── │  per-session frame journal │   …
//!    (bounded)          └─────────────┬──────────────┘──────► backend N−1
//!                                     │         ▲
//!                              keeper thread: health probes,
//!                              failover replay, drain progress
//! ```
//!
//! Every client frame that names a session is (1) appended to that
//! session's bounded journal and (2) forwarded to the backend the
//! session is placed on, over a pooled connection whose pipeline is a
//! *bounded* channel — when a backend stops draining its pipeline, the
//! forwarding client thread blocks, which stops reading that client's
//! socket: backpressure propagates to the source instead of buffering
//! without limit.
//!
//! # Failover
//!
//! A lost backend connection marks the whole backend down (exactly
//! once), kills its pool, and wakes the keeper. Every session placed
//! there is re-placed by rendezvous over the surviving healthy
//! backends and its journal replayed — the new backend sees the same
//! `open`/`event` stream the old one did, re-runs detection, and
//! re-settles the same verdicts. The gateway suppresses verdicts the
//! client has already seen (`SessionEntry::settled`), so a client
//! never observes a duplicate. A session whose journal overflowed its
//! bound is *dropped with an explicit error* instead of being replayed
//! from a truncated prefix (which would silently corrupt detector
//! state). Down backends are probed with capped exponential backoff
//! and rejoin the eligible set when the `Hello`/`Welcome` handshake
//! succeeds again.
//!
//! # Draining
//!
//! `drain` moves a backend through `Healthy → Draining → Removed`:
//! draining backends accept no new placements (fresh sessions and
//! failovers both skip them) but keep serving their live sessions;
//! when the last one closes, the backend is removed and its pool torn
//! down. The reply ([`ServerMsg::Drained`]) is sent only after removal,
//! so scripts can chain `drain` and process shutdown safely.

use crate::dial::{self, RetryPolicy};
use crate::journal::SessionJournal;
use crate::metrics::{GatewayMetrics, GatewaySnapshot};
use crate::rendezvous;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use hb_dist::{owner, worker_session};
use hb_tracefmt::wire::{self, ClientMsg, EventFrame, ServerMsg, SliceUpdateBody, WireDistRole};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::BufWriter;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway-wide configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Backend addresses (at least one); order is cosmetic — placement
    /// is by rendezvous hash, not position.
    pub backends: Vec<String>,
    /// Connections kept per backend; sessions spread across them.
    pub pool_size: usize,
    /// Frames in flight per pooled connection before the forwarding
    /// thread blocks (the backpressure bound).
    pub pipeline_depth: usize,
    /// Frames journaled per session before it becomes non-replayable.
    pub journal_limit: usize,
    /// First health-probe delay after a backend is lost; doubles per
    /// failed probe up to `probe_cap`.
    pub probe_initial: Duration,
    /// Ceiling on the probe backoff.
    pub probe_cap: Duration,
    /// Retry policy for backend dials on the forwarding path.
    pub dial_retry: RetryPolicy,
    /// Period of the stats log line on stderr; `None` disables it.
    pub stats_interval: Option<Duration>,
    /// The highest protocol version this gateway speaks to its clients
    /// — normally [`wire::WIRE_VERSION`]. Lowering it emulates an older
    /// gateway (refusing newer `hello`s and, below 3, the batched
    /// `events` frame) for compatibility tests.
    pub wire_version: u32,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            backends: Vec::new(),
            pool_size: 2,
            pipeline_depth: 256,
            journal_limit: 8192,
            probe_initial: Duration::from_millis(50),
            probe_cap: Duration::from_secs(2),
            dial_retry: RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(25),
                cap: Duration::from_millis(200),
            },
            stats_interval: None,
            wire_version: wire::WIRE_VERSION,
        }
    }
}

/// Where a backend stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    /// Eligible for new placements and failover targets.
    Healthy,
    /// Lost; probed with backoff until it answers the handshake again.
    Down { failures: u32, next_probe_ms: u64 },
    /// No new placements; live sessions run to completion.
    Draining,
    /// Gone (drained to empty, or died while draining).
    Removed,
}

/// One pooled connection to a backend.
struct Conn {
    tx: Sender<ClientMsg>,
    stream: TcpStream,
    generation: u64,
    /// The version the backend answered the `Hello` handshake with —
    /// distributed sessions require every involved backend ≥ 5.
    peer_version: u32,
}

/// One backend and its connection pool.
struct Backend {
    addr: String,
    health: Mutex<Health>,
    slots: Vec<Mutex<Option<Conn>>>,
    generation: AtomicU64,
}

/// Routing state of a distributed session: where its worker
/// partitions live and the deterministic seq counter. The aggregator's
/// placement is the owning [`SessionEntry`]'s `backend`/`slot`.
struct DistState {
    /// Number of worker partitions; process `p` belongs to
    /// [`owner`]`(p, k)`.
    k: usize,
    /// Per-partition placement, `(backend, slot)`.
    workers: Vec<(usize, usize)>,
    /// Next seq to stamp. Every event (batched or not), finish, and
    /// the final close consume exactly one, in client-frame order —
    /// so a failover replay over the journal recomputes the identical
    /// assignment.
    next_seq: u64,
}

/// One routed session.
struct SessionEntry {
    name: String,
    backend: usize,
    slot: usize,
    sink: Sender<ServerMsg>,
    journal: SessionJournal,
    /// Predicates whose verdict was already forwarded to the client —
    /// the failover dedup set.
    settled: BTreeSet<String>,
    opened_sent: bool,
    closed_sent: bool,
    /// `Some` when the session is distributed across backends.
    dist: Option<DistState>,
}

enum KeeperMsg {
    BackendLost(usize),
    Stop,
}

struct Inner {
    config: GatewayConfig,
    backends: Vec<Backend>,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionEntry>>>>,
    metrics: Arc<GatewayMetrics>,
    keeper_tx: Sender<KeeperMsg>,
    stop: AtomicBool,
    /// Monotonic clock base for `Health::Down::next_probe_ms`.
    epoch: Instant,
}

/// The running gateway: routing state plus the keeper thread.
pub struct GatewayService {
    inner: Arc<Inner>,
    keeper: Option<JoinHandle<()>>,
}

// Lock-order discipline (deadlock freedom): the sessions map lock is
// never held while acquiring an entry lock or sending to a backend;
// an entry lock MAY be held while taking the map lock (drop path) or
// while blocking on a bounded pipeline (the backpressure stall), whose
// drain never needs any gateway lock.

fn slot_of(session: &str, pool: usize) -> usize {
    (rendezvous::weight("slot", session) % pool.max(1) as u64) as usize
}

impl GatewayService {
    /// Validates the configuration and starts the keeper. Backends are
    /// assumed healthy until a dial fails — pools are filled lazily.
    pub fn start(mut config: GatewayConfig) -> Result<GatewayService, String> {
        if config.backends.is_empty() {
            return Err("gateway needs at least one --backend address".into());
        }
        config.backends.dedup();
        let mut seen = BTreeSet::new();
        for addr in &config.backends {
            if !seen.insert(addr.clone()) {
                return Err(format!("duplicate backend address '{addr}'"));
            }
        }
        config.pool_size = config.pool_size.max(1);
        config.pipeline_depth = config.pipeline_depth.max(1);
        let metrics = Arc::new(GatewayMetrics::new());
        metrics
            .backends_healthy
            .store(config.backends.len() as u64, Relaxed);
        let backends = config
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                health: Mutex::new(Health::Healthy),
                slots: (0..config.pool_size).map(|_| Mutex::new(None)).collect(),
                generation: AtomicU64::new(0),
            })
            .collect();
        let (keeper_tx, keeper_rx) = unbounded();
        let inner = Arc::new(Inner {
            config,
            backends,
            sessions: Mutex::new(HashMap::new()),
            metrics,
            keeper_tx,
            stop: AtomicBool::new(false),
            epoch: Instant::now(),
        });
        let keeper = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hb-gateway-keeper".into())
                .spawn(move || keeper_loop(&inner, &keeper_rx))
                .expect("spawn keeper thread")
        };
        Ok(GatewayService {
            inner,
            keeper: Some(keeper),
        })
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> GatewaySnapshot {
        self.inner.metrics.snapshot()
    }

    /// The aggregated stats map: gateway counters plus every healthy
    /// backend's counters summed key-wise (what the wire `stats`
    /// request answers with).
    pub fn aggregated_stats(&self) -> BTreeMap<String, u64> {
        aggregate_stats(&self.inner)
    }

    /// Serves the wire protocol until a client sends `shutdown`.
    /// Mirrors `hb_monitor::service::serve`: one reader thread per
    /// connection, one writer thread draining its sink.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        let mut conn_threads = Vec::new();
        for stream in listener.incoming() {
            if self.inner.stop.load(Relaxed) {
                break;
            }
            let stream = stream?;
            // Small request/reply frames; Nagle would stall each
            // exchange on a delayed-ACK round trip.
            let _ = stream.set_nodelay(true);
            let inner = Arc::clone(&self.inner);
            conn_threads.push(std::thread::spawn(move || {
                let shutdown_requested = serve_connection(stream, &inner);
                if shutdown_requested {
                    inner.stop.store(true, Relaxed);
                    // Unblock the accept loop.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for t in conn_threads {
            let _ = t.join();
        }
        Ok(())
    }

    /// Stops the keeper and tears down every backend connection.
    /// Backends themselves keep running — stopping them is the
    /// operator's call, not the gateway's.
    pub fn shutdown(mut self) -> GatewaySnapshot {
        self.inner.stop.store(true, Relaxed);
        let _ = self.inner.keeper_tx.send(KeeperMsg::Stop);
        if let Some(k) = self.keeper.take() {
            let _ = k.join();
        }
        for b in 0..self.inner.backends.len() {
            kill_conns(&self.inner, b);
        }
        self.inner.metrics.snapshot()
    }
}

// ---- placement and forwarding ---------------------------------------------

fn pick_backend(inner: &Inner, session: &str) -> Option<usize> {
    rendezvous::pick(
        inner
            .backends
            .iter()
            .enumerate()
            .filter(|(_, b)| *b.health.lock() == Health::Healthy)
            .map(|(i, b)| (i, b.addr.as_str())),
        session,
    )
}

/// Every healthy backend ranked by rendezvous weight for `session`,
/// best first. A distributed open places the aggregator on rank 0 and
/// wraps the worker partitions over the rest, so partitions spread as
/// widely as the fleet allows while staying deterministic (every
/// gateway replica computes the same layout).
fn rank_backends(inner: &Inner, session: &str) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = inner
        .backends
        .iter()
        .enumerate()
        .filter(|(_, b)| *b.health.lock() == Health::Healthy)
        .map(|(i, b)| (rendezvous::weight(&b.addr, session), i))
        .collect();
    ranked.sort_by_key(|&(w, i)| (std::cmp::Reverse(w), i));
    ranked.into_iter().map(|(_, i)| i).collect()
}

/// Returns a sender for backend `b`'s pool slot (plus the backend's
/// handshake version), dialing on demand.
fn ensure_conn(
    inner: &Arc<Inner>,
    b: usize,
    slot: usize,
) -> Result<(Sender<ClientMsg>, u32), String> {
    let backend = &inner.backends[b];
    let mut guard = backend.slots[slot].lock();
    if let Some(conn) = guard.as_ref() {
        return Ok((conn.tx.clone(), conn.peer_version));
    }
    inner.metrics.backend_dials.fetch_add(1, Relaxed);
    let dialed = match dial::dial(&backend.addr, &inner.config.dial_retry) {
        Ok(d) => d,
        Err(e) => {
            inner.metrics.backend_dial_failures.fetch_add(1, Relaxed);
            return Err(e);
        }
    };
    let generation = backend.generation.fetch_add(1, Relaxed) + 1;
    let (tx, rx) = bounded::<ClientMsg>(inner.config.pipeline_depth);
    {
        let mut writer = dialed.writer;
        // Batches normally relay unsplit, but a backend that welcomed a
        // pre-3 version has no `events` decoder — downgrade at the last
        // moment, on this connection only, so a mixed-version fleet
        // still fails over freely.
        let peer_version = dialed.peer_version;
        std::thread::Builder::new()
            .name(format!("hb-gateway-b{b}s{slot}-w"))
            .spawn(move || {
                for msg in rx.iter() {
                    let ok = match msg {
                        ClientMsg::Events { session, events } if peer_version < 3 => {
                            events.into_iter().all(|e| {
                                wire::write_frame(&mut writer, &e.into_event(&session)).is_ok()
                            })
                        }
                        msg => wire::write_frame(&mut writer, &msg).is_ok(),
                    };
                    if !ok {
                        return;
                    }
                }
            })
            .expect("spawn pool writer");
    }
    {
        let inner = Arc::clone(inner);
        let mut reader = dialed.reader;
        std::thread::Builder::new()
            .name(format!("hb-gateway-b{b}s{slot}-r"))
            .spawn(move || {
                while let Ok(Some(msg)) = wire::read_frame::<_, ServerMsg>(&mut reader) {
                    dispatch(&inner, msg);
                }
                on_conn_down(&inner, b, slot, generation);
            })
            .expect("spawn pool reader");
    }
    let peer_version = dialed.peer_version;
    *guard = Some(Conn {
        tx: tx.clone(),
        stream: dialed.stream,
        generation,
        peer_version,
    });
    Ok((tx, peer_version))
}

/// Clears a pool slot and shuts its socket down (idempotent).
fn clear_slot(inner: &Inner, b: usize, slot: usize) {
    let mut guard = inner.backends[b].slots[slot].lock();
    if let Some(conn) = guard.take() {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

fn kill_conns(inner: &Inner, b: usize) {
    for slot in 0..inner.backends[b].slots.len() {
        clear_slot(inner, b, slot);
    }
}

/// Sends one frame down a pool pipeline; `try_send` first so a full
/// pipeline is *counted* as a backpressure stall before blocking.
fn send_to_backend(
    inner: &Arc<Inner>,
    b: usize,
    slot: usize,
    frame: ClientMsg,
) -> Result<(), String> {
    let (tx, _) = ensure_conn(inner, b, slot)?;
    match tx.try_send(frame) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(frame)) => {
            inner.metrics.backpressure_stalls.fetch_add(1, Relaxed);
            tx.send(frame)
                .map_err(|_| "backend connection closed".to_string())
        }
        Err(TrySendError::Disconnected(_)) => {
            clear_slot(inner, b, slot);
            Err("backend connection closed".to_string())
        }
    }
}

/// Marks backend `b` failed exactly once; returns whether this call won
/// the race (and therefore owns pool teardown + keeper notification).
fn report_backend_down(inner: &Arc<Inner>, b: usize) {
    let newly_down = {
        let mut h = inner.backends[b].health.lock();
        match *h {
            Health::Healthy => {
                *h = Health::Down {
                    failures: 0,
                    next_probe_ms: now_ms(inner) + inner.config.probe_initial.as_millis() as u64,
                };
                inner.metrics.backends_healthy.fetch_sub(1, Relaxed);
                true
            }
            // A draining backend that dies is simply gone: its sessions
            // fail over and the drain completes trivially.
            Health::Draining => {
                *h = Health::Removed;
                true
            }
            Health::Down { .. } | Health::Removed => false,
        }
    };
    if newly_down {
        inner.metrics.backend_failures.fetch_add(1, Relaxed);
        kill_conns(inner, b);
        let _ = inner.keeper_tx.send(KeeperMsg::BackendLost(b));
    }
}

fn now_ms(inner: &Inner) -> u64 {
    inner.epoch.elapsed().as_millis() as u64
}

fn on_conn_down(inner: &Arc<Inner>, b: usize, slot: usize, generation: u64) {
    {
        let mut guard = inner.backends[b].slots[slot].lock();
        if let Some(conn) = guard.as_ref() {
            if conn.generation == generation {
                let _ = conn.stream.shutdown(Shutdown::Both);
                *guard = None;
            }
        }
    }
    if inner.stop.load(Relaxed) {
        return; // gateway teardown closes conns on purpose
    }
    report_backend_down(inner, b);
}

/// Journals one frame with gauge accounting.
fn journal_frame(inner: &Inner, e: &mut SessionEntry, frame: ClientMsg) {
    let before = e.journal.len() as u64;
    let was_overflowed = e.journal.overflowed();
    if e.journal.push(frame) {
        inner.metrics.journal_frames.fetch_add(1, Relaxed);
    } else if !was_overflowed {
        inner.metrics.journal_overflows.fetch_add(1, Relaxed);
        inner.metrics.journal_frames.fetch_sub(before, Relaxed);
    }
}

/// Journals and forwards one client frame; a dead backend triggers
/// failover with journal replay. Caller holds the entry lock.
fn forward_frame(inner: &Arc<Inner>, e: &mut SessionEntry, frame: ClientMsg) {
    journal_frame(inner, e, frame.clone());
    match send_to_backend(inner, e.backend, e.slot, frame) {
        Ok(()) => {
            inner.metrics.frames_forwarded.fetch_add(1, Relaxed);
        }
        Err(_) => {
            report_backend_down(inner, e.backend);
            reroute_session(inner, e);
        }
    }
}

/// Journals one client frame of a *distributed* session and fans it
/// out: events become seq-stamped `dist-event` frames for their owner
/// worker, finishes and the close become sequenced updates for the
/// aggregator, and a close reaches the workers first so their stranded
/// holds flush before the aggregator's own close lands (the
/// aggregator's seq reorder absorbs any transport race). Caller holds
/// the entry lock.
fn forward_dist_frame(inner: &Arc<Inner>, e: &mut SessionEntry, frame: ClientMsg) {
    journal_frame(inner, e, frame.clone());
    match frame {
        ClientMsg::Event { p, clock, set, .. } => {
            send_dist_event(inner, e, EventFrame { p, clock, set });
        }
        ClientMsg::Events { events, .. } => {
            for ev in events {
                if e.closed_sent {
                    return;
                }
                send_dist_event(inner, e, ev);
            }
        }
        ClientMsg::FinishProcess { p, .. } => {
            let dist = e.dist.as_mut().expect("caller checked dist");
            let seq = dist.next_seq;
            dist.next_seq += 1;
            send_agg_update(inner, e, seq, SliceUpdateBody::Finish { p });
        }
        ClientMsg::Close { .. } => {
            let dist = e.dist.as_mut().expect("caller checked dist");
            let k = dist.k;
            let seq = dist.next_seq;
            dist.next_seq += 1;
            for w in 0..k {
                if e.closed_sent {
                    return;
                }
                let (b, slot) = e.dist.as_ref().expect("caller checked dist").workers[w];
                let close = ClientMsg::Close {
                    session: worker_session(&e.name, w),
                };
                if send_to_backend(inner, b, slot, close).is_err() {
                    report_backend_down(inner, b);
                    reroute_partition(inner, e, w);
                }
            }
            if !e.closed_sent {
                send_agg_update(inner, e, seq, SliceUpdateBody::Close);
            }
        }
        _ => unreachable!("only session frames reach the dist fan-out"),
    }
    if !e.closed_sent {
        inner.metrics.frames_forwarded.fetch_add(1, Relaxed);
    }
}

/// Stamps the next seq on one event and sends it to its owner worker;
/// a dead worker backend triggers partition failover. Caller holds the
/// entry lock.
fn send_dist_event(inner: &Arc<Inner>, e: &mut SessionEntry, event: EventFrame) {
    let dist = e.dist.as_mut().expect("caller checked dist");
    let seq = dist.next_seq;
    dist.next_seq += 1;
    let w = owner(event.p, dist.k);
    let (b, slot) = dist.workers[w];
    let frame = ClientMsg::DistEvent {
        session: worker_session(&e.name, w),
        seq,
        event,
    };
    if send_to_backend(inner, b, slot, frame).is_err() {
        report_backend_down(inner, b);
        // The partition replay re-derives this event from the journal
        // (it was journaled before the fan-out), so nothing is lost.
        reroute_partition(inner, e, w);
    }
}

/// Sends one sequenced update to the session's aggregator; a dead
/// aggregator backend drops the session. Caller holds the entry lock.
fn send_agg_update(inner: &Arc<Inner>, e: &mut SessionEntry, seq: u64, update: SliceUpdateBody) {
    let frame = ClientMsg::SliceUpdate {
        session: e.name.clone(),
        seq,
        update,
    };
    if send_to_backend(inner, e.backend, e.slot, frame).is_err() {
        report_backend_down(inner, e.backend);
        reroute_session(inner, e); // dist → aggregator death → drop
    }
}

/// Rebuilds the frame stream worker partition `w` must see — its
/// worker open plus its share of the events, re-derived from the
/// journaled *client* frames with the original seqs recomputed. Seq
/// assignment is deterministic (one per event, finish, and close, in
/// journal order), so the stream matches what the lost backend saw;
/// the aggregator's seq watermark silently absorbs the re-emitted
/// observations it has already applied.
fn re_derive_partition(e: &SessionEntry, w: usize) -> Vec<ClientMsg> {
    let dist = e.dist.as_ref().expect("caller checked dist");
    let k = dist.k;
    let dname = worker_session(&e.name, w);
    let mut seq = 0u64;
    let mut out = Vec::new();
    let stamp = |seq: &mut u64| {
        let s = *seq;
        *seq += 1;
        s
    };
    for frame in e.journal.frames() {
        match frame {
            ClientMsg::Open {
                processes,
                vars,
                initial,
                predicates,
                ..
            } => out.push(ClientMsg::Open {
                session: dname.clone(),
                processes: *processes,
                vars: vars.clone(),
                initial: initial.clone(),
                predicates: predicates.clone(),
                dist: Some(WireDistRole::Worker {
                    origin: e.name.clone(),
                    worker: w,
                    k,
                }),
            }),
            ClientMsg::Event { p, clock, set, .. } => {
                let s = stamp(&mut seq);
                if owner(*p, k) == w {
                    out.push(ClientMsg::DistEvent {
                        session: dname.clone(),
                        seq: s,
                        event: EventFrame {
                            p: *p,
                            clock: clock.clone(),
                            set: set.clone(),
                        },
                    });
                }
            }
            ClientMsg::Events { events, .. } => {
                for ev in events {
                    let s = stamp(&mut seq);
                    if owner(ev.p, k) == w {
                        out.push(ClientMsg::DistEvent {
                            session: dname.clone(),
                            seq: s,
                            event: ev.clone(),
                        });
                    }
                }
            }
            // Finishes and the close consume a seq but travel to the
            // aggregator, which never died (or we would not be here).
            ClientMsg::FinishProcess { .. } => {
                stamp(&mut seq);
            }
            ClientMsg::Close { .. } => {
                stamp(&mut seq);
                out.push(ClientMsg::Close {
                    session: dname.clone(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Re-places one worker partition on a healthy v5 backend and replays
/// its re-derived stream. Caller holds the entry lock.
fn reroute_partition(inner: &Arc<Inner>, e: &mut SessionEntry, w: usize) {
    if e.closed_sent {
        return;
    }
    if e.journal.overflowed() {
        drop_session(
            inner,
            e,
            format!(
                "backend lost and the journal for distributed session '{}' \
                 overflowed its {}-frame bound; worker partition {w} cannot \
                 be re-derived",
                e.name, inner.config.journal_limit
            ),
        );
        return;
    }
    let dname = worker_session(&e.name, w);
    for _ in 0..inner.backends.len() {
        let Some(nb) = pick_backend(inner, &dname) else {
            break;
        };
        let slot = slot_of(&dname, inner.config.pool_size);
        match ensure_conn(inner, nb, slot) {
            Ok((_, v)) if v < 5 => {
                drop_session(
                    inner,
                    e,
                    format!(
                        "backend {} speaks wire v{v}; worker partition {w} of \
                         session '{}' needs a v5 backend to fail over to",
                        inner.backends[nb].addr, e.name
                    ),
                );
                return;
            }
            Ok(_) => {}
            Err(_) => {
                report_backend_down(inner, nb);
                continue;
            }
        }
        let frames = re_derive_partition(e, w);
        let count = frames.len() as u64;
        let mut replayed_all = true;
        for frame in frames {
            if send_to_backend(inner, nb, slot, frame).is_err() {
                replayed_all = false;
                break;
            }
        }
        if replayed_all {
            e.dist.as_mut().expect("caller checked dist").workers[w] = (nb, slot);
            inner.metrics.partitions_failed_over.fetch_add(1, Relaxed);
            inner.metrics.frames_replayed.fetch_add(count, Relaxed);
            return;
        }
        report_backend_down(inner, nb);
    }
    drop_session(
        inner,
        e,
        format!(
            "no healthy backend available to fail worker partition {w} of \
             session '{}' over to",
            e.name
        ),
    );
}

/// Removes a session with a client-visible explanation and a synthetic
/// `Closed` so waiting clients unblock. Caller holds the entry lock.
fn drop_session(inner: &Arc<Inner>, e: &mut SessionEntry, message: String) {
    if e.closed_sent {
        return;
    }
    e.closed_sent = true;
    // Best-effort closes for a distributed session's surviving slots:
    // without them the worker and aggregator sessions would linger in
    // their backends' memory until those drain.
    if let Some(dist) = e.dist.take() {
        for (w, &(b, slot)) in dist.workers.iter().enumerate() {
            let _ = send_to_backend(
                inner,
                b,
                slot,
                ClientMsg::Close {
                    session: worker_session(&e.name, w),
                },
            );
        }
        let _ = send_to_backend(
            inner,
            e.backend,
            e.slot,
            ClientMsg::SliceUpdate {
                session: e.name.clone(),
                seq: dist.next_seq,
                update: SliceUpdateBody::Close,
            },
        );
    }
    inner.metrics.sessions_dropped.fetch_add(1, Relaxed);
    inner.metrics.sessions_active.fetch_sub(1, Relaxed);
    inner
        .metrics
        .journal_frames
        .fetch_sub(e.journal.len() as u64, Relaxed);
    let _ = e.sink.send(ServerMsg::Error {
        session: Some(e.name.clone()),
        kind: None,
        message,
    });
    let _ = e.sink.send(ServerMsg::Closed {
        session: e.name.clone(),
        discarded: 0,
    });
    inner.sessions.lock().remove(&e.name);
}

/// Re-places one session on a healthy backend and replays its journal.
/// Caller holds the entry lock.
fn reroute_session(inner: &Arc<Inner>, e: &mut SessionEntry) {
    if e.closed_sent {
        return;
    }
    if e.dist.is_some() {
        // The aggregator holds the only copy of the merged slice
        // frontier; re-deriving it would mean replaying every
        // partition from scratch on fresh backends. Chauhan–Garg
        // restart the whole run in this case too — drop loudly.
        drop_session(
            inner,
            e,
            format!(
                "backend holding the aggregator for distributed session \
                 '{}' was lost; aggregators do not fail over",
                e.name
            ),
        );
        return;
    }
    if e.journal.overflowed() {
        drop_session(
            inner,
            e,
            format!(
                "backend lost and the journal for session '{}' overflowed \
                 its {}-frame bound; the session cannot be replayed",
                e.name, inner.config.journal_limit
            ),
        );
        return;
    }
    for _ in 0..inner.backends.len() {
        let Some(nb) = pick_backend(inner, &e.name) else {
            break;
        };
        e.backend = nb;
        e.slot = slot_of(&e.name, inner.config.pool_size);
        let frames = e.journal.frames().to_vec();
        let count = frames.len() as u64;
        let mut replayed_all = true;
        for frame in frames {
            if send_to_backend(inner, nb, e.slot, frame).is_err() {
                replayed_all = false;
                break;
            }
        }
        if replayed_all {
            inner.metrics.sessions_failed_over.fetch_add(1, Relaxed);
            inner.metrics.frames_replayed.fetch_add(count, Relaxed);
            return;
        }
        report_backend_down(inner, nb);
    }
    drop_session(
        inner,
        e,
        format!(
            "no healthy backend available to fail session '{}' over to",
            e.name
        ),
    );
}

// ---- backend → client dispatch --------------------------------------------

fn entry_of(inner: &Inner, session: &str) -> Option<Arc<Mutex<SessionEntry>>> {
    inner.sessions.lock().get(session).cloned()
}

/// Routes one backend message to the owning client, deduplicating what
/// a failover replay would otherwise repeat (`Opened`, settled
/// verdicts, `Closed`).
fn dispatch(inner: &Arc<Inner>, msg: ServerMsg) {
    match msg {
        ServerMsg::Opened { session } => {
            if let Some(arc) = entry_of(inner, &session) {
                let mut e = arc.lock();
                if !e.opened_sent {
                    e.opened_sent = true;
                    let _ = e.sink.send(ServerMsg::Opened { session });
                }
            }
        }
        ServerMsg::Verdict {
            session,
            predicate,
            verdict,
        } => {
            if let Some(arc) = entry_of(inner, &session) {
                let mut e = arc.lock();
                if e.settled.contains(&predicate) {
                    inner.metrics.verdicts_deduped.fetch_add(1, Relaxed);
                } else {
                    e.settled.insert(predicate.clone());
                    inner.metrics.verdicts_forwarded.fetch_add(1, Relaxed);
                    let _ = e.sink.send(ServerMsg::Verdict {
                        session,
                        predicate,
                        verdict,
                    });
                }
            }
        }
        ServerMsg::Closed { session, discarded } => {
            let removed = inner.sessions.lock().remove(&session);
            if let Some(arc) = removed {
                let mut e = arc.lock();
                if !e.closed_sent {
                    e.closed_sent = true;
                    inner.metrics.sessions_active.fetch_sub(1, Relaxed);
                    inner
                        .metrics
                        .journal_frames
                        .fetch_sub(e.journal.len() as u64, Relaxed);
                    let _ = e.sink.send(ServerMsg::Closed { session, discarded });
                }
            }
        }
        ServerMsg::Error {
            session: Some(session),
            kind,
            message,
        } => {
            // Errors are forwarded, not deduplicated: a replay that
            // re-triggers one (e.g. a duplicate event the client really
            // sent) repeats it, which is honest. The backend's kind
            // classification rides along untouched.
            if let Some(arc) = entry_of(inner, &session) {
                let e = arc.lock();
                let _ = e.sink.send(ServerMsg::Error {
                    session: Some(session),
                    kind,
                    message,
                });
            }
        }
        // A worker's slice observation, addressed to the origin
        // session: relay to the aggregator with the same seq and body.
        // Updates are *not* journaled — a partition failover re-derives
        // them from the journaled client frames instead.
        ServerMsg::SliceUpdate {
            session,
            seq,
            update,
        } => {
            if let Some(arc) = entry_of(inner, &session) {
                let mut e = arc.lock();
                if e.closed_sent || e.dist.is_none() {
                    return;
                }
                inner.metrics.dist_updates_relayed.fetch_add(1, Relaxed);
                send_agg_update(inner, &mut e, seq, update);
            }
        }
        // Not session-routable: handshake echoes, stats replies on a
        // pooled connection, goodbye frames.
        ServerMsg::Error { session: None, .. }
        | ServerMsg::Welcome { .. }
        | ServerMsg::Drained { .. }
        | ServerMsg::Stats { .. }
        | ServerMsg::Bye => {}
    }
}

// ---- the keeper -----------------------------------------------------------

/// Background maintenance: failover of idle sessions on lost backends,
/// health probes with backoff, and the optional periodic stats line.
fn keeper_loop(inner: &Arc<Inner>, rx: &Receiver<KeeperMsg>) {
    let mut last_stats = Instant::now();
    loop {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(KeeperMsg::BackendLost(b)) => failover_backend_sessions(inner, b),
            Ok(KeeperMsg::Stop) => return,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
        }
        if inner.stop.load(Relaxed) {
            return;
        }
        probe_down_backends(inner);
        if let Some(period) = inner.config.stats_interval {
            if last_stats.elapsed() >= period {
                last_stats = Instant::now();
                eprintln!("hb-gateway: {}", inner.metrics.snapshot());
            }
        }
    }
}

/// Moves every session still placed on a lost backend — plain sessions
/// and distributed aggregators by their entry placement, worker
/// partitions by their own. Sessions whose client threads already
/// rerouted them are skipped (their backend index moved on).
fn failover_backend_sessions(inner: &Arc<Inner>, b: usize) {
    let entries: Vec<Arc<Mutex<SessionEntry>>> = {
        let map = inner.sessions.lock();
        map.values().cloned().collect()
    };
    for arc in entries {
        let mut e = arc.lock();
        if e.closed_sent {
            continue;
        }
        if e.backend == b {
            reroute_session(inner, &mut e);
            continue;
        }
        let partitions: Vec<usize> = e
            .dist
            .as_ref()
            .map(|d| {
                d.workers
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(wb, _))| wb == b)
                    .map(|(w, _)| w)
                    .collect()
            })
            .unwrap_or_default();
        for w in partitions {
            reroute_partition(inner, &mut e, w);
        }
    }
}

/// Probes every down backend whose backoff has elapsed; a completed
/// handshake restores eligibility.
fn probe_down_backends(inner: &Arc<Inner>) {
    let probe_policy = RetryPolicy {
        attempts: 1,
        ..RetryPolicy::default()
    };
    for backend in &inner.backends {
        let due = {
            let h = backend.health.lock();
            match *h {
                Health::Down { next_probe_ms, .. } => next_probe_ms <= now_ms(inner),
                _ => false,
            }
        };
        if !due {
            continue;
        }
        inner.metrics.probes_sent.fetch_add(1, Relaxed);
        let alive = dial::dial(&backend.addr, &probe_policy).is_ok();
        let mut h = backend.health.lock();
        if let Health::Down { failures, .. } = *h {
            if alive {
                *h = Health::Healthy;
                inner.metrics.backends_healthy.fetch_add(1, Relaxed);
                eprintln!("hb-gateway: backend {} is healthy again", backend.addr);
            } else {
                let failures = failures.saturating_add(1);
                let backoff = inner
                    .config
                    .probe_initial
                    .saturating_mul(1u32 << failures.min(16))
                    .min(inner.config.probe_cap);
                *h = Health::Down {
                    failures,
                    next_probe_ms: now_ms(inner) + backoff.as_millis() as u64,
                };
            }
        }
    }
}

// ---- stats aggregation and drain ------------------------------------------

/// One short-lived stats exchange with a backend.
fn fetch_backend_stats(addr: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut dialed = dial::dial(
        addr,
        &RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
    )?;
    dialed
        .stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| e.to_string())?;
    wire::write_frame(&mut dialed.writer, &ClientMsg::Stats).map_err(|e| e.to_string())?;
    match wire::read_frame::<_, ServerMsg>(&mut dialed.reader) {
        Ok(Some(ServerMsg::Stats { counters })) => Ok(counters),
        other => Err(format!("unexpected stats reply from {addr}: {other:?}")),
    }
}

/// Gateway counters plus every reachable backend's counters, summed.
fn aggregate_stats(inner: &Arc<Inner>) -> BTreeMap<String, u64> {
    inner.metrics.stats_fanouts.fetch_add(1, Relaxed);
    let mut merged = inner.metrics.snapshot().to_map();
    let mut total = 0u64;
    let mut reporting = 0u64;
    for backend in &inner.backends {
        let health = *backend.health.lock();
        if health == Health::Removed {
            continue;
        }
        total += 1;
        if matches!(health, Health::Down { .. }) {
            continue;
        }
        if let Ok(counters) = fetch_backend_stats(&backend.addr) {
            reporting += 1;
            for (k, v) in counters {
                *merged.entry(k).or_insert(0) += v;
            }
        }
    }
    merged.insert("gateway_backends_total".into(), total);
    merged.insert("gateway_backends_reporting".into(), reporting);
    // Distributed-session topology: which backend (by index) holds the
    // aggregator and each worker partition. Operators correlate the
    // indices with `gateway_backends_total` order; the dist e2e uses
    // them to find which process to SIGKILL.
    let entries: Vec<Arc<Mutex<SessionEntry>>> = inner.sessions.lock().values().cloned().collect();
    for arc in entries {
        let e = arc.lock();
        let Some(dist) = e.dist.as_ref() else {
            continue;
        };
        if e.closed_sent {
            continue;
        }
        merged.insert(format!("dist.{}.k", e.name), dist.k as u64);
        merged.insert(format!("dist.{}.aggregator", e.name), e.backend as u64);
        for (w, &(b, _)) in dist.workers.iter().enumerate() {
            merged.insert(format!("dist.{}.w{w}", e.name), b as u64);
        }
    }
    merged
}

fn count_sessions_on(inner: &Inner, b: usize) -> u64 {
    let entries: Vec<Arc<Mutex<SessionEntry>>> = inner.sessions.lock().values().cloned().collect();
    entries
        .into_iter()
        .filter(|arc| {
            let e = arc.lock();
            let holds_partition = e
                .dist
                .as_ref()
                .is_some_and(|d| d.workers.iter().any(|&(wb, _)| wb == b));
            (e.backend == b || holds_partition) && !e.closed_sent
        })
        .count() as u64
}

/// The drain state machine: `Healthy → Draining`, wait for the live
/// session count to reach zero, then `→ Removed`. Blocks the calling
/// (client connection) thread; progress is visible in the stats.
fn drain_backend(inner: &Arc<Inner>, addr: &str) -> Result<u64, String> {
    let b = inner
        .backends
        .iter()
        .position(|x| x.addr == addr && *x.health.lock() != Health::Removed)
        .ok_or_else(|| format!("unknown or already removed backend '{addr}'"))?;
    inner.metrics.drains_started.fetch_add(1, Relaxed);
    {
        let mut h = inner.backends[b].health.lock();
        match *h {
            Health::Healthy => {
                *h = Health::Draining;
                inner.metrics.backends_healthy.fetch_sub(1, Relaxed);
            }
            // A down backend holds no reachable sessions; the keeper is
            // already failing them over. Draining just waits that out.
            Health::Down { .. } => *h = Health::Draining,
            Health::Draining => {}
            Health::Removed => unreachable!("filtered above"),
        }
    }
    let live = count_sessions_on(inner, b);
    loop {
        if count_sessions_on(inner, b) == 0 {
            break;
        }
        if inner.stop.load(Relaxed) {
            return Err("gateway is shutting down".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    {
        let mut h = inner.backends[b].health.lock();
        *h = Health::Removed;
    }
    kill_conns(inner, b);
    inner.metrics.drains_completed.fetch_add(1, Relaxed);
    Ok(live)
}

// ---- the client-facing transport ------------------------------------------

/// Handles one client connection; returns whether the client asked the
/// gateway to shut down.
fn serve_connection(stream: TcpStream, inner: &Arc<Inner>) -> bool {
    inner.metrics.clients_total.fetch_add(1, Relaxed);
    inner.metrics.clients_connected.fetch_add(1, Relaxed);
    let peer_write = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            inner.metrics.clients_connected.fetch_sub(1, Relaxed);
            return false;
        }
    };
    let (sink_tx, sink_rx) = unbounded::<ServerMsg>();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(peer_write);
        for msg in sink_rx.iter() {
            let is_bye = matches!(msg, ServerMsg::Bye);
            if wire::write_frame(&mut w, &msg).is_err() || is_bye {
                return;
            }
        }
    });
    let mut r = std::io::BufReader::new(stream);
    let mut shutdown = false;
    loop {
        match wire::read_frame::<_, ClientMsg>(&mut r) {
            Ok(Some(msg)) => {
                let is_shutdown = matches!(msg, ClientMsg::Shutdown);
                handle_client_msg(inner, msg, &sink_tx);
                if is_shutdown {
                    shutdown = true;
                    break;
                }
            }
            Ok(None) => break, // clean disconnect; routed sessions stay
            Err(e) => {
                let _ = sink_tx.send(ServerMsg::Error {
                    session: None,
                    kind: None,
                    message: e.to_string(),
                });
                break;
            }
        }
    }
    drop(sink_tx);
    let _ = writer.join();
    inner.metrics.clients_connected.fetch_sub(1, Relaxed);
    shutdown
}

fn client_error(
    inner: &Inner,
    sink: &Sender<ServerMsg>,
    session: Option<String>,
    kind: Option<&str>,
    message: String,
) {
    inner.metrics.protocol_errors.fetch_add(1, Relaxed);
    let _ = sink.send(ServerMsg::Error {
        session,
        kind: kind.map(str::to_string),
        message,
    });
}

/// Claims `name` in the session map; answers `already-open` and
/// returns `false` when another session holds it.
fn register_session(
    inner: &Arc<Inner>,
    sink: &Sender<ServerMsg>,
    name: &str,
    entry: &Arc<Mutex<SessionEntry>>,
) -> bool {
    let mut map = inner.sessions.lock();
    if map.contains_key(name) {
        drop(map);
        client_error(
            inner,
            sink,
            Some(name.to_string()),
            Some(wire::error_kind::ALREADY_OPEN),
            format!("session '{name}' already open at the gateway"),
        );
        return false;
    }
    map.insert(name.to_string(), Arc::clone(entry));
    true
}

/// Opens one distributed session: places the aggregator and the K
/// worker partitions over the healthy backends by rendezvous rank,
/// verifies every involved backend speaks wire v5 (a pre-v5 monitor
/// would silently drop the `dist` key and mis-open a plain session),
/// and fans the client's open out into the role-decorated opens.
fn open_distributed(inner: &Arc<Inner>, sink: &Sender<ServerMsg>, msg: ClientMsg, k: usize) {
    let ClientMsg::Open {
        session: name,
        processes,
        vars,
        initial,
        predicates,
        ..
    } = msg.clone()
    else {
        unreachable!("caller matched an open");
    };
    if k == 0 {
        client_error(
            inner,
            sink,
            Some(name),
            None,
            "bad open: a distributed session needs at least one worker partition".into(),
        );
        return;
    }
    let ranked = rank_backends(inner, &name);
    if ranked.is_empty() {
        client_error(
            inner,
            sink,
            Some(name),
            None,
            "no healthy backend to place the session on".into(),
        );
        return;
    }
    let agg_placement = (ranked[0], slot_of(&name, inner.config.pool_size));
    let workers: Vec<(usize, usize)> = (0..k)
        .map(|w| {
            let dname = worker_session(&name, w);
            (
                ranked[(w + 1) % ranked.len()],
                slot_of(&dname, inner.config.pool_size),
            )
        })
        .collect();
    // Fail fast on any pre-v5 backend, before any state is created.
    for &(b, slot) in std::iter::once(&agg_placement).chain(workers.iter()) {
        match ensure_conn(inner, b, slot) {
            Ok((_, v)) if v < 5 => {
                client_error(
                    inner,
                    sink,
                    Some(name.clone()),
                    Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION),
                    format!(
                        "backend {} speaks wire v{v}; distributed sessions \
                         need every involved backend at v5",
                        inner.backends[b].addr
                    ),
                );
                return;
            }
            Ok(_) => {}
            Err(e) => {
                report_backend_down(inner, b);
                client_error(
                    inner,
                    sink,
                    Some(name.clone()),
                    None,
                    format!(
                        "could not reach backend {} to open the distributed \
                         session: {e}",
                        inner.backends[b].addr
                    ),
                );
                return;
            }
        }
    }
    let entry = Arc::new(Mutex::new(SessionEntry {
        name: name.clone(),
        backend: agg_placement.0,
        slot: agg_placement.1,
        sink: sink.clone(),
        journal: SessionJournal::new(inner.config.journal_limit),
        settled: BTreeSet::new(),
        opened_sent: false,
        closed_sent: false,
        dist: Some(DistState {
            k,
            workers: workers.clone(),
            next_seq: 0,
        }),
    }));
    if !register_session(inner, sink, &name, &entry) {
        return;
    }
    inner.metrics.sessions_routed.fetch_add(1, Relaxed);
    inner.metrics.sessions_active.fetch_add(1, Relaxed);
    inner.metrics.dist_sessions_routed.fetch_add(1, Relaxed);
    let mut e = entry.lock();
    // The journal records the client's own open; the derived opens are
    // recomputed at replay time, like the dist-events.
    journal_frame(inner, &mut e, msg);
    let agg_open = ClientMsg::Open {
        session: name.clone(),
        processes,
        vars: vars.clone(),
        initial: initial.clone(),
        predicates: predicates.clone(),
        dist: Some(WireDistRole::Aggregator { k }),
    };
    if send_to_backend(inner, agg_placement.0, agg_placement.1, agg_open).is_err() {
        report_backend_down(inner, agg_placement.0);
        reroute_session(inner, &mut e); // dist → drop with explanation
        return;
    }
    for (w, &(b, slot)) in workers.iter().enumerate() {
        let worker_open = ClientMsg::Open {
            session: worker_session(&name, w),
            processes,
            vars: vars.clone(),
            initial: initial.clone(),
            predicates: predicates.clone(),
            dist: Some(WireDistRole::Worker {
                origin: name.clone(),
                worker: w,
                k,
            }),
        };
        if send_to_backend(inner, b, slot, worker_open).is_err() {
            report_backend_down(inner, b);
            reroute_partition(inner, &mut e, w);
            if e.closed_sent {
                return;
            }
        }
    }
    inner.metrics.frames_forwarded.fetch_add(1, Relaxed);
}

/// The gateway's frame handler — the routing counterpart of
/// `MonitorHandle::submit`.
fn handle_client_msg(inner: &Arc<Inner>, msg: ClientMsg, sink: &Sender<ServerMsg>) {
    match msg {
        ClientMsg::Hello { version } => {
            match wire::negotiate_version(version, inner.config.wire_version) {
                Ok(version) => {
                    let _ = sink.send(ServerMsg::Welcome { version });
                }
                Err(message) => client_error(inner, sink, None, None, message),
            }
        }
        ClientMsg::Stats => {
            let _ = sink.send(ServerMsg::Stats {
                counters: aggregate_stats(inner),
            });
        }
        ClientMsg::Drain { backend } => match drain_backend(inner, &backend) {
            Ok(sessions) => {
                let _ = sink.send(ServerMsg::Drained { backend, sessions });
            }
            Err(message) => client_error(inner, sink, None, None, message),
        },
        ClientMsg::Shutdown => {
            let _ = sink.send(ServerMsg::Bye);
        }
        ClientMsg::Open {
            ref session,
            ref dist,
            ..
        } => {
            let name = session.clone();
            match dist.clone() {
                Some(_) if inner.config.wire_version < 5 => {
                    client_error(
                        inner,
                        sink,
                        Some(name),
                        Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION),
                        format!(
                            "distributed sessions need wire v5; this gateway speaks v{}",
                            inner.config.wire_version
                        ),
                    );
                }
                // Worker and aggregator roles are what the gateway
                // *assigns*; accepting one from a client would let it
                // impersonate part of another session's topology.
                Some(WireDistRole::Worker { .. }) | Some(WireDistRole::Aggregator { .. }) => {
                    client_error(
                        inner,
                        sink,
                        Some(name),
                        Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION),
                        "worker and aggregator roles are gateway-assigned; \
                         open with the 'distribute' role"
                            .into(),
                    );
                }
                Some(WireDistRole::Distribute { k }) => {
                    open_distributed(inner, sink, msg, k);
                }
                None => {
                    let Some(b) = pick_backend(inner, &name) else {
                        client_error(
                            inner,
                            sink,
                            Some(name),
                            None,
                            "no healthy backend to place the session on".into(),
                        );
                        return;
                    };
                    let entry = Arc::new(Mutex::new(SessionEntry {
                        name: name.clone(),
                        backend: b,
                        slot: slot_of(&name, inner.config.pool_size),
                        sink: sink.clone(),
                        journal: SessionJournal::new(inner.config.journal_limit),
                        settled: BTreeSet::new(),
                        opened_sent: false,
                        closed_sent: false,
                        dist: None,
                    }));
                    if !register_session(inner, sink, &name, &entry) {
                        return;
                    }
                    inner.metrics.sessions_routed.fetch_add(1, Relaxed);
                    inner.metrics.sessions_active.fetch_add(1, Relaxed);
                    let mut e = entry.lock();
                    forward_frame(inner, &mut e, msg);
                }
            }
        }
        // Inter-monitor frames are spoken by the gateway *to* backends,
        // never accepted *from* clients: the gateway owns seq
        // assignment, and a client-supplied seq would corrupt it.
        ClientMsg::DistEvent { ref session, .. } | ClientMsg::SliceUpdate { ref session, .. } => {
            client_error(
                inner,
                sink,
                Some(session.clone()),
                None,
                "dist-event/slice-update frames are inter-monitor; \
                 open a distributed session instead"
                    .into(),
            );
        }
        // A pre-v3 gateway would fail to decode an `events` frame;
        // emulate its answer so compatibility tests stay honest. (The
        // SDK never triggers this — it falls back after the handshake.)
        ClientMsg::Events { .. } if inner.config.wire_version < 3 => {
            client_error(
                inner,
                sink,
                None,
                None,
                "unknown client message 'events'".into(),
            );
        }
        // A batch journals and relays as ONE frame — it re-chunks
        // nowhere between the SDK and the backend's WAL.
        ClientMsg::Event { ref session, .. }
        | ClientMsg::Events { ref session, .. }
        | ClientMsg::FinishProcess { ref session, .. }
        | ClientMsg::Close { ref session } => {
            let Some(arc) = entry_of(inner, session) else {
                client_error(
                    inner,
                    sink,
                    Some(session.clone()),
                    None,
                    format!("no such session '{session}' at the gateway"),
                );
                return;
            };
            let mut e = arc.lock();
            // Adopt the caller's sink: a client that reconnects after a
            // drop takes over the reply stream, monitor-attach style.
            e.sink = sink.clone();
            if e.dist.is_some() {
                forward_dist_frame(inner, &mut e, msg);
            } else {
                forward_frame(inner, &mut e, msg);
            }
        }
    }
}
