//! End-to-end gateway tests against real in-process monitors over TCP.
//!
//! Topology per test: N `hb-monitor` services each serving the wire
//! protocol on a loopback listener, one gateway routing to them, and a
//! plain wire client talking to the gateway. Abrupt backend death is
//! simulated with a chaos TCP proxy whose sockets are shut down
//! mid-trace — a graceful monitor shutdown would flush sessions and
//! emit final verdicts, which is exactly what a crash does *not* do.

use hb_computation::{Computation, ComputationBuilder, VarId};
use hb_detect::ef_linear;
use hb_gateway::rendezvous;
use hb_gateway::service::{GatewayConfig, GatewayService};
use hb_monitor::{MonitorConfig, MonitorService};
use hb_predicates::{CmpOp, Conjunctive, LocalExpr};
use hb_sim::causal_shuffle;
use hb_tracefmt::wire::{
    self, read_frame, write_frame, ClientMsg, ServerMsg, WireClause, WireMode, WirePredicate,
    WireVerdict,
};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---- fixture: computation, predicate, oracle ------------------------------

/// Fig. 2(a) of the paper: the fixture every transport test reuses.
fn fig2a() -> (Computation, VarId, VarId) {
    let mut b = ComputationBuilder::new(2);
    let x0 = b.var("x0");
    let x1 = b.var("x1");
    b.internal(0).label("e1").set(x0, 1).done();
    let m = b.send(0).label("e2").set(x0, 2).done_send();
    b.internal(0).label("e3").set(x0, 3).done();
    b.internal(1).label("f1").set(x1, 1).done();
    b.receive(1, m).label("f2").set(x1, 2).done();
    b.internal(1).label("f3").set(x1, 3).done();
    (b.finish().expect("fig 2(a) is well-formed"), x0, x1)
}

fn ef_pred() -> WirePredicate {
    WirePredicate {
        id: "ef".into(),
        mode: WireMode::Conjunctive,
        clauses: vec![
            WireClause {
                process: 0,
                var: "x0".into(),
                op: "=".into(),
                value: 2,
            },
            WireClause {
                process: 1,
                var: "x1".into(),
                op: "=".into(),
                value: 1,
            },
        ],
        pattern: None,
    }
}

/// The offline least satisfying cut — the ground truth online verdicts
/// must reproduce, failover or not.
fn offline_cut(comp: &Computation, x0: VarId, x1: VarId) -> Vec<u32> {
    let p = Conjunctive::new(vec![
        (0, LocalExpr::Cmp(x0, CmpOp::Eq, 2)),
        (1, LocalExpr::Cmp(x1, CmpOp::Eq, 1)),
    ]);
    let offline = ef_linear(comp, &p);
    assert!(offline.holds);
    offline.witness.expect("witness cut").counters().to_vec()
}

fn event_msg(comp: &Computation, session: &str, e: hb_computation::EventId) -> ClientMsg {
    let state = comp.local_state(e.process, e.index as u32 + 1);
    let set: BTreeMap<String, i64> = comp
        .vars()
        .iter()
        .map(|(id, name)| (name.to_string(), state.get(id)))
        .collect();
    ClientMsg::Event {
        session: session.into(),
        p: e.process,
        clock: comp.clock(e).components().to_vec(),
        set,
    }
}

fn open_msg(session: &str) -> ClientMsg {
    ClientMsg::Open {
        session: session.into(),
        processes: 2,
        vars: vec!["x0".into(), "x1".into()],
        initial: vec![],
        predicates: vec![ef_pred()],
        dist: None,
    }
}

// ---- fixture: servers, proxy, client --------------------------------------

/// Starts a monitor serving the wire protocol on a fresh loopback port.
/// The returned service must stay alive for the test's duration.
fn start_monitor() -> (String, MonitorService) {
    let svc = MonitorService::start(MonitorConfig {
        shards: 2,
        ..MonitorConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind monitor");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = svc.handle();
    std::thread::spawn(move || {
        let _ = hb_monitor::serve(listener, handle);
    });
    (addr, svc)
}

fn start_gateway(backends: Vec<String>) -> (String, Arc<GatewayService>) {
    let gw = Arc::new(
        GatewayService::start(GatewayConfig {
            backends,
            probe_initial: Duration::from_millis(20),
            probe_cap: Duration::from_millis(200),
            ..GatewayConfig::default()
        })
        .expect("gateway starts"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind gateway");
    let addr = listener.local_addr().expect("local addr").to_string();
    {
        let gw = Arc::clone(&gw);
        std::thread::spawn(move || {
            let _ = gw.serve(listener);
        });
    }
    (addr, gw)
}

/// A TCP proxy that can die abruptly: `kill` severs every proxied
/// socket without any protocol goodbye, exactly like a SIGKILLed
/// backend host.
struct ChaosProxy {
    addr: String,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ChaosProxy {
    fn start(target: String) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("local addr").to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Relaxed) {
                        break;
                    }
                    let Ok(client) = stream else { break };
                    let Ok(upstream) = TcpStream::connect(&target) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    {
                        let mut guard = conns.lock().expect("proxy registry");
                        guard.push(client.try_clone().expect("clone"));
                        guard.push(upstream.try_clone().expect("clone"));
                    }
                    let (c2, u2) = (
                        client.try_clone().expect("clone"),
                        upstream.try_clone().expect("clone"),
                    );
                    std::thread::spawn(move || pump(client, u2));
                    std::thread::spawn(move || pump(upstream, c2));
                }
            });
        }
        ChaosProxy { addr, stop, conns }
    }

    fn kill(&self) {
        self.stop.store(true, Relaxed);
        for s in self.conns.lock().expect("proxy registry").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(&self.addr); // unblock accept
    }
}

fn pump(mut from: TcpStream, mut to: TcpStream) {
    let _ = std::io::copy(&mut from, &mut to);
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

struct Client {
    w: BufWriter<TcpStream>,
    r: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let s = TcpStream::connect(addr).expect("connect gateway");
        s.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            w: BufWriter::new(s.try_clone().expect("clone")),
            r: BufReader::new(s),
        }
    }

    fn send(&mut self, msg: &ClientMsg) {
        write_frame(&mut self.w, msg).expect("send frame");
    }

    fn recv(&mut self) -> ServerMsg {
        read_frame::<_, ServerMsg>(&mut self.r)
            .expect("well-formed frame")
            .expect("connection open")
    }
}

/// Session names that rendezvous-place on each backend in turn — so a
/// test controls placement without reaching into the gateway.
fn names_on(addrs: &[String], target: usize, count: usize, tag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while out.len() < count {
        let name = format!("{tag}-{i}");
        i += 1;
        let picked = rendezvous::pick(
            addrs.iter().enumerate().map(|(j, a)| (j, a.as_str())),
            &name,
        );
        if picked == Some(target) {
            out.push(name);
        }
    }
    out
}

/// Reads until every named session closed, returning its verdict frames.
fn collect_until_closed(
    client: &mut Client,
    sessions: &[String],
) -> BTreeMap<String, Vec<(String, WireVerdict)>> {
    let mut verdicts: BTreeMap<String, Vec<(String, WireVerdict)>> = BTreeMap::new();
    let mut open = sessions.len();
    while open > 0 {
        match client.recv() {
            ServerMsg::Verdict {
                session,
                predicate,
                verdict,
            } => verdicts
                .entry(session)
                .or_default()
                .push((predicate, verdict)),
            ServerMsg::Closed { session, discarded } => {
                assert_eq!(discarded, 0, "shuffles are permutations ({session})");
                assert!(sessions.contains(&session), "unexpected close {session}");
                open -= 1;
            }
            ServerMsg::Opened { .. } => {}
            ServerMsg::Error {
                session, message, ..
            } => {
                panic!("gateway error for {session:?}: {message}")
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    verdicts
}

// ---- tests ----------------------------------------------------------------

#[test]
fn routes_across_backends_and_matches_offline_detection() {
    let (comp, x0, x1) = fig2a();
    let least = offline_cut(&comp, x0, x1);

    let (addr_a, _svc_a) = start_monitor();
    let (addr_b, _svc_b) = start_monitor();
    let backends = vec![addr_a, addr_b];
    let (gw_addr, gw) = start_gateway(backends.clone());

    // Three sessions pinned to each backend: both sides of the hash do
    // real detection work.
    let mut sessions = names_on(&backends, 0, 3, "ra");
    sessions.extend(names_on(&backends, 1, 3, "rb"));

    let mut client = Client::connect(&gw_addr);
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    assert!(matches!(client.recv(), ServerMsg::Welcome { .. }));

    for (k, name) in sessions.iter().enumerate() {
        client.send(&open_msg(name));
        for e in causal_shuffle(&comp, k as u64 + 1, 3) {
            client.send(&event_msg(&comp, name, e));
        }
        client.send(&ClientMsg::Close {
            session: name.clone(),
        });
    }

    let verdicts = collect_until_closed(&mut client, &sessions);
    for name in &sessions {
        let v = &verdicts[name];
        assert_eq!(v.len(), 1, "one settled predicate for {name}");
        assert_eq!(v[0].0, "ef");
        assert_eq!(v[0].1, WireVerdict::Detected(least.clone()));
    }

    // The aggregated stats merge both monitors' counters with the
    // gateway's own.
    client.send(&ClientMsg::Stats);
    let ServerMsg::Stats { counters } = client.recv() else {
        panic!("expected stats");
    };
    assert_eq!(counters["sessions_opened"], 6, "summed across backends");
    assert_eq!(counters["gateway_sessions_routed"], 6);
    assert_eq!(counters["gateway_backends_total"], 2);
    assert_eq!(counters["gateway_backends_reporting"], 2);
    assert_eq!(counters["gateway_sessions_active"], 0);

    let snap = gw.metrics();
    assert_eq!(snap.sessions_failed_over, 0);
    assert_eq!(snap.sessions_dropped, 0);
    assert!(snap.frames_forwarded >= 6 * 8);
}

#[test]
fn backend_death_mid_session_fails_over_without_duplicate_or_lost_verdicts() {
    let (comp, x0, x1) = fig2a();
    let least = offline_cut(&comp, x0, x1);

    let (addr_a, _svc_a) = start_monitor();
    let (addr_b, _svc_b) = start_monitor();
    let proxy = ChaosProxy::start(addr_a);
    let backends = vec![proxy.addr.clone(), addr_b];
    let (gw_addr, gw) = start_gateway(backends.clone());

    // A session the hash places on the (proxied, doomed) backend 0.
    let name = names_on(&backends, 0, 1, "fo").remove(0);
    let order = causal_shuffle(&comp, 0xfa11, 4);
    let (first_half, second_half) = order.split_at(order.len() / 2);

    let mut client = Client::connect(&gw_addr);
    client.send(&open_msg(&name));
    for e in first_half {
        client.send(&event_msg(&comp, &name, *e));
    }
    // Barrier: a stats round-trip proves the forwarded frames reached
    // backend 0 and its replies reached us, so the kill lands genuinely
    // mid-session.
    client.send(&ClientMsg::Stats);
    let mut pre_kill: Vec<ServerMsg> = Vec::new();
    loop {
        match client.recv() {
            ServerMsg::Stats { counters } => {
                assert_eq!(counters["sessions_opened"], 1);
                break;
            }
            other => pre_kill.push(other),
        }
    }

    proxy.kill();

    for e in second_half {
        client.send(&event_msg(&comp, &name, *e));
    }
    client.send(&ClientMsg::Close {
        session: name.clone(),
    });

    // Drain the rest of the stream; combined with any pre-kill frames
    // it must contain exactly one verdict and it must equal the offline
    // least cut — no duplicates from the replayed re-detection, nothing
    // lost in the failover.
    let mut verdicts: Vec<(String, WireVerdict)> = Vec::new();
    let mut closes = 0;
    let mut queue: Vec<ServerMsg> = pre_kill;
    queue.reverse();
    while closes == 0 {
        let msg = queue.pop().unwrap_or_else(|| client.recv());
        match msg {
            ServerMsg::Verdict {
                predicate, verdict, ..
            } => verdicts.push((predicate, verdict)),
            ServerMsg::Closed { .. } => closes += 1,
            ServerMsg::Opened { .. } => {}
            ServerMsg::Error {
                session, message, ..
            } => {
                panic!("gateway error for {session:?}: {message}")
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(closes, 1);
    assert_eq!(verdicts.len(), 1, "exactly one verdict: {verdicts:?}");
    assert_eq!(verdicts[0].0, "ef");
    assert_eq!(verdicts[0].1, WireVerdict::Detected(least));

    let snap = gw.metrics();
    assert_eq!(snap.sessions_failed_over, 1);
    assert!(snap.frames_replayed > first_half.len() as u64);
    assert_eq!(snap.sessions_dropped, 0);
    assert_eq!(snap.backends_healthy, 1);
}

#[test]
fn hello_handshake_accepts_supported_and_rejects_future_versions() {
    let (addr_a, _svc_a) = start_monitor();
    let (gw_addr, _gw) = start_gateway(vec![addr_a]);

    let mut client = Client::connect(&gw_addr);
    // Negotiation echoes the client's version (capped at the server's
    // own), so an old client is welcomed at the version it can speak.
    client.send(&ClientMsg::Hello {
        version: wire::MIN_WIRE_VERSION,
    });
    match client.recv() {
        ServerMsg::Welcome { version } => assert_eq!(version, wire::MIN_WIRE_VERSION),
        other => panic!("expected welcome, got {other:?}"),
    }
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    match client.recv() {
        ServerMsg::Welcome { version } => assert_eq!(version, wire::WIRE_VERSION),
        other => panic!("expected welcome, got {other:?}"),
    }
    client.send(&ClientMsg::Hello { version: 99 });
    match client.recv() {
        ServerMsg::Error {
            session, message, ..
        } => {
            assert_eq!(session, None);
            assert!(
                message.contains("unsupported protocol version 99"),
                "{message}"
            );
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn drain_completes_after_last_session_closes_and_excludes_the_backend() {
    let (comp, x0, x1) = fig2a();
    let least = offline_cut(&comp, x0, x1);

    let (addr_a, _svc_a) = start_monitor();
    let (addr_b, _svc_b) = start_monitor();
    let backends = vec![addr_a, addr_b];
    let (gw_addr, gw) = start_gateway(backends.clone());

    // One live session pinned to backend 0, which we then drain.
    let name = names_on(&backends, 0, 1, "dr").remove(0);
    let mut client = Client::connect(&gw_addr);
    client.send(&open_msg(&name));
    assert!(matches!(client.recv(), ServerMsg::Opened { .. }));

    let drainer = {
        let gw_addr = gw_addr.clone();
        let backend = backends[0].clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&gw_addr);
            c.send(&ClientMsg::Drain { backend });
            c.recv()
        })
    };

    // The drain must be blocked on our live session; give it time to
    // enter Draining, then finish the session.
    std::thread::sleep(Duration::from_millis(100));
    for e in causal_shuffle(&comp, 7, 2) {
        client.send(&event_msg(&comp, &name, e));
    }
    client.send(&ClientMsg::Close {
        session: name.clone(),
    });
    let verdicts = collect_until_closed(&mut client, std::slice::from_ref(&name));
    assert_eq!(verdicts[&name][0].1, WireVerdict::Detected(least.clone()));

    match drainer.join().expect("drainer thread") {
        ServerMsg::Drained { backend, sessions } => {
            assert_eq!(backend, backends[0]);
            assert_eq!(sessions, 1, "the drain waited on our session");
        }
        other => panic!("expected drained, got {other:?}"),
    }

    // New sessions — even ones the full hash would place on backend 0 —
    // land on the survivor and still settle correctly.
    let moved = names_on(&backends, 0, 1, "post").remove(0);
    client.send(&open_msg(&moved));
    for e in causal_shuffle(&comp, 8, 2) {
        client.send(&event_msg(&comp, &moved, e));
    }
    client.send(&ClientMsg::Close {
        session: moved.clone(),
    });
    let verdicts = collect_until_closed(&mut client, std::slice::from_ref(&moved));
    assert_eq!(verdicts[&moved][0].1, WireVerdict::Detected(least));

    let snap = gw.metrics();
    assert_eq!(snap.drains_started, 1);
    assert_eq!(snap.drains_completed, 1);
    assert_eq!(snap.backends_healthy, 1);
    assert_eq!(snap.sessions_failed_over, 0, "drain is not failover");

    // A second drain of the same backend is an error: it is removed.
    let mut c = Client::connect(&gw_addr);
    c.send(&ClientMsg::Drain {
        backend: backends[0].clone(),
    });
    match c.recv() {
        ServerMsg::Error { message, .. } => {
            assert!(message.contains("unknown or already removed"), "{message}")
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn no_healthy_backend_is_reported_not_hung() {
    // A gateway whose only backend never existed: opens fail with an
    // explicit error once the dial gives up, and the client stays
    // connected.
    let (gw_addr, _gw) = start_gateway(vec!["127.0.0.1:1".into()]);
    let mut client = Client::connect(&gw_addr);
    client.send(&open_msg("nb-0"));
    match client.recv() {
        ServerMsg::Error {
            session, message, ..
        } => {
            assert_eq!(session.as_deref(), Some("nb-0"));
            assert!(message.contains("no healthy backend"), "{message}");
        }
        other => panic!("unexpected frame: {other:?}"),
    }
    // The synthetic close unblocks clients waiting for the session end.
    assert!(matches!(client.recv(), ServerMsg::Closed { .. }));
    // The gateway itself is still responsive.
    client.send(&ClientMsg::Hello {
        version: wire::WIRE_VERSION,
    });
    assert!(matches!(client.recv(), ServerMsg::Welcome { .. }));
}

// ---- distributed sessions -------------------------------------------------

fn dist_open_msg(session: &str, k: usize) -> ClientMsg {
    match open_msg(session) {
        ClientMsg::Open {
            session,
            processes,
            vars,
            initial,
            predicates,
            ..
        } => ClientMsg::Open {
            session,
            processes,
            vars,
            initial,
            predicates,
            dist: Some(wire::WireDistRole::Distribute { k }),
        },
        _ => unreachable!(),
    }
}

/// The gateway's deterministic distributed placement, recomputed from
/// the backend addresses: rank 0 hosts the aggregator, worker `w`
/// lands on rank `(w + 1) % len`.
fn ranked(backends: &[String], session: &str) -> Vec<usize> {
    let mut v: Vec<(u64, usize)> = backends
        .iter()
        .enumerate()
        .map(|(i, a)| (rendezvous::weight(a, session), i))
        .collect();
    v.sort_by_key(|&(w, i)| (std::cmp::Reverse(w), i));
    v.into_iter().map(|(_, i)| i).collect()
}

#[test]
fn distributed_session_detects_like_a_single_backend_and_reports_topology() {
    let (comp, x0, x1) = fig2a();
    let least = offline_cut(&comp, x0, x1);

    let (addr_a, _svc_a) = start_monitor();
    let (addr_b, _svc_b) = start_monitor();
    let (addr_c, _svc_c) = start_monitor();
    let backends = vec![addr_a, addr_b, addr_c];
    let (gw_addr, gw) = start_gateway(backends.clone());

    let name = "dist-0".to_string();
    let layout = ranked(&backends, &name);

    let mut client = Client::connect(&gw_addr);
    client.send(&dist_open_msg(&name, 2));
    for e in causal_shuffle(&comp, 0xd157, 3) {
        client.send(&event_msg(&comp, &name, e));
    }

    // Topology is visible in the aggregated stats while the session
    // lives; the indices must match the recomputed rendezvous ranking.
    client.send(&ClientMsg::Stats);
    let mut pre_close: Vec<ServerMsg> = Vec::new();
    let counters = loop {
        match client.recv() {
            ServerMsg::Stats { counters } => break counters,
            other => pre_close.push(other),
        }
    };
    assert_eq!(counters[&format!("dist.{name}.k")], 2);
    assert_eq!(
        counters[&format!("dist.{name}.aggregator")],
        layout[0] as u64
    );
    assert_eq!(counters[&format!("dist.{name}.w0")], layout[1] as u64);
    assert_eq!(counters[&format!("dist.{name}.w1")], layout[2] as u64);
    assert_eq!(counters["gateway_dist_sessions_routed"], 1);

    client.send(&ClientMsg::Close {
        session: name.clone(),
    });

    let mut verdicts: Vec<(String, WireVerdict)> = Vec::new();
    let mut queue: Vec<ServerMsg> = pre_close;
    queue.reverse();
    loop {
        let msg = queue.pop().unwrap_or_else(|| client.recv());
        match msg {
            ServerMsg::Verdict {
                predicate, verdict, ..
            } => verdicts.push((predicate, verdict)),
            ServerMsg::Closed { session, discarded } => {
                assert_eq!(session, name);
                assert_eq!(discarded, 0);
                break;
            }
            ServerMsg::Opened { .. } => {}
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(verdicts.len(), 1, "exactly one verdict: {verdicts:?}");
    assert_eq!(verdicts[0].0, "ef");
    assert_eq!(verdicts[0].1, WireVerdict::Detected(least));

    // After close the topology keys are gone, and the workers' flushed
    // slice counters aggregate through the same fan-out the plain
    // per-backend counters use.
    client.send(&ClientMsg::Stats);
    let counters = match client.recv() {
        ServerMsg::Stats { counters } => counters,
        other => panic!("unexpected frame: {other:?}"),
    };
    assert!(!counters.contains_key(&format!("dist.{name}.k")));
    assert!(counters.contains_key("slice.ef.events_in"), "{counters:?}");

    let snap = gw.metrics();
    assert_eq!(snap.dist_sessions_routed, 1);
    assert!(snap.dist_updates_relayed >= 4, "one observation per event");
    assert_eq!(snap.sessions_dropped, 0);
    assert_eq!(snap.partitions_failed_over, 0);
}

#[test]
fn worker_backend_death_mid_distributed_session_fails_over() {
    let (comp, x0, x1) = fig2a();
    let least = offline_cut(&comp, x0, x1);

    let (addr_a, _svc_a) = start_monitor();
    let (addr_b, _svc_b) = start_monitor();
    let (addr_c, _svc_c) = start_monitor();
    let proxy = ChaosProxy::start(addr_a);
    let backends = vec![proxy.addr.clone(), addr_b, addr_c];
    let (gw_addr, gw) = start_gateway(backends.clone());

    // A session whose aggregator lands AWAY from the doomed backend 0,
    // which then holds exactly one of the two worker partitions.
    let name = (0..)
        .map(|i| format!("dw-{i}"))
        .find(|n| ranked(&backends, n)[0] != 0)
        .unwrap();

    let order = causal_shuffle(&comp, 0xdead, 4);
    let (first_half, second_half) = order.split_at(order.len() / 2);

    let mut client = Client::connect(&gw_addr);
    client.send(&dist_open_msg(&name, 2));
    for e in first_half {
        client.send(&event_msg(&comp, &name, *e));
    }
    // Barrier: the stats fan-out round-trips every backend, so the
    // forwarded frames landed before the kill.
    client.send(&ClientMsg::Stats);
    let mut pre_kill: Vec<ServerMsg> = Vec::new();
    loop {
        match client.recv() {
            ServerMsg::Stats { .. } => break,
            other => pre_kill.push(other),
        }
    }

    proxy.kill();

    for e in second_half {
        client.send(&event_msg(&comp, &name, *e));
    }
    client.send(&ClientMsg::Close {
        session: name.clone(),
    });

    let mut verdicts: Vec<(String, WireVerdict)> = Vec::new();
    let mut queue: Vec<ServerMsg> = pre_kill;
    queue.reverse();
    loop {
        let msg = queue.pop().unwrap_or_else(|| client.recv());
        match msg {
            ServerMsg::Verdict {
                predicate, verdict, ..
            } => verdicts.push((predicate, verdict)),
            ServerMsg::Closed { session, discarded } => {
                assert_eq!(session, name);
                assert_eq!(discarded, 0);
                break;
            }
            ServerMsg::Opened { .. } => {}
            ServerMsg::Error {
                session, message, ..
            } => panic!("gateway error for {session:?}: {message}"),
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(verdicts.len(), 1, "exactly one verdict: {verdicts:?}");
    assert_eq!(verdicts[0].0, "ef");
    assert_eq!(verdicts[0].1, WireVerdict::Detected(least));

    let snap = gw.metrics();
    assert_eq!(snap.partitions_failed_over, 1);
    assert_eq!(snap.sessions_dropped, 0);
    assert_eq!(snap.sessions_failed_over, 0, "the aggregator never moved");
}

#[test]
fn client_supplied_worker_roles_are_refused() {
    let (addr_a, _svc_a) = start_monitor();
    let (gw_addr, _gw) = start_gateway(vec![addr_a]);
    let mut client = Client::connect(&gw_addr);
    let open = match open_msg("imp-0") {
        ClientMsg::Open {
            session,
            processes,
            vars,
            initial,
            predicates,
            ..
        } => ClientMsg::Open {
            session,
            processes,
            vars,
            initial,
            predicates,
            dist: Some(wire::WireDistRole::Worker {
                origin: "other".into(),
                worker: 0,
                k: 2,
            }),
        },
        _ => unreachable!(),
    };
    client.send(&open);
    match client.recv() {
        ServerMsg::Error { kind, message, .. } => {
            assert_eq!(
                kind.as_deref(),
                Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION)
            );
            assert!(message.contains("gateway-assigned"), "{message}");
        }
        other => panic!("unexpected frame: {other:?}"),
    }
}
