//! Birkhoff's representation theorem (Theorem 3 of the paper).
//!
//! A finite distributive lattice `L` is isomorphic to the lattice of
//! down-sets of its poset of join-irreducibles (equivalently, of up-sets
//! of its meet-irreducibles, with reversed inclusion). For the cut lattice
//! the join-irreducible poset is — by construction — isomorphic to the
//! event poset `(E, →)` itself: Birkhoff recovers the computation from its
//! lattice. This module materializes both directions and checks the
//! isomorphism, which is the formal backbone of Algorithm A2.

use crate::build::CutLattice;
use std::collections::BTreeSet;

/// Materializes the lattice of **down-sets** of the join-irreducible
/// sub-poset of `lat`, each down-set given as a sorted set of
/// join-irreducible node indices.
///
/// Exponential; intended for oracle checks on small lattices.
pub fn down_set_lattice_of_join_irreducibles(lat: &CutLattice) -> Vec<BTreeSet<usize>> {
    let ji = lat.join_irreducible_nodes();
    // leq on nodes via cut inclusion.
    let leq = |a: usize, b: usize| lat.cut(a).leq(lat.cut(b));

    // Enumerate down-sets by BFS from the empty set, adding one maximal
    // candidate at a time (standard ideal enumeration).
    let mut all: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
    let mut frontier = vec![BTreeSet::new()];
    all.insert(BTreeSet::new());
    while let Some(d) = frontier.pop() {
        for &x in &ji {
            if d.contains(&x) {
                continue;
            }
            // x can be added iff everything below x is already in d.
            if ji.iter().all(|&y| y == x || !leq(y, x) || d.contains(&y)) {
                let mut d2 = d.clone();
                d2.insert(x);
                if all.insert(d2.clone()) {
                    frontier.push(d2);
                }
            }
        }
    }
    all.into_iter().collect()
}

/// Verifies Birkhoff's theorem on `lat`: the map
/// `a ↦ {x ∈ J(L) | x ≤ a}` is an order isomorphism from `L` onto the
/// down-set lattice of `J(L)`. Returns `true` iff the check passes.
///
/// Exponential; a test oracle.
pub fn verify_birkhoff(lat: &CutLattice) -> bool {
    let ji = lat.join_irreducible_nodes();
    let down_sets = down_set_lattice_of_join_irreducibles(lat);

    // Image of each lattice element.
    let f = |a: usize| -> BTreeSet<usize> {
        ji.iter()
            .copied()
            .filter(|&x| lat.cut(x).leq(lat.cut(a)))
            .collect()
    };

    let images: Vec<BTreeSet<usize>> = (0..lat.len()).map(f).collect();

    // Injective + surjective onto the down-set lattice.
    let image_set: BTreeSet<&BTreeSet<usize>> = images.iter().collect();
    if image_set.len() != lat.len() {
        return false;
    }
    if down_sets.len() != lat.len() {
        return false;
    }
    for d in &down_sets {
        if !image_set.contains(d) {
            return false;
        }
    }

    // Order preserving in both directions.
    for a in 0..lat.len() {
        for b in 0..lat.len() {
            let lhs = lat.cut(a).leq(lat.cut(b));
            let rhs = images[a].is_subset(&images[b]);
            if lhs != rhs {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    #[test]
    fn birkhoff_holds_on_grid() {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(0).done();
        b.internal(1).done();
        let lat = CutLattice::build(&b.finish().unwrap());
        assert!(verify_birkhoff(&lat));
    }

    #[test]
    fn birkhoff_holds_with_messages() {
        let mut b = ComputationBuilder::new(3);
        let m1 = b.send(0).done_send();
        b.receive(1, m1).done();
        let m2 = b.send(1).done_send();
        b.receive(2, m2).done();
        b.internal(0).done();
        let lat = CutLattice::build(&b.finish().unwrap());
        assert!(verify_birkhoff(&lat));
    }

    #[test]
    fn down_set_count_equals_lattice_size() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).done_send();
        b.internal(0).done();
        b.receive(1, m).done();
        b.internal(1).done();
        let lat = CutLattice::build(&b.finish().unwrap());
        assert_eq!(down_set_lattice_of_join_irreducibles(&lat).len(), lat.len());
    }

    #[test]
    fn join_irreducible_poset_mirrors_event_poset() {
        // Birkhoff direction two: the J(L) sub-poset is (E, →) itself.
        let mut b = ComputationBuilder::new(2);
        let m = b.send(0).label("a").done_send();
        b.internal(0).label("b").done();
        b.receive(1, m).label("c").done();
        let comp = b.finish().unwrap();
        let lat = CutLattice::build(&comp);
        let ji = lat.join_irreducible_nodes();
        assert_eq!(ji.len(), comp.num_events());
        // ↓a ⊆ ↓c iff a → c or a = c.
        let ids: Vec<_> = comp.event_ids().collect();
        for &e in &ids {
            for &f in &ids {
                let pe = comp.causal_past_cut(e);
                let pf = comp.causal_past_cut(f);
                assert_eq!(
                    pe.leq(&pf),
                    e == f || comp.happened_before(e, f),
                    "events {e}, {f}"
                );
            }
        }
    }
}
