//! BFS construction of the cut lattice.

use hb_computation::{Computation, Cut};
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;

/// The lattice construction hit the configured node cap.
///
/// Returned by [`CutLattice::try_build`]; the cap is what keeps exponential
/// baselines honest in benchmarks instead of hanging the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatticeLimitExceeded {
    /// The cap that was exceeded.
    pub limit: usize,
}

impl fmt::Display for LatticeLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cut lattice exceeds {} nodes", self.limit)
    }
}

impl std::error::Error for LatticeLimitExceeded {}

/// The explicitly materialized lattice of consistent cuts.
///
/// Nodes are stored level by level (rank order), so node indices are
/// topologically sorted: every edge goes from a lower index to a higher
/// one. This makes the backward fixpoints of the baseline model checker a
/// single reverse sweep.
#[derive(Debug, Clone)]
pub struct CutLattice {
    cuts: Vec<Cut>,
    index: HashMap<Cut, usize>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    /// First node index of each rank (plus a final sentinel).
    rank_offsets: Vec<usize>,
}

impl CutLattice {
    /// Builds the full lattice of consistent cuts by level-synchronous BFS.
    ///
    /// Exponential in the number of processes; prefer
    /// [`CutLattice::try_build`] when the input is not known to be tiny.
    pub fn build(comp: &Computation) -> CutLattice {
        Self::try_build(comp, usize::MAX).expect("unbounded build cannot exceed limit")
    }

    /// Builds the lattice, giving up once more than `limit` cuts exist.
    /// Successor generation and edge construction run on the Rayon pool
    /// once levels are large enough to amortize the fork cost.
    pub fn try_build(comp: &Computation, limit: usize) -> Result<CutLattice, LatticeLimitExceeded> {
        Self::try_build_impl(comp, limit, true)
    }

    /// Single-threaded variant of [`CutLattice::try_build`] — the
    /// comparator for the parallel-construction ablation benchmark.
    pub fn try_build_sequential(
        comp: &Computation,
        limit: usize,
    ) -> Result<CutLattice, LatticeLimitExceeded> {
        Self::try_build_impl(comp, limit, false)
    }

    fn try_build_impl(
        comp: &Computation,
        limit: usize,
        parallel: bool,
    ) -> Result<CutLattice, LatticeLimitExceeded> {
        let mut cuts: Vec<Cut> = vec![comp.initial_cut()];
        let mut index: HashMap<Cut, usize> = HashMap::new();
        index.insert(comp.initial_cut(), 0);
        let mut rank_offsets = vec![0usize];
        let mut level: Vec<Cut> = vec![comp.initial_cut()];

        while !level.is_empty() {
            rank_offsets.push(cuts.len());
            // Generate successors in parallel, then dedup sequentially.
            let next_raw: Vec<Cut> = if parallel && level.len() >= 64 {
                level
                    .par_iter()
                    .flat_map_iter(|g| comp.successors(g))
                    .collect()
            } else {
                level.iter().flat_map(|g| comp.successors(g)).collect()
            };
            let mut next = Vec::new();
            for h in next_raw {
                if !index.contains_key(&h) {
                    index.insert(h.clone(), cuts.len());
                    cuts.push(h.clone());
                    if cuts.len() > limit {
                        return Err(LatticeLimitExceeded { limit });
                    }
                    next.push(h);
                }
            }
            level = next;
        }
        // The loop pushes one offset per processed level; normalize so that
        // rank_offsets[r] is the first node of rank r and the last entry is
        // the node count.
        rank_offsets[0] = 0;
        *rank_offsets.last_mut().expect("nonempty") = cuts.len();

        // Edges: successor lookup now that indices are fixed.
        let succ: Vec<Vec<usize>> = if parallel {
            cuts.par_iter()
                .map(|g| comp.successors(g).into_iter().map(|h| index[&h]).collect())
                .collect()
        } else {
            cuts.iter()
                .map(|g| comp.successors(g).into_iter().map(|h| index[&h]).collect())
                .collect()
        };
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); cuts.len()];
        for (g, hs) in succ.iter().enumerate() {
            for &h in hs {
                pred[h].push(g);
            }
        }

        Ok(CutLattice {
            cuts,
            index,
            succ,
            pred,
            rank_offsets,
        })
    }

    /// Number of consistent cuts `|C(E)|`.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// True iff the lattice is trivial (it never is: `∅` always exists).
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// The cut stored at a node index.
    pub fn cut(&self, i: usize) -> &Cut {
        &self.cuts[i]
    }

    /// All cuts in rank (topological) order.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// The node index of a cut, if it is a consistent cut.
    pub fn index_of(&self, g: &Cut) -> Option<usize> {
        self.index.get(g).copied()
    }

    /// Node index of the initial cut `∅`.
    pub fn bottom(&self) -> usize {
        0
    }

    /// Node index of the final cut `E`.
    pub fn top(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Successor node indices (the covering relation `▷`).
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// Predecessor node indices.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.pred[i]
    }

    /// Number of ranks (= |E| of the computation, plus one).
    pub fn num_ranks(&self) -> usize {
        self.rank_offsets.len() - 1
    }

    /// The node indices of rank `r`.
    pub fn rank_nodes(&self, r: usize) -> std::ops::Range<usize> {
        self.rank_offsets[r]..self.rank_offsets[r + 1]
    }

    /// Node index of the join (union) of two nodes.
    pub fn join(&self, a: usize, b: usize) -> usize {
        self.index[&self.cuts[a].join(&self.cuts[b])]
    }

    /// Node index of the meet (intersection) of two nodes.
    pub fn meet(&self, a: usize, b: usize) -> usize {
        self.index[&self.cuts[a].meet(&self.cuts[b])]
    }

    /// Exhaustively verifies the distributive-lattice laws — `O(|L|³)`,
    /// a test oracle only.
    pub fn is_distributive_lattice(&self) -> bool {
        let n = self.len();
        for a in 0..n {
            for b in 0..n {
                let j = self.cuts[a].join(&self.cuts[b]);
                let m = self.cuts[a].meet(&self.cuts[b]);
                if !self.index.contains_key(&j) || !self.index.contains_key(&m) {
                    return false;
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let lhs = self.meet(a, self.join(b, c));
                    let rhs = self.join(self.meet(a, b), self.meet(a, c));
                    if lhs != rhs {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    fn two_by_two() -> Computation {
        // Two independent processes with two events each: a 3×3 grid.
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(0).done();
        b.internal(1).done();
        b.internal(1).done();
        b.finish().unwrap()
    }

    #[test]
    fn grid_lattice_has_nine_cuts() {
        let comp = two_by_two();
        let lat = CutLattice::build(&comp);
        assert_eq!(lat.len(), 9);
        assert_eq!(lat.num_ranks(), 5); // ranks 0..=4
        assert_eq!(lat.cut(lat.bottom()), &comp.initial_cut());
        assert_eq!(lat.cut(lat.top()), &comp.final_cut());
    }

    #[test]
    fn indices_are_topologically_ordered() {
        let lat = CutLattice::build(&two_by_two());
        for i in 0..lat.len() {
            for &s in lat.successors(i) {
                assert!(s > i);
                assert!(lat.cut(i).covers_step(lat.cut(s)));
            }
        }
    }

    #[test]
    fn rank_nodes_partition_by_rank() {
        let lat = CutLattice::build(&two_by_two());
        for r in 0..lat.num_ranks() {
            for i in lat.rank_nodes(r) {
                assert_eq!(lat.cut(i).rank() as usize, r);
            }
        }
        let total: usize = (0..lat.num_ranks()).map(|r| lat.rank_nodes(r).len()).sum();
        assert_eq!(total, lat.len());
    }

    #[test]
    fn grid_is_distributive() {
        assert!(CutLattice::build(&two_by_two()).is_distributive_lattice());
    }

    #[test]
    fn message_constrains_lattice() {
        // Fig. 2(a)-style: message removes cuts where recv ∈ G but send ∉ G.
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        let m = b.send(0).done_send();
        b.internal(1).done();
        b.receive(1, m).done();
        let comp = b.finish().unwrap();
        let lat = CutLattice::build(&comp);
        // Grid would be 9; cuts (0,2) and (1,2) are inconsistent.
        assert_eq!(lat.len(), 7);
        assert!(lat.index_of(&Cut::from_counters(vec![0, 2])).is_none());
        assert!(lat.index_of(&Cut::from_counters(vec![2, 2])).is_some());
    }

    #[test]
    fn try_build_respects_limit() {
        let comp = two_by_two();
        assert_eq!(
            CutLattice::try_build(&comp, 4).unwrap_err(),
            LatticeLimitExceeded { limit: 4 }
        );
        assert!(CutLattice::try_build(&comp, 9).is_ok());
    }

    #[test]
    fn join_meet_agree_with_cut_ops() {
        let lat = CutLattice::build(&two_by_two());
        for a in 0..lat.len() {
            for b in 0..lat.len() {
                assert_eq!(lat.cut(lat.join(a, b)), &lat.cut(a).join(lat.cut(b)));
                assert_eq!(lat.cut(lat.meet(a, b)), &lat.cut(a).meet(lat.cut(b)));
            }
        }
    }

    #[test]
    fn empty_computation_has_single_cut() {
        let comp = ComputationBuilder::new(2).finish().unwrap();
        let lat = CutLattice::build(&comp);
        assert_eq!(lat.len(), 1);
        assert_eq!(lat.bottom(), lat.top());
    }
}
