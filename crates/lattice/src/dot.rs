//! DOT export of cut lattices — regenerates the paper's Fig. 2(b) and
//! Fig. 4(b) Hasse diagrams, with optional highlighting (the figures mark
//! meet-irreducible cuts with filled circles and predicate-satisfying cuts
//! with patterns).

use crate::build::CutLattice;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Highlighting instructions for [`CutLattice::to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotStyle {
    /// Node indices drawn filled (the paper fills meet-irreducibles).
    pub filled: Vec<usize>,
    /// Node indices drawn with a patterned (dashed) border.
    pub patterned: Vec<usize>,
}

impl CutLattice {
    /// Renders the Hasse diagram bottom-up.
    pub fn to_dot(&self, style: &DotStyle) -> String {
        let filled: HashSet<usize> = style.filled.iter().copied().collect();
        let patterned: HashSet<usize> = style.patterned.iter().copied().collect();
        let mut out = String::new();
        let _ = writeln!(out, "digraph lattice {{");
        let _ = writeln!(out, "  rankdir=BT;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=9];");
        for i in 0..self.len() {
            let mut attrs = format!("label=\"{}\"", self.cut(i));
            if filled.contains(&i) {
                attrs.push_str(", style=filled, fillcolor=gray");
            } else if patterned.contains(&i) {
                attrs.push_str(", style=dashed");
            }
            let _ = writeln!(out, "  n{i} [{attrs}];");
        }
        for i in 0..self.len() {
            for &s in self.successors(i) {
                let _ = writeln!(out, "  n{i} -> n{s};");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    #[test]
    fn dot_highlights_requested_nodes() {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(1).done();
        let lat = CutLattice::build(&b.finish().unwrap());
        let style = DotStyle {
            filled: lat.meet_irreducible_nodes(),
            patterned: vec![lat.bottom()],
        };
        let dot = lat.to_dot(&style);
        assert!(dot.contains("digraph lattice"));
        assert!(dot.contains("style=filled"));
        assert!(dot.contains("style=dashed"));
        // Every edge of the Hasse diagram appears.
        let edges: usize = (0..lat.len()).map(|i| lat.successors(i).len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }
}
