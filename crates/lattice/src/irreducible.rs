//! Join- and meet-irreducible elements (Definition 1 of the paper).
//!
//! In a finite distributive lattice an element is join-irreducible iff it
//! has exactly one lower cover, and meet-irreducible iff it has exactly one
//! upper cover. For the lattice of consistent cuts these have a direct
//! structural characterization on the computation itself:
//!
//! * join-irreducibles are exactly the causal pasts `↓e`
//!   ([`hb_computation::Computation::causal_past_cut`]), and
//! * meet-irreducibles are exactly the complements `E − ↑e`
//!   ([`hb_computation::Computation::excluding_cut`]),
//!
//! one per event `e ∈ E` (with duplicates possible only when two events
//! have identical pasts, which cannot happen since an event is always in
//! its own past). Algorithm A2 of the paper rests on the meet-irreducible
//! set; this module provides the lattice-side definitions used as the test
//! oracle for those direct characterizations.

use crate::build::CutLattice;
use hb_computation::{Computation, Cut};

impl CutLattice {
    /// Node indices with exactly one upper cover — `M(L)`, the
    /// meet-irreducible elements (the filled circles of the paper's
    /// Fig. 2b).
    pub fn meet_irreducible_nodes(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.successors(i).len() == 1)
            .collect()
    }

    /// Node indices with exactly one lower cover — `J(L)`, the
    /// join-irreducible elements.
    pub fn join_irreducible_nodes(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.predecessors(i).len() == 1)
            .collect()
    }

    /// The meet-irreducible cuts themselves, sorted.
    pub fn meet_irreducible_cuts(&self) -> Vec<Cut> {
        let mut v: Vec<Cut> = self
            .meet_irreducible_nodes()
            .into_iter()
            .map(|i| self.cut(i).clone())
            .collect();
        v.sort_by(|a, b| a.counters().cmp(b.counters()));
        v
    }

    /// The join-irreducible cuts themselves, sorted.
    pub fn join_irreducible_cuts(&self) -> Vec<Cut> {
        let mut v: Vec<Cut> = self
            .join_irreducible_nodes()
            .into_iter()
            .map(|i| self.cut(i).clone())
            .collect();
        v.sort_by(|a, b| a.counters().cmp(b.counters()));
        v
    }
}

/// The meet-irreducible cuts computed **directly from the computation** in
/// `O(n|E| log|E|)` — one cut `E − ↑e` per event — without building the
/// lattice. This is the engine behind Algorithm A2.
pub fn meet_irreducibles_direct(comp: &Computation) -> Vec<Cut> {
    let mut v: Vec<Cut> = comp.event_ids().map(|e| comp.excluding_cut(e)).collect();
    v.sort_by(|a, b| a.counters().cmp(b.counters()));
    v.dedup();
    v
}

/// The join-irreducible cuts computed directly: one causal past `↓e` per
/// event.
pub fn join_irreducibles_direct(comp: &Computation) -> Vec<Cut> {
    let mut v: Vec<Cut> = comp.event_ids().map(|e| comp.causal_past_cut(e)).collect();
    v.sort_by(|a, b| a.counters().cmp(b.counters()));
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    /// The paper's Fig. 2(a).
    fn fig2() -> Computation {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).label("e1").done();
        let m = b.send(0).label("e2").done_send();
        b.internal(0).label("e3").done();
        b.internal(1).label("f1").done();
        b.receive(1, m).label("f2").done();
        b.internal(1).label("f3").done();
        b.finish().unwrap()
    }

    #[test]
    fn direct_meet_irreducibles_match_lattice_definition() {
        let comp = fig2();
        let lat = CutLattice::build(&comp);
        assert_eq!(lat.meet_irreducible_cuts(), meet_irreducibles_direct(&comp));
    }

    #[test]
    fn direct_join_irreducibles_match_lattice_definition() {
        let comp = fig2();
        let lat = CutLattice::build(&comp);
        assert_eq!(lat.join_irreducible_cuts(), join_irreducibles_direct(&comp));
    }

    #[test]
    fn one_irreducible_per_event() {
        let comp = fig2();
        assert_eq!(join_irreducibles_direct(&comp).len(), comp.num_events());
        assert_eq!(meet_irreducibles_direct(&comp).len(), comp.num_events());
    }

    #[test]
    fn every_cut_is_meet_of_meet_irreducibles_above_it() {
        // Corollary 4 of the paper.
        let comp = fig2();
        let lat = CutLattice::build(&comp);
        let mirr = lat.meet_irreducible_cuts();
        for i in 0..lat.len() {
            let a = lat.cut(i);
            if a == &comp.final_cut() {
                continue;
            }
            let mut acc = comp.final_cut();
            for x in mirr.iter().filter(|x| a.leq(x)) {
                acc = acc.meet(x);
            }
            assert_eq!(&acc, a, "cut {a} is not the meet of M(L) above it");
        }
    }

    #[test]
    fn top_is_never_meet_irreducible_bottom_never_join_irreducible() {
        let comp = fig2();
        let lat = CutLattice::build(&comp);
        assert!(!lat.meet_irreducible_nodes().contains(&lat.top()));
        assert!(!lat.join_irreducible_nodes().contains(&lat.bottom()));
    }
}
