//! The explicit lattice of consistent cuts `L = (C(E), ⊆)`.
//!
//! The paper's detection algorithms exist precisely to *avoid* building
//! this object — the number of consistent cuts is exponential in the
//! number of processes (the state-explosion problem, Section 1). This
//! crate materializes it anyway, for three reasons:
//!
//! 1. It is the **baseline**: the explicit-lattice CTL model checker in
//!    `hb-detect` labels this structure, exactly the comparison the paper
//!    argues against analytically (experiment S2 in DESIGN.md).
//! 2. It is the **oracle**: every structural algorithm is property-tested
//!    against ground-truth semantics evaluated on this lattice.
//! 3. It regenerates the paper's **figures** (the lattice diagrams of
//!    Fig. 2b and Fig. 4b, with meet-irreducible cuts highlighted).
//!
//! The crate also implements the lattice theory of Section 5:
//! join-/meet-irreducible elements and Birkhoff's representation theorem
//! (Theorem 3 and Corollary 4).
//!
//! # Example
//!
//! ```
//! use hb_computation::ComputationBuilder;
//! use hb_lattice::CutLattice;
//!
//! let mut b = ComputationBuilder::new(2);
//! let m = b.send(0).done_send();
//! b.receive(1, m).done();
//! let comp = b.finish().unwrap();
//!
//! let lat = CutLattice::build(&comp);
//! assert_eq!(lat.len(), 3); // {}, {send}, {send, recv}
//! assert!(lat.is_distributive_lattice());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod birkhoff;
mod build;
mod dot;
mod irreducible;
mod paths;

pub use birkhoff::{down_set_lattice_of_join_irreducibles, verify_birkhoff};
pub use build::{CutLattice, LatticeLimitExceeded};
pub use dot::DotStyle;
pub use irreducible::{join_irreducibles_direct, meet_irreducibles_direct};
pub use paths::PathCounts;
