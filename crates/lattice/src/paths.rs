//! Counting and enumerating maximal consistent-cut sequences.
//!
//! A maximal sequence (the paper's path notion) adds one event per step,
//! so paths from `∅` to `E` are exactly the linear extensions of the event
//! poset. Their number is what makes naive "check every observation"
//! detection hopeless; the `tables` harness reports these counts alongside
//! lattice sizes for experiment S2.

use crate::build::CutLattice;

/// Path statistics of a cut lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathCounts {
    /// Number of maximal paths `∅ → E` (linear extensions), saturating at
    /// `u128::MAX`.
    pub total_paths: u128,
    /// Number of consistent cuts.
    pub num_cuts: usize,
    /// Number of cuts at the widest rank.
    pub widest_rank: usize,
}

impl CutLattice {
    /// Counts maximal paths by a single topological sweep.
    pub fn path_counts(&self) -> PathCounts {
        let mut ways = vec![0u128; self.len()];
        ways[self.bottom()] = 1;
        for i in 0..self.len() {
            let w = ways[i];
            if w == 0 {
                continue;
            }
            for &s in self.successors(i) {
                ways[s] = ways[s].saturating_add(w);
            }
        }
        let widest = (0..self.num_ranks())
            .map(|r| self.rank_nodes(r).len())
            .max()
            .unwrap_or(0);
        PathCounts {
            total_paths: ways[self.top()],
            num_cuts: self.len(),
            widest_rank: widest,
        }
    }

    /// Counts the maximal paths `∅ → E` that stay entirely within the
    /// nodes accepted by `keep` — i.e. the number of observations
    /// witnessing `EG` of the predicate that `keep` encodes (zero iff
    /// `EG` fails). Saturating; one topological sweep.
    pub fn count_paths_through(&self, mut keep: impl FnMut(usize) -> bool) -> u128 {
        let mut ways = vec![0u128; self.len()];
        if !keep(self.bottom()) {
            return 0;
        }
        ways[self.bottom()] = 1;
        for i in 0..self.len() {
            let w = ways[i];
            if w == 0 {
                continue;
            }
            for &s in self.successors(i) {
                if keep(s) {
                    ways[s] = ways[s].saturating_add(w);
                }
            }
        }
        ways[self.top()]
    }

    /// Enumerates up to `limit` maximal paths as sequences of node
    /// indices. Exponential; a test helper for raw-semantics oracles.
    pub fn maximal_paths(&self, limit: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut stack = vec![vec![self.bottom()]];
        while let Some(path) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            let last = *path.last().expect("path nonempty");
            if last == self.top() {
                out.push(path);
                continue;
            }
            for &s in self.successors(last) {
                let mut p = path.clone();
                p.push(s);
                stack.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_computation::ComputationBuilder;

    #[test]
    fn grid_paths_are_binomials() {
        // Two independent processes with a and b events: C(a+b, a) paths.
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        b.internal(0).done();
        b.internal(1).done();
        b.internal(1).done();
        let lat = CutLattice::build(&b.finish().unwrap());
        let pc = lat.path_counts();
        assert_eq!(pc.total_paths, 6); // C(4,2)
        assert_eq!(pc.num_cuts, 9);
        assert_eq!(pc.widest_rank, 3);
    }

    #[test]
    fn chain_has_one_path() {
        let mut b = ComputationBuilder::new(1);
        for _ in 0..5 {
            b.internal(0).done();
        }
        let lat = CutLattice::build(&b.finish().unwrap());
        assert_eq!(lat.path_counts().total_paths, 1);
        assert_eq!(lat.maximal_paths(10).len(), 1);
    }

    #[test]
    fn enumeration_matches_count() {
        let mut b = ComputationBuilder::new(2);
        b.internal(0).done();
        let m = b.send(0).done_send();
        b.internal(1).done();
        b.receive(1, m).done();
        let lat = CutLattice::build(&b.finish().unwrap());
        let pc = lat.path_counts();
        let paths = lat.maximal_paths(usize::MAX);
        assert_eq!(paths.len() as u128, pc.total_paths);
        // Every enumerated path is a valid cover chain ∅ → E.
        for p in &paths {
            assert_eq!(p[0], lat.bottom());
            assert_eq!(*p.last().unwrap(), lat.top());
            for w in p.windows(2) {
                assert!(lat.successors(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn limit_truncates_enumeration() {
        let mut b = ComputationBuilder::new(2);
        for _ in 0..3 {
            b.internal(0).done();
            b.internal(1).done();
        }
        let lat = CutLattice::build(&b.finish().unwrap());
        assert_eq!(lat.maximal_paths(4).len(), 4);
    }
}
