//! Property tests over random computations: the lattice of consistent
//! cuts really is a finite distributive lattice; Birkhoff's theorem holds;
//! the direct irreducible characterizations match the definitions; path
//! counts match enumeration.

use hb_computation::{Computation, ComputationBuilder};
use hb_lattice::{join_irreducibles_direct, meet_irreducibles_direct, verify_birkhoff, CutLattice};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Internal(usize),
    Send(usize),
    Receive(usize),
}

fn plan(n_procs: usize, max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0..n_procs, 0u8..3), 0..max_ops).prop_map(|raw| {
        raw.into_iter()
            .map(|(p, k)| match k {
                0 => Op::Internal(p),
                1 => Op::Send(p),
                _ => Op::Receive(p),
            })
            .collect()
    })
}

fn build(n_procs: usize, ops: &[Op]) -> Computation {
    let mut b = ComputationBuilder::new(n_procs);
    let mut pending = std::collections::VecDeque::new();
    for op in ops {
        match *op {
            Op::Internal(p) => {
                b.internal(p).done();
            }
            Op::Send(p) => pending.push_back(b.send(p).done_send()),
            Op::Receive(p) => match pending.pop_front() {
                Some(tok) => {
                    b.receive(p, tok).done();
                }
                None => {
                    b.internal(p).done();
                }
            },
        }
    }
    let mut p = 0usize;
    while let Some(tok) = pending.pop_front() {
        b.receive(p % n_procs, tok).done();
        p += 1;
    }
    b.finish().expect("plan builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lattice_is_distributive(ops in plan(3, 9)) {
        let comp = build(3, &ops);
        let lat = CutLattice::build(&comp);
        prop_assert!(lat.is_distributive_lattice());
    }

    #[test]
    fn birkhoff_representation_holds(ops in plan(3, 8)) {
        let comp = build(3, &ops);
        let lat = CutLattice::build(&comp);
        prop_assert!(verify_birkhoff(&lat));
    }

    #[test]
    fn direct_irreducibles_match_lattice_definitions(ops in plan(3, 10)) {
        let comp = build(3, &ops);
        let lat = CutLattice::build(&comp);
        prop_assert_eq!(
            lat.meet_irreducible_cuts(),
            meet_irreducibles_direct(&comp)
        );
        prop_assert_eq!(
            lat.join_irreducible_cuts(),
            join_irreducibles_direct(&comp)
        );
        // Exactly one irreducible of each kind per event (Birkhoff).
        prop_assert_eq!(
            meet_irreducibles_direct(&comp).len(),
            comp.num_events()
        );
        prop_assert_eq!(
            join_irreducibles_direct(&comp).len(),
            comp.num_events()
        );
    }

    #[test]
    fn path_counts_match_enumeration(ops in plan(3, 7)) {
        let comp = build(3, &ops);
        let lat = CutLattice::build(&comp);
        let pc = lat.path_counts();
        let enumerated = lat.maximal_paths(usize::MAX);
        prop_assert_eq!(enumerated.len() as u128, pc.total_paths);
    }

    #[test]
    fn lattice_cuts_equal_consistent_counter_vectors(ops in plan(3, 9)) {
        let comp = build(3, &ops);
        let lat = CutLattice::build(&comp);
        let mut count = 0usize;
        let maxes: Vec<u32> = (0..3).map(|i| comp.num_events_of(i) as u32).collect();
        for a in 0..=maxes[0] {
            for b in 0..=maxes[1] {
                for c in 0..=maxes[2] {
                    let g = hb_computation::Cut::from_counters(vec![a, b, c]);
                    let in_lattice = lat.index_of(&g).is_some();
                    prop_assert_eq!(in_lattice, comp.is_consistent(&g), "{}", g);
                    if in_lattice {
                        count += 1;
                    }
                }
            }
        }
        prop_assert_eq!(count, lat.len());
    }

    #[test]
    fn rank_structure_is_graded(ops in plan(4, 10)) {
        let comp = build(4, &ops);
        let lat = CutLattice::build(&comp);
        // Ranks partition the nodes, each node's rank is its cut's rank,
        // and every edge raises rank by exactly one.
        for r in 0..lat.num_ranks() {
            for i in lat.rank_nodes(r) {
                prop_assert_eq!(lat.cut(i).rank() as usize, r);
            }
        }
        for i in 0..lat.len() {
            for &s in lat.successors(i) {
                prop_assert_eq!(lat.cut(s).rank(), lat.cut(i).rank() + 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_and_sequential_builds_agree(ops in plan(3, 9)) {
        let comp = build(3, &ops);
        let par = CutLattice::try_build(&comp, usize::MAX).unwrap();
        let seq = CutLattice::try_build_sequential(&comp, usize::MAX).unwrap();
        prop_assert_eq!(par.len(), seq.len());
        prop_assert_eq!(par.cuts(), seq.cuts());
        for i in 0..par.len() {
            prop_assert_eq!(par.successors(i), seq.successors(i));
        }
    }
}
