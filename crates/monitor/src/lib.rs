//! hb-monitor: a streaming online-detection service.
//!
//! This crate turns the library's on-line detectors
//! ([`hb_detect::online`]) into a long-running **monitoring service**:
//! processes of a distributed computation stream vector-clock-stamped
//! events to the monitor as they execute, and the monitor answers with
//! temporal-logic verdicts — `EF φ` detected at its least satisfying
//! cut, or impossible — while the computation is still running.
//!
//! Three layers, bottom up:
//!
//! - [`buffer`] — per-session **causal delivery**: events may arrive in
//!   any order consistent with transport reordering; a bounded hold
//!   buffer releases them in a causally-consistent order (an event is
//!   delivered only when its vector clock says every causal
//!   predecessor already was). Capacity overflow is an explicit policy:
//!   reject with backpressure, or drop newest.
//! - [`session`] — one monitored computation: variable namespace,
//!   per-process local states, registered predicates, and one on-line
//!   detector per predicate fed by the causal buffer.
//! - [`service`] — the shared runtime: sessions sharded across worker
//!   threads, an in-process client handle, a TCP wire-protocol
//!   transport (see [`hb_tracefmt::wire`]), atomic [`metrics`], and
//!   graceful shutdown that flushes every session to a final verdict.
//! - [`persist`] — durable state: with a data directory configured, the
//!   service write-ahead-logs every client message (via [`hb_store`])
//!   before acknowledging it and snapshots all sessions periodically,
//!   so a crashed monitor restarts exactly where it stopped.

#![warn(missing_docs)]

/// Per-session causal delivery buffering. The implementation moved to
/// [`hb_dist`] so the distributed aggregator can replicate the exact
/// single-backend hold/duplicate/overflow behavior; this alias keeps
/// the monitor-side paths working.
pub use hb_dist::buffer;
pub mod metrics;
pub mod persist;
pub mod service;
pub mod session;

pub use buffer::{CausalBuffer, Delivered, IngestError, OverflowPolicy};
pub use metrics::{Metrics, MetricsSnapshot};
pub use persist::{
    AggregatorSlotSnapshot, PersistConfig, ServiceSnapshot, SessionSnapshot, WorkerSlotSnapshot,
};
pub use service::{serve, MonitorConfig, MonitorHandle, MonitorService};
pub use session::{Session, SessionError, SessionLimits, VerdictEvent};
