//! Service observability.
//!
//! One [`Metrics`] instance is shared (via `Arc`) by every shard worker,
//! transport thread, and the stats reporter. All fields are relaxed
//! atomics — the numbers are monitoring data, not synchronization — so
//! the hot ingestion path pays one uncontended fetch-add per event.
//!
//! Counters only grow; gauges (`sessions_active`, `events_held`) move
//! both ways and are paired with a monotone high-water mark sampled at
//! every increase.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Shared counters and gauges for one monitor service.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Events accepted off a transport (before causal buffering).
    pub events_ingested: AtomicU64,
    /// Batched `events` frames accepted (wire v3); their members are
    /// also counted individually in `events_ingested`.
    pub batches_ingested: AtomicU64,
    /// Events released by causal buffers to detectors.
    pub events_delivered: AtomicU64,
    /// Events currently held back awaiting predecessors (gauge).
    pub events_held: AtomicU64,
    /// Most events ever held at once, across all sessions.
    pub events_held_high_water: AtomicU64,
    /// Duplicate events rejected.
    pub events_duplicate: AtomicU64,
    /// Events refused with backpressure (hold space full, Reject policy).
    pub events_rejected: AtomicU64,
    /// Events dropped (hold space full, DropNewest policy).
    pub events_dropped: AtomicU64,
    /// Events discarded undelivered at session close.
    pub events_discarded: AtomicU64,
    /// Verdicts that settled (Detected or Impossible).
    pub verdicts_settled: AtomicU64,
    /// Sessions ever opened.
    pub sessions_opened: AtomicU64,
    /// Sessions currently open (gauge).
    pub sessions_active: AtomicU64,
    /// Protocol errors answered with `ServerMsg::Error`.
    pub protocol_errors: AtomicU64,
    /// WAL records appended since this process started (gauge, mirrors
    /// the store's counter).
    pub wal_records: AtomicU64,
    /// WAL bytes appended since this process started.
    pub wal_bytes: AtomicU64,
    /// Explicit WAL fsyncs performed.
    pub wal_fsyncs: AtomicU64,
    /// Slowest WAL fsync observed, in microseconds (high-water).
    pub wal_fsync_max_micros: AtomicU64,
    /// Snapshots written since this process started.
    pub snapshots_written: AtomicU64,
    /// Unix time of the latest snapshot (gauge; 0 = none yet).
    pub snapshot_unix_secs: AtomicU64,
    /// Sessions rebuilt from the snapshot at startup.
    pub sessions_recovered: AtomicU64,
    /// Recovered sessions a post-restart client re-attached to (its
    /// first message naming the session adopts its reply sink).
    pub sessions_reattached: AtomicU64,
    /// WAL records replayed at startup.
    pub recovery_replayed: AtomicU64,
    /// Wall-clock milliseconds the startup recovery took.
    pub recovery_millis: AtomicU64,
    /// Bytes truncated off a torn or corrupt WAL tail at startup.
    pub recovery_truncated_bytes: AtomicU64,
    /// Distributed-session worker partitions currently open (gauge).
    pub dist_workers_active: AtomicU64,
    /// Distributed-session aggregators currently open (gauge).
    pub dist_aggregators_active: AtomicU64,
    /// Slice updates emitted by local workers toward their aggregators.
    pub dist_updates_relayed: AtomicU64,
    /// Slice updates accepted by local aggregators.
    pub dist_updates_applied: AtomicU64,
    /// Per-predicate settled-verdict counts, keyed
    /// `verdicts.<state|pattern>.<predicate>.<detected|impossible>`.
    /// A mutex, not an atomic: verdicts settle at most once per
    /// predicate, far off the hot ingestion path.
    pub verdict_counts: Mutex<BTreeMap<String, u64>>,
    /// Per-predicate slicing-filter counters, keyed
    /// `slice.<predicate>.events_in` / `slice.<predicate>.events_filtered`.
    /// Flushed in batches at verdict/snapshot/close boundaries, never
    /// per event, so a mutex is fine here too.
    pub slice_counts: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    /// A fresh, all-zero metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records `k` events entering a causal hold buffer.
    pub fn held_add(&self, k: u64) {
        let now = self.events_held.fetch_add(k, Relaxed) + k;
        self.events_held_high_water.fetch_max(now, Relaxed);
    }

    /// Records `k` events leaving a causal hold buffer.
    pub fn held_sub(&self, k: u64) {
        self.events_held.fetch_sub(k, Relaxed);
    }

    /// Records one settled verdict under its per-predicate stats key.
    /// The key family separates pattern predicates from state
    /// predicates so `stats --json` can break the two apart.
    pub fn record_verdict(&self, predicate: &str, pattern: bool, detected: bool) {
        let family = if pattern { "pattern" } else { "state" };
        let outcome = if detected { "detected" } else { "impossible" };
        *self
            .verdict_counts
            .lock()
            .entry(format!("verdicts.{family}.{predicate}.{outcome}"))
            .or_insert(0) += 1;
    }

    /// Accumulates a slicing filter's counter deltas for one predicate.
    pub fn record_slice(&self, predicate: &str, events_in: u64, events_filtered: u64) {
        if events_in == 0 && events_filtered == 0 {
            return;
        }
        let mut counts = self.slice_counts.lock();
        *counts
            .entry(format!("slice.{predicate}.events_in"))
            .or_insert(0) += events_in;
        *counts
            .entry(format!("slice.{predicate}.events_filtered"))
            .or_insert(0) += events_filtered;
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events_ingested: self.events_ingested.load(Relaxed),
            batches_ingested: self.batches_ingested.load(Relaxed),
            events_delivered: self.events_delivered.load(Relaxed),
            events_held: self.events_held.load(Relaxed),
            events_held_high_water: self.events_held_high_water.load(Relaxed),
            events_duplicate: self.events_duplicate.load(Relaxed),
            events_rejected: self.events_rejected.load(Relaxed),
            events_dropped: self.events_dropped.load(Relaxed),
            events_discarded: self.events_discarded.load(Relaxed),
            verdicts_settled: self.verdicts_settled.load(Relaxed),
            sessions_opened: self.sessions_opened.load(Relaxed),
            sessions_active: self.sessions_active.load(Relaxed),
            protocol_errors: self.protocol_errors.load(Relaxed),
            wal_records: self.wal_records.load(Relaxed),
            wal_bytes: self.wal_bytes.load(Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Relaxed),
            wal_fsync_max_micros: self.wal_fsync_max_micros.load(Relaxed),
            snapshots_written: self.snapshots_written.load(Relaxed),
            snapshot_unix_secs: self.snapshot_unix_secs.load(Relaxed),
            sessions_recovered: self.sessions_recovered.load(Relaxed),
            sessions_reattached: self.sessions_reattached.load(Relaxed),
            recovery_replayed: self.recovery_replayed.load(Relaxed),
            recovery_millis: self.recovery_millis.load(Relaxed),
            recovery_truncated_bytes: self.recovery_truncated_bytes.load(Relaxed),
            dist_workers_active: self.dist_workers_active.load(Relaxed),
            dist_aggregators_active: self.dist_aggregators_active.load(Relaxed),
            dist_updates_relayed: self.dist_updates_relayed.load(Relaxed),
            dist_updates_applied: self.dist_updates_applied.load(Relaxed),
            verdicts: self.verdict_counts.lock().clone(),
            slices: self.slice_counts.lock().clone(),
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field names mirror `Metrics` one-to-one
pub struct MetricsSnapshot {
    pub events_ingested: u64,
    pub batches_ingested: u64,
    pub events_delivered: u64,
    pub events_held: u64,
    pub events_held_high_water: u64,
    pub events_duplicate: u64,
    pub events_rejected: u64,
    pub events_dropped: u64,
    pub events_discarded: u64,
    pub verdicts_settled: u64,
    pub sessions_opened: u64,
    pub sessions_active: u64,
    pub protocol_errors: u64,
    pub wal_records: u64,
    pub wal_bytes: u64,
    pub wal_fsyncs: u64,
    pub wal_fsync_max_micros: u64,
    pub snapshots_written: u64,
    pub snapshot_unix_secs: u64,
    pub sessions_recovered: u64,
    pub sessions_reattached: u64,
    pub recovery_replayed: u64,
    pub recovery_millis: u64,
    pub recovery_truncated_bytes: u64,
    pub dist_workers_active: u64,
    pub dist_aggregators_active: u64,
    pub dist_updates_relayed: u64,
    pub dist_updates_applied: u64,
    pub verdicts: BTreeMap<String, u64>,
    pub slices: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Name → value, in stable order, for the wire `stats` reply.
    pub fn to_map(&self) -> BTreeMap<String, u64> {
        [
            ("events_ingested", self.events_ingested),
            ("batches_ingested", self.batches_ingested),
            ("events_delivered", self.events_delivered),
            ("events_held", self.events_held),
            ("events_held_high_water", self.events_held_high_water),
            ("events_duplicate", self.events_duplicate),
            ("events_rejected", self.events_rejected),
            ("events_dropped", self.events_dropped),
            ("events_discarded", self.events_discarded),
            ("verdicts_settled", self.verdicts_settled),
            ("sessions_opened", self.sessions_opened),
            ("sessions_active", self.sessions_active),
            ("protocol_errors", self.protocol_errors),
            ("wal_records", self.wal_records),
            ("wal_bytes", self.wal_bytes),
            ("wal_fsyncs", self.wal_fsyncs),
            ("wal_fsync_max_micros", self.wal_fsync_max_micros),
            ("snapshots_written", self.snapshots_written),
            ("snapshot_unix_secs", self.snapshot_unix_secs),
            ("sessions_recovered", self.sessions_recovered),
            ("sessions_reattached", self.sessions_reattached),
            ("recovery_replayed", self.recovery_replayed),
            ("recovery_millis", self.recovery_millis),
            ("recovery_truncated_bytes", self.recovery_truncated_bytes),
            ("dist_workers_active", self.dist_workers_active),
            ("dist_aggregators_active", self.dist_aggregators_active),
            ("dist_updates_relayed", self.dist_updates_relayed),
            ("dist_updates_applied", self.dist_updates_applied),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .chain(self.verdicts.iter().map(|(k, &v)| (k.clone(), v)))
        .chain(self.slices.iter().map(|(k, &v)| (k.clone(), v)))
        .collect()
    }
}

impl fmt::Display for MetricsSnapshot {
    /// The periodic log-line format: compact `key=value` pairs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingested={} delivered={} held={} held_hwm={} dup={} rejected={} \
             dropped={} discarded={} verdicts={} sessions={}/{} errors={} \
             wal={}r/{}B snapshots={}",
            self.events_ingested,
            self.events_delivered,
            self.events_held,
            self.events_held_high_water,
            self.events_duplicate,
            self.events_rejected,
            self.events_dropped,
            self.events_discarded,
            self.verdicts_settled,
            self.sessions_active,
            self.sessions_opened,
            self.protocol_errors,
            self.wal_records,
            self.wal_bytes,
            self.snapshots_written,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_tracks_maximum() {
        let m = Metrics::new();
        m.held_add(3);
        m.held_sub(2);
        m.held_add(1);
        let s = m.snapshot();
        assert_eq!(s.events_held, 2);
        assert_eq!(s.events_held_high_water, 3);
    }

    #[test]
    fn snapshot_map_covers_every_field() {
        let m = Metrics::new();
        m.events_ingested.fetch_add(5, Relaxed);
        let map = m.snapshot().to_map();
        assert_eq!(map["events_ingested"], 5);
        assert_eq!(map.len(), 28);
    }

    #[test]
    fn per_predicate_verdicts_ride_along_in_the_stats_map() {
        let m = Metrics::new();
        m.record_verdict("inv", true, true);
        m.record_verdict("inv", true, true);
        m.record_verdict("goal", false, false);
        let map = m.snapshot().to_map();
        assert_eq!(map["verdicts.pattern.inv.detected"], 2);
        assert_eq!(map["verdicts.state.goal.impossible"], 1);
        assert_eq!(map.len(), 30);
    }

    #[test]
    fn slice_counters_accumulate_and_ride_along_in_the_stats_map() {
        let m = Metrics::new();
        m.record_slice("ef", 10, 7);
        m.record_slice("ef", 5, 2);
        m.record_slice("idle", 0, 0); // no-op: nothing to flush
        let map = m.snapshot().to_map();
        assert_eq!(map["slice.ef.events_in"], 15);
        assert_eq!(map["slice.ef.events_filtered"], 9);
        assert!(!map.contains_key("slice.idle.events_in"));
        assert_eq!(map.len(), 30);
    }

    #[test]
    fn display_is_one_line() {
        let line = Metrics::new().snapshot().to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("ingested=0"));
    }
}
