//! Durable state: what the monitor writes into snapshots.
//!
//! The WAL records are plain wire-protocol [`ClientMsg`] frames — the
//! monitor's input, logged before it is acknowledged — so replay is
//! just re-submitting the input. Snapshots bound the replay: a
//! [`ServiceSnapshot`] serializes every open session completely (local
//! states, causal-buffer frontier and held events, each detector's
//! exported state and emitted flags), and the store only replays
//! records appended after it.
//!
//! Everything here is plain data serialized as JSON: no vector-clock or
//! detector types cross the persistence boundary, only integers,
//! strings, and booleans, mirroring [`hb_detect::online::DetectorState`].
//!
//! [`ClientMsg`]: hb_tracefmt::wire::ClientMsg

use hb_detect::online::{
    CandidateState, ConjunctiveState, DetectorState, DisjunctiveState, PatternChainState,
    PatternState, VerdictState,
};
use hb_dist::{AggregatorSnapshot, WorkerSnapshot};
use hb_slice::SliceState;
use hb_store::SyncPolicy;
use hb_tracefmt::wire::WirePredicate;
use serde::{help, DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Durability configuration for a monitor service.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// The store directory (created if missing).
    pub dir: PathBuf,
    /// When appended records reach the disk.
    pub sync: SyncPolicy,
    /// Write a snapshot (and compact) every this many WAL records.
    pub snapshot_every: u64,
    /// WAL segment rotation size.
    pub segment_bytes: u64,
}

impl PersistConfig {
    /// Sensible defaults for a data directory.
    pub fn new(dir: PathBuf) -> Self {
        PersistConfig {
            dir,
            sync: SyncPolicy::Interval(std::time::Duration::from_millis(5)),
            snapshot_every: 10_000,
            segment_bytes: 8 << 20,
        }
    }
}

/// One held (not yet causally deliverable) event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldEventSnapshot {
    /// The producing process.
    pub process: usize,
    /// The event's vector clock components.
    pub clock: Vec<u32>,
    /// The event's variable updates, by name.
    pub set: BTreeMap<String, i64>,
}

/// One registered predicate's detector, frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// The predicate's caller-chosen id.
    pub id: String,
    /// Whether the settled verdict was already reported.
    pub emitted: bool,
    /// The detector's exported state.
    pub state: DetectorState,
    /// The slicing ingest filter's state, when the predicate was
    /// sliced. Absent in pre-slicing snapshots and for unsliceable
    /// predicates.
    pub slice: Option<SliceState>,
}

/// One open session, frozen mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// Session name.
    pub name: String,
    /// Process count.
    pub processes: usize,
    /// Variable names, in declaration (id) order.
    pub vars: Vec<String>,
    /// The predicates registered at open.
    pub predicates: Vec<WirePredicate>,
    /// Per-process local variable values, in id order.
    pub states: Vec<Vec<i64>>,
    /// The causal buffer's delivered frontier.
    pub frontier: Vec<u32>,
    /// Held events, in arrival order.
    pub held: Vec<HeldEventSnapshot>,
    /// Client-declared stream ends.
    pub finished: Vec<bool>,
    /// Finishes already forwarded to the detectors.
    pub monitor_finished: Vec<bool>,
    /// Events delivered so far.
    pub delivered: u64,
    /// Each predicate's detector, in registration order.
    pub monitors: Vec<MonitorSnapshot>,
}

/// One distributed-session worker partition hosted by this backend,
/// frozen mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSlotSnapshot {
    /// The decorated session name the partition is registered under
    /// (`origin#w<i>`).
    pub name: String,
    /// The origin session the worker's slice updates name.
    pub origin: String,
    /// The worker engine's state.
    pub snap: WorkerSnapshot,
}

/// One distributed-session aggregator hosted by this backend, frozen
/// mid-run. It is registered under the **origin** session name — the
/// aggregator is the member of the partition the client hears.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatorSlotSnapshot {
    /// The origin session name.
    pub name: String,
    /// The computation's process count (the engine snapshot stores
    /// only per-process vectors, whose width this pins down).
    pub processes: usize,
    /// The aggregator engine's state.
    pub snap: AggregatorSnapshot,
}

/// Every open session of a service, frozen at one WAL position.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceSnapshot {
    /// The open sessions.
    pub sessions: Vec<SessionSnapshot>,
    /// Distributed-session worker partitions on this backend. Absent
    /// from (and defaulted empty for) pre-v5 snapshots.
    pub workers: Vec<WorkerSlotSnapshot>,
    /// Distributed-session aggregators on this backend. Absent from
    /// (and defaulted empty for) pre-v5 snapshots.
    pub aggregators: Vec<AggregatorSlotSnapshot>,
}

impl ServiceSnapshot {
    /// Serializes to the snapshot payload format (JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("snapshot serializes")
    }

    /// Parses a snapshot payload.
    pub fn from_json(payload: &[u8]) -> Result<ServiceSnapshot, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("snapshot not UTF-8: {e}"))?;
        let value = serde_json::parse_value(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        ServiceSnapshot::from_value(&value).map_err(|e| format!("snapshot shape: {e}"))
    }
}

// ---- serde ---------------------------------------------------------------

fn verdict_to_value(v: &VerdictState) -> Value {
    match v {
        VerdictState::Detected(cut) => Value::Object(vec![
            ("kind".into(), "detected".to_string().to_value()),
            ("cut".into(), cut.to_value()),
        ]),
        VerdictState::Impossible => {
            Value::Object(vec![("kind".into(), "impossible".to_string().to_value())])
        }
        VerdictState::Pending => {
            Value::Object(vec![("kind".into(), "pending".to_string().to_value())])
        }
    }
}

fn verdict_from_value(v: &Value) -> Result<VerdictState, DeError> {
    let kind: String = help::field(v, "kind")?;
    match kind.as_str() {
        "detected" => Ok(VerdictState::Detected(help::field(v, "cut")?)),
        "impossible" => Ok(VerdictState::Impossible),
        "pending" => Ok(VerdictState::Pending),
        other => Err(DeError::msg(format!("unknown verdict kind '{other}'"))),
    }
}

fn candidate_to_value(c: &CandidateState) -> Value {
    Value::Object(vec![
        ("state".into(), c.state.to_value()),
        ("clock".into(), c.clock.to_value()),
    ])
}

fn candidate_from_value(v: &Value) -> Result<CandidateState, DeError> {
    Ok(CandidateState {
        state: help::field(v, "state")?,
        clock: help::field(v, "clock")?,
    })
}

fn chain_to_value(c: &PatternChainState) -> Value {
    Value::Object(vec![
        ("join".into(), c.join.to_value()),
        ("last".into(), c.last.to_value()),
    ])
}

fn chain_from_value(v: &Value) -> Result<PatternChainState, DeError> {
    Ok(PatternChainState {
        join: help::field(v, "join")?,
        last: help::field(v, "last")?,
    })
}

fn detector_to_value(d: &DetectorState) -> Value {
    match d {
        DetectorState::Conjunctive(s) => Value::Object(vec![
            ("kind".into(), "conjunctive".to_string().to_value()),
            ("n".into(), s.n.to_value()),
            (
                "queues".into(),
                Value::Array(
                    s.queues
                        .iter()
                        .map(|q| Value::Array(q.iter().map(candidate_to_value).collect()))
                        .collect(),
                ),
            ),
            ("participating".into(), s.participating.to_value()),
            ("seen".into(), s.seen.to_value()),
            ("finished".into(), s.finished.to_value()),
            ("verdict".into(), verdict_to_value(&s.verdict)),
        ]),
        DetectorState::Disjunctive(s) => Value::Object(vec![
            ("kind".into(), "disjunctive".to_string().to_value()),
            ("seen".into(), s.seen.to_value()),
            ("live".into(), s.live.to_value()),
            ("verdict".into(), verdict_to_value(&s.verdict)),
        ]),
        DetectorState::Pattern(s) => Value::Object(vec![
            ("kind".into(), "pattern".to_string().to_value()),
            ("n".into(), s.n.to_value()),
            ("causal".into(), s.causal.to_value()),
            (
                "frontiers".into(),
                Value::Array(
                    s.frontiers
                        .iter()
                        .map(|f| Value::Array(f.iter().map(chain_to_value).collect()))
                        .collect(),
                ),
            ),
            ("candidates".into(), s.candidates.to_value()),
            ("finished".into(), s.finished.to_value()),
            ("seen".into(), s.seen.to_value()),
            ("verdict".into(), verdict_to_value(&s.verdict)),
        ]),
    }
}

fn detector_from_value(v: &Value) -> Result<DetectorState, DeError> {
    let kind: String = help::field(v, "kind")?;
    match kind.as_str() {
        "conjunctive" => {
            let queues_value = v
                .get("queues")
                .ok_or_else(|| DeError::msg("missing field 'queues'"))?;
            let Value::Array(queue_values) = queues_value else {
                return Err(DeError::expected("array", queues_value));
            };
            let mut queues = Vec::with_capacity(queue_values.len());
            for qv in queue_values {
                let Value::Array(cands) = qv else {
                    return Err(DeError::expected("array", qv));
                };
                queues.push(
                    cands
                        .iter()
                        .map(candidate_from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            let verdict = verdict_from_value(
                v.get("verdict")
                    .ok_or_else(|| DeError::msg("missing field 'verdict'"))?,
            )?;
            Ok(DetectorState::Conjunctive(ConjunctiveState {
                n: help::field(v, "n")?,
                queues,
                participating: help::field(v, "participating")?,
                seen: help::field(v, "seen")?,
                finished: help::field(v, "finished")?,
                verdict,
            }))
        }
        "disjunctive" => {
            let verdict = verdict_from_value(
                v.get("verdict")
                    .ok_or_else(|| DeError::msg("missing field 'verdict'"))?,
            )?;
            Ok(DetectorState::Disjunctive(DisjunctiveState {
                seen: help::field(v, "seen")?,
                live: help::field(v, "live")?,
                verdict,
            }))
        }
        "pattern" => {
            let frontiers_value = v
                .get("frontiers")
                .ok_or_else(|| DeError::msg("missing field 'frontiers'"))?;
            let Value::Array(frontier_values) = frontiers_value else {
                return Err(DeError::expected("array", frontiers_value));
            };
            let mut frontiers = Vec::with_capacity(frontier_values.len());
            for fv in frontier_values {
                let Value::Array(chains) = fv else {
                    return Err(DeError::expected("array", fv));
                };
                frontiers.push(
                    chains
                        .iter()
                        .map(chain_from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            let verdict = verdict_from_value(
                v.get("verdict")
                    .ok_or_else(|| DeError::msg("missing field 'verdict'"))?,
            )?;
            Ok(DetectorState::Pattern(PatternState {
                n: help::field(v, "n")?,
                causal: help::field(v, "causal")?,
                frontiers,
                candidates: help::field(v, "candidates")?,
                finished: help::field(v, "finished")?,
                seen: help::field(v, "seen")?,
                verdict,
            }))
        }
        other => Err(DeError::msg(format!("unknown detector kind '{other}'"))),
    }
}

impl Serialize for HeldEventSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("process".into(), self.process.to_value()),
            ("clock".into(), self.clock.to_value()),
            ("set".into(), self.set.to_value()),
        ])
    }
}

impl Deserialize for HeldEventSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        help::object(v)?;
        Ok(HeldEventSnapshot {
            process: help::field(v, "process")?,
            clock: help::field(v, "clock")?,
            set: help::field_or_default(v, "set")?,
        })
    }
}

fn slice_to_value(s: &SliceState) -> Value {
    Value::Object(vec![
        ("holds".into(), s.holds.to_value()),
        ("pending".into(), s.pending.to_value()),
        ("events_in".into(), s.events_in.to_value()),
        ("events_filtered".into(), s.events_filtered.to_value()),
    ])
}

fn slice_from_value(v: &Value) -> Result<SliceState, DeError> {
    help::object(v)?;
    Ok(SliceState {
        holds: help::field(v, "holds")?,
        pending: help::field(v, "pending")?,
        events_in: help::field_or_default(v, "events_in")?,
        events_filtered: help::field_or_default(v, "events_filtered")?,
    })
}

impl Serialize for MonitorSnapshot {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".into(), self.id.to_value()),
            ("emitted".into(), self.emitted.to_value()),
            ("state".into(), detector_to_value(&self.state)),
        ];
        if let Some(slice) = &self.slice {
            fields.push(("slice".into(), slice_to_value(slice)));
        }
        Value::Object(fields)
    }
}

impl Deserialize for MonitorSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        help::object(v)?;
        Ok(MonitorSnapshot {
            id: help::field(v, "id")?,
            emitted: help::field(v, "emitted")?,
            state: detector_from_value(
                v.get("state")
                    .ok_or_else(|| DeError::msg("missing field 'state'"))?,
            )?,
            slice: v.get("slice").map(slice_from_value).transpose()?,
        })
    }
}

impl Serialize for SessionSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("processes".into(), self.processes.to_value()),
            ("vars".into(), self.vars.to_value()),
            ("predicates".into(), self.predicates.to_value()),
            ("states".into(), self.states.to_value()),
            ("frontier".into(), self.frontier.to_value()),
            ("held".into(), self.held.to_value()),
            ("finished".into(), self.finished.to_value()),
            ("monitor_finished".into(), self.monitor_finished.to_value()),
            ("delivered".into(), self.delivered.to_value()),
            ("monitors".into(), self.monitors.to_value()),
        ])
    }
}

impl Deserialize for SessionSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        help::object(v)?;
        Ok(SessionSnapshot {
            name: help::field(v, "name")?,
            processes: help::field(v, "processes")?,
            vars: help::field_or_default(v, "vars")?,
            predicates: help::field_or_default(v, "predicates")?,
            states: help::field_or_default(v, "states")?,
            frontier: help::field_or_default(v, "frontier")?,
            held: help::field_or_default(v, "held")?,
            finished: help::field_or_default(v, "finished")?,
            monitor_finished: help::field_or_default(v, "monitor_finished")?,
            delivered: help::field_or_default(v, "delivered")?,
            monitors: help::field_or_default(v, "monitors")?,
        })
    }
}

impl Serialize for WorkerSlotSnapshot {
    fn to_value(&self) -> Value {
        let s = &self.snap;
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("origin".into(), self.origin.to_value()),
            ("worker".into(), s.worker.to_value()),
            ("k".into(), s.k.to_value()),
            ("vars".into(), s.vars.to_value()),
            ("predicates".into(), s.predicates.to_value()),
            ("states".into(), s.states.to_value()),
            ("counts".into(), s.counts.to_value()),
            ("holds".into(), s.holds.to_value()),
            (
                "filtered".into(),
                Value::Array(
                    s.filtered
                        .iter()
                        .map(|&(events_in, events_filtered)| {
                            Value::Object(vec![
                                ("events_in".into(), events_in.to_value()),
                                ("events_filtered".into(), events_filtered.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "held".into(),
                Value::Array(
                    s.held
                        .iter()
                        .map(|(seq, process, clock, set)| {
                            Value::Object(vec![
                                ("seq".into(), seq.to_value()),
                                ("process".into(), process.to_value()),
                                ("clock".into(), clock.to_value()),
                                ("set".into(), set.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for WorkerSlotSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        help::object(v)?;
        let filtered_value = v
            .get("filtered")
            .ok_or_else(|| DeError::msg("missing field 'filtered'"))?;
        let Value::Array(filtered_values) = filtered_value else {
            return Err(DeError::expected("array", filtered_value));
        };
        let mut filtered = Vec::with_capacity(filtered_values.len());
        for fv in filtered_values {
            help::object(fv)?;
            filtered.push((
                help::field(fv, "events_in")?,
                help::field(fv, "events_filtered")?,
            ));
        }
        let held_value = v
            .get("held")
            .ok_or_else(|| DeError::msg("missing field 'held'"))?;
        let Value::Array(held_values) = held_value else {
            return Err(DeError::expected("array", held_value));
        };
        let mut held = Vec::with_capacity(held_values.len());
        for hv in held_values {
            help::object(hv)?;
            held.push((
                help::field(hv, "seq")?,
                help::field(hv, "process")?,
                help::field(hv, "clock")?,
                help::field_or_default(hv, "set")?,
            ));
        }
        Ok(WorkerSlotSnapshot {
            name: help::field(v, "name")?,
            origin: help::field(v, "origin")?,
            snap: WorkerSnapshot {
                worker: help::field(v, "worker")?,
                k: help::field(v, "k")?,
                vars: help::field_or_default(v, "vars")?,
                predicates: help::field_or_default(v, "predicates")?,
                states: help::field_or_default(v, "states")?,
                counts: help::field_or_default(v, "counts")?,
                holds: help::field_or_default(v, "holds")?,
                filtered,
                held,
            },
        })
    }
}

impl Serialize for AggregatorSlotSnapshot {
    fn to_value(&self) -> Value {
        let s = &self.snap;
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("processes".into(), self.processes.to_value()),
            ("k".into(), s.k.to_value()),
            ("vars".into(), s.vars.to_value()),
            ("predicates".into(), s.predicates.to_value()),
            ("frontier".into(), s.frontier.to_value()),
            (
                "held".into(),
                Value::Array(
                    s.held
                        .iter()
                        .map(|(process, clock, holds)| {
                            Value::Object(vec![
                                ("process".into(), process.to_value()),
                                ("clock".into(), clock.to_value()),
                                ("holds".into(), holds.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("finished".into(), s.finished.to_value()),
            ("monitor_finished".into(), s.monitor_finished.to_value()),
            ("delivered".into(), s.delivered.to_value()),
            (
                "monitors".into(),
                Value::Array(
                    s.monitors
                        .iter()
                        .map(|(id, emitted, state, pending)| {
                            Value::Object(vec![
                                ("id".into(), id.to_value()),
                                ("emitted".into(), emitted.to_value()),
                                ("state".into(), detector_to_value(state)),
                                ("pending".into(), pending.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("next_seq".into(), s.next_seq.to_value()),
            (
                "reorder".into(),
                Value::Array(
                    s.reorder
                        .iter()
                        .map(|(seq, update)| {
                            Value::Object(vec![
                                ("seq".into(), seq.to_value()),
                                ("update".into(), update.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for AggregatorSlotSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        help::object(v)?;
        let held_value = v
            .get("held")
            .ok_or_else(|| DeError::msg("missing field 'held'"))?;
        let Value::Array(held_values) = held_value else {
            return Err(DeError::expected("array", held_value));
        };
        let mut held = Vec::with_capacity(held_values.len());
        for hv in held_values {
            help::object(hv)?;
            held.push((
                help::field(hv, "process")?,
                help::field(hv, "clock")?,
                help::field_or_default(hv, "holds")?,
            ));
        }
        let monitors_value = v
            .get("monitors")
            .ok_or_else(|| DeError::msg("missing field 'monitors'"))?;
        let Value::Array(monitor_values) = monitors_value else {
            return Err(DeError::expected("array", monitors_value));
        };
        let mut monitors = Vec::with_capacity(monitor_values.len());
        for mv in monitor_values {
            help::object(mv)?;
            monitors.push((
                help::field(mv, "id")?,
                help::field(mv, "emitted")?,
                detector_from_value(
                    mv.get("state")
                        .ok_or_else(|| DeError::msg("missing field 'state'"))?,
                )?,
                help::field_or_default(mv, "pending")?,
            ));
        }
        let reorder_value = v
            .get("reorder")
            .ok_or_else(|| DeError::msg("missing field 'reorder'"))?;
        let Value::Array(reorder_values) = reorder_value else {
            return Err(DeError::expected("array", reorder_value));
        };
        let mut reorder = Vec::with_capacity(reorder_values.len());
        for rv in reorder_values {
            help::object(rv)?;
            reorder.push((help::field(rv, "seq")?, help::field(rv, "update")?));
        }
        Ok(AggregatorSlotSnapshot {
            name: help::field(v, "name")?,
            processes: help::field(v, "processes")?,
            snap: AggregatorSnapshot {
                k: help::field(v, "k")?,
                vars: help::field_or_default(v, "vars")?,
                predicates: help::field_or_default(v, "predicates")?,
                frontier: help::field_or_default(v, "frontier")?,
                held,
                finished: help::field_or_default(v, "finished")?,
                monitor_finished: help::field_or_default(v, "monitor_finished")?,
                delivered: help::field_or_default(v, "delivered")?,
                monitors,
                next_seq: help::field_or_default(v, "next_seq")?,
                reorder,
            },
        })
    }
}

impl Serialize for ServiceSnapshot {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("version".into(), 1u32.to_value()),
            ("sessions".into(), self.sessions.to_value()),
        ];
        // Written only when present, so a backend with no distributed
        // sessions produces byte-identical snapshots to a pre-v5 build.
        if !self.workers.is_empty() {
            fields.push(("workers".into(), self.workers.to_value()));
        }
        if !self.aggregators.is_empty() {
            fields.push(("aggregators".into(), self.aggregators.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServiceSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        help::object(v)?;
        let version: u32 = help::field(v, "version")?;
        if version != 1 {
            return Err(DeError::msg(format!(
                "unsupported snapshot version {version}"
            )));
        }
        Ok(ServiceSnapshot {
            sessions: help::field_or_default(v, "sessions")?,
            workers: help::field_or_default(v, "workers")?,
            aggregators: help::field_or_default(v, "aggregators")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_tracefmt::wire::{WireClause, WireMode};

    fn sample() -> ServiceSnapshot {
        ServiceSnapshot {
            sessions: vec![SessionSnapshot {
                name: "s".into(),
                processes: 2,
                vars: vec!["x0".into(), "x1".into()],
                predicates: vec![WirePredicate {
                    id: "ef".into(),
                    mode: WireMode::Conjunctive,
                    clauses: vec![WireClause {
                        process: 0,
                        var: "x0".into(),
                        op: "=".into(),
                        value: 2,
                    }],
                    pattern: None,
                }],
                states: vec![vec![1, 0], vec![0, 1]],
                frontier: vec![2, 1],
                held: vec![HeldEventSnapshot {
                    process: 1,
                    clock: vec![2, 3],
                    set: [("x1".to_string(), 7i64)].into_iter().collect(),
                }],
                finished: vec![true, false],
                monitor_finished: vec![false, false],
                delivered: 3,
                monitors: vec![
                    MonitorSnapshot {
                        id: "ef".into(),
                        emitted: false,
                        state: DetectorState::Conjunctive(ConjunctiveState {
                            n: 2,
                            queues: vec![
                                vec![CandidateState {
                                    state: 2,
                                    clock: vec![2, 0],
                                }],
                                vec![],
                            ],
                            participating: vec![true, false],
                            seen: vec![2, 1],
                            finished: vec![false, false],
                            verdict: VerdictState::Pending,
                        }),
                        slice: Some(SliceState {
                            holds: vec![true, false],
                            pending: vec![0, 3],
                            events_in: 5,
                            events_filtered: 3,
                        }),
                    },
                    MonitorSnapshot {
                        id: "any".into(),
                        emitted: true,
                        state: DetectorState::Disjunctive(DisjunctiveState {
                            seen: vec![2, 1],
                            live: 2,
                            verdict: VerdictState::Detected(vec![2, 0]),
                        }),
                        slice: None,
                    },
                    MonitorSnapshot {
                        id: "inv".into(),
                        emitted: false,
                        state: DetectorState::Pattern(PatternState {
                            n: 2,
                            causal: vec![false, true],
                            frontiers: vec![
                                vec![PatternChainState {
                                    join: vec![0, 0],
                                    last: vec![0, 0],
                                }],
                                vec![PatternChainState {
                                    join: vec![2, 0],
                                    last: vec![2, 0],
                                }],
                                vec![],
                            ],
                            candidates: vec![
                                vec![vec![vec![2, 0]], vec![]],
                                vec![vec![], vec![vec![1, 3]]],
                            ],
                            finished: vec![false, true],
                            seen: vec![2, 1],
                            verdict: VerdictState::Pending,
                        }),
                        slice: None,
                    },
                ],
            }],
            workers: Vec::new(),
            aggregators: Vec::new(),
        }
    }

    #[test]
    fn service_snapshot_round_trips_through_json() {
        let snap = sample();
        let json = snap.to_json();
        let back = ServiceSnapshot::from_json(json.as_bytes()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshots_without_distributed_slots_stay_byte_identical() {
        // The dist fields must not appear in the payload when empty, so
        // plain-session snapshots round-trip with pre-v5 readers.
        let json = sample().to_json();
        assert!(!json.contains("\"workers\""));
        assert!(!json.contains("\"aggregators\""));
    }

    #[test]
    fn distributed_slots_round_trip_through_json() {
        use hb_dist::{DistAggregator, DistWorker, OverflowPolicy};
        use hb_tracefmt::wire::SliceUpdateBody;

        let preds = vec![WirePredicate {
            id: "ef".into(),
            mode: WireMode::Conjunctive,
            clauses: vec![
                WireClause {
                    process: 0,
                    var: "x".into(),
                    op: "=".into(),
                    value: 2,
                },
                WireClause {
                    process: 1,
                    var: "x".into(),
                    op: "=".into(),
                    value: 1,
                },
            ],
            pattern: None,
        }];
        let vars = vec!["x".to_string()];
        let mut worker = DistWorker::open(0, 2, 2, &vars, &[], &preds).unwrap();
        let set: BTreeMap<String, i64> = [("x".to_string(), 2i64)].into_iter().collect();
        // One applied event and one held (position gap) event.
        worker.observe(
            0,
            0,
            hb_vclock::VectorClock::from_components(vec![1, 0]),
            &set,
        );
        worker.observe(
            3,
            0,
            hb_vclock::VectorClock::from_components(vec![3, 0]),
            &set,
        );
        let mut agg =
            DistAggregator::open(2, 2, &vars, &[], &preds, 64, OverflowPolicy::Reject).unwrap();
        agg.update(
            0,
            SliceUpdateBody::Observe {
                p: 0,
                clock: vec![1, 0],
                holds: vec![0],
                invalid: None,
            },
        );
        agg.update(2, SliceUpdateBody::Finish { p: 1 }); // parked in reorder

        let snap = ServiceSnapshot {
            sessions: Vec::new(),
            workers: vec![WorkerSlotSnapshot {
                name: "s#w0".into(),
                origin: "s".into(),
                snap: worker.snapshot(),
            }],
            aggregators: vec![AggregatorSlotSnapshot {
                name: "s".into(),
                processes: 2,
                snap: agg.snapshot(),
            }],
        };
        let back = ServiceSnapshot::from_json(snap.to_json().as_bytes()).unwrap();
        assert_eq!(back, snap);
        // And the engines rebuild from the decoded state.
        let w = DistWorker::restore(&back.workers[0].snap, 2).unwrap();
        assert_eq!(w.snapshot(), snap.workers[0].snap);
        let a = DistAggregator::restore(
            &back.aggregators[0].snap,
            back.aggregators[0].processes,
            64,
            OverflowPolicy::Reject,
        )
        .unwrap();
        assert_eq!(a.snapshot(), snap.aggregators[0].snap);
    }

    #[test]
    fn bad_payloads_are_rejected_with_messages() {
        assert!(ServiceSnapshot::from_json(b"\xFF\xFE").is_err());
        assert!(ServiceSnapshot::from_json(b"not json").is_err());
        assert!(ServiceSnapshot::from_json(b"{\"version\":9}").is_err());
        let bad_kind = r#"{"version":1,"sessions":[{"name":"s","processes":1,
            "monitors":[{"id":"p","emitted":false,"state":{"kind":"quantum"}}]}]}"#;
        assert!(ServiceSnapshot::from_json(bad_kind.as_bytes()).is_err());
    }
}
