//! The long-running monitoring service.
//!
//! # Architecture
//!
//! ```text
//!  TCP conns ──┐                       ┌── shard worker 0 ── sessions…
//!  in-process ─┴─ MonitorHandle ──────►├── shard worker 1 ── sessions…
//!   clients        (route by           └── shard worker k ── sessions…
//!                   hash(session))            │
//!                      │   ▲                  └─ verdicts → client sink
//!                      ▼   └── Arc<Metrics> ◄─┘
//!                  hb-store WAL
//!                  (when --data-dir is set)
//! ```
//!
//! Sessions are sharded across a fixed pool of worker threads by a hash
//! of the session name, so one session's events are always handled by
//! one thread (per-session order preserved, no locks on the hot path)
//! while independent sessions proceed in parallel. Each client supplies
//! a **sink** channel at open time; verdicts, errors, and close
//! notifications flow back through it asynchronously.
//!
//! # Durability
//!
//! With a [`PersistConfig`], every session-mutating client message is
//! appended to an [`hb_store`] write-ahead log *before* it is routed to
//! a shard — the WAL is the input tape, and replaying it reproduces the
//! service state. Periodic snapshots (every `snapshot_every` records)
//! freeze all sessions at a known WAL position so recovery replays only
//! the tail; covered segments are compacted away. Opening a service on
//! an existing data directory *is* crash recovery: the newest valid
//! snapshot is restored, the tail replayed, and the rebuilt sessions
//! handed to the shard workers before any new input is accepted.
//! Recovered sessions keep running detectors; the first client message
//! that touches one re-attaches its reply sink and re-reports any
//! verdict that settled before the crash.
//!
//! Transports are thin: the in-process [`MonitorHandle`] is the service
//! API, and [`serve`] adapts it to TCP — one reader thread per
//! connection decoding wire frames, one writer thread encoding sink
//! messages back. A `shutdown` message (or [`MonitorService::shutdown`])
//! flushes every session — stranded held events are discarded, final
//! verdicts are emitted — before the workers exit.

use crate::buffer::IngestError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::persist::{
    AggregatorSlotSnapshot, PersistConfig, ServiceSnapshot, SessionSnapshot, WorkerSlotSnapshot,
};
use crate::session::{Session, SessionError, SessionLimits, VerdictEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hb_detect::online::OnlineVerdict;
use hb_dist::{AggStep, DistAggregator, DistError, DistWorker};
use hb_store::{Store, StoreError, StoreOptions};
use hb_tracefmt::wire::{
    self, ClientMsg, ServerMsg, SliceUpdateBody, WireDistRole, WireMode, WirePredicate, WireVerdict,
};
use hb_vclock::VectorClock;
use parking_lot::Mutex;
use serde::{Deserialize as _, Serialize as _};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Worker threads; sessions are sharded across them. Zero means one.
    pub shards: usize,
    /// Per-session causal-buffer limits.
    pub limits: SessionLimits,
    /// Period of the stats log line on stderr; `None` disables it.
    pub stats_interval: Option<Duration>,
    /// Write-ahead logging and crash recovery; `None` keeps the service
    /// purely in-memory.
    pub persist: Option<PersistConfig>,
    /// The highest protocol version this service speaks — normally
    /// [`wire::WIRE_VERSION`]. Lowering it makes the service behave
    /// like an older build (refusing newer `hello`s and, below 3, the
    /// batched `events` frame); compatibility tests use this to pit a
    /// current SDK against yesterday's server.
    pub wire_version: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            shards: 4,
            limits: SessionLimits::default(),
            stats_interval: None,
            persist: None,
            wire_version: wire::WIRE_VERSION,
        }
    }
}

/// A command routed to a shard worker.
enum Cmd {
    Open {
        session: String,
        processes: usize,
        vars: Vec<String>,
        initial: Vec<BTreeMap<String, i64>>,
        predicates: Vec<WirePredicate>,
        /// `Some` opens a distributed-session member (worker partition
        /// or aggregator) instead of a plain session.
        dist: Option<WireDistRole>,
        sink: Sender<ServerMsg>,
    },
    /// A gateway-routed event for a worker partition (wire v5). The
    /// worker answers with `ServerMsg::SliceUpdate` frames the gateway
    /// relays to the session's aggregator.
    DistEvent {
        session: String,
        seq: u64,
        event: wire::EventFrame,
        sink: Sender<ServerMsg>,
    },
    /// A sequenced slice update for an aggregator (wire v5): a relayed
    /// worker observation, or the gateway-originated finish/close.
    SliceUpdate {
        session: String,
        seq: u64,
        update: SliceUpdateBody,
        sink: Sender<ServerMsg>,
    },
    Event {
        session: String,
        p: usize,
        clock: Vec<u32>,
        set: BTreeMap<String, i64>,
        /// Errors go here when the session itself is unknown.
        sink: Sender<ServerMsg>,
    },
    /// A wire-v3 batch: WAL-appended atomically by the handle, then
    /// delivered here as one command whose members feed the causal
    /// buffer one at a time — verdicts are identical to the unbatched
    /// stream by construction.
    EventBatch {
        session: String,
        events: Vec<wire::EventFrame>,
        sink: Sender<ServerMsg>,
    },
    Finish {
        session: String,
        p: usize,
        sink: Sender<ServerMsg>,
    },
    Close {
        session: String,
        sink: Sender<ServerMsg>,
    },
    /// Freeze every session on this shard and reply with the batch.
    /// The sender holds the WAL lock while waiting, so everything the
    /// shard saw before this command is — by construction — at a lower
    /// WAL position than the snapshot will claim.
    Snapshot { reply: Sender<ShardFreeze> },
    /// Close every remaining session and stop the worker (graceful
    /// shutdown). Handles may outlive the service, so workers cannot
    /// rely on channel disconnection to learn about shutdown.
    Flush,
}

/// The write-ahead log plus its snapshot cadence, behind one lock: an
/// append and its routing to a shard happen under the lock, so the WAL
/// order and the shard queue order never disagree.
struct WalInner {
    store: Store,
    since_snapshot: u64,
    snapshot_every: u64,
}

type SharedWal = Arc<Mutex<WalInner>>;

/// The running service: shard workers plus shared metrics.
pub struct MonitorService {
    shards: Vec<Sender<Cmd>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    wal: Option<SharedWal>,
    stats_stop: Option<Sender<()>>,
    stats_thread: Option<JoinHandle<()>>,
    wire_version: u32,
}

/// A cheap, cloneable client of a running service.
#[derive(Clone)]
pub struct MonitorHandle {
    shards: Vec<Sender<Cmd>>,
    metrics: Arc<Metrics>,
    wal: Option<SharedWal>,
    wire_version: u32,
}

fn shard_index_of(session: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    session.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

fn unix_now_secs() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A sink whose receiver is already gone: sends are silently dropped.
/// Recovered sessions start with one until a client re-attaches.
fn dead_sink() -> Sender<ServerMsg> {
    unbounded().0
}

/// The sessions a recovery rebuilds before the shard workers start:
/// plain sessions plus distributed-session members.
#[derive(Default)]
struct Recovered {
    sessions: HashMap<String, Session>,
    /// Worker partitions by decorated name, with their origin session.
    workers: HashMap<String, (String, DistWorker)>,
    /// Aggregators by origin session name.
    aggregators: HashMap<String, DistAggregator>,
}

/// One recovered slot handed to a shard worker as initial state.
enum SeedSlot {
    Local(Session),
    Worker {
        name: String,
        origin: String,
        engine: DistWorker,
    },
    Aggregator {
        name: String,
        engine: DistAggregator,
    },
}

/// One shard's frozen state, collected by the snapshot barrier.
#[derive(Default)]
struct ShardFreeze {
    sessions: Vec<SessionSnapshot>,
    workers: Vec<WorkerSlotSnapshot>,
    aggregators: Vec<AggregatorSlotSnapshot>,
}

/// Re-applies one replayed WAL record to the recovering session maps.
/// Errors are ignored: they were reported to the original client when
/// the record was first acknowledged, and replay must be idempotent
/// over them.
fn apply_replayed(msg: ClientMsg, state: &mut Recovered, limits: SessionLimits) {
    match msg {
        ClientMsg::Open {
            session,
            processes,
            vars,
            initial,
            predicates,
            dist,
        } => match dist {
            None => {
                if let Entry::Vacant(slot) = state.sessions.entry(session) {
                    if let Ok(mut s) =
                        Session::open(slot.key(), processes, &vars, &initial, &predicates, limits)
                    {
                        let _ = s.take_initial_verdicts();
                        slot.insert(s);
                    }
                }
            }
            Some(WireDistRole::Worker { origin, worker, k }) => {
                if let Entry::Vacant(slot) = state.workers.entry(session) {
                    if let Ok(w) =
                        DistWorker::open(worker, k, processes, &vars, &initial, &predicates)
                    {
                        slot.insert((origin, w));
                    }
                }
            }
            Some(WireDistRole::Aggregator { k }) => {
                if let Entry::Vacant(slot) = state.aggregators.entry(session) {
                    if let Ok(mut a) = DistAggregator::open(
                        k,
                        processes,
                        &vars,
                        &initial,
                        &predicates,
                        limits.buffer_capacity,
                        limits.policy,
                    ) {
                        let _ = a.take_initial_verdicts();
                        slot.insert(a);
                    }
                }
            }
            // Refused at the handle, never written to the WAL.
            Some(WireDistRole::Distribute { .. }) => {}
        },
        ClientMsg::Event {
            session,
            p,
            clock,
            set,
        } => {
            if let Some(s) = state.sessions.get_mut(&session) {
                let _ = s.event(p, VectorClock::from_components(clock), &set);
            }
        }
        ClientMsg::Events { session, events } => {
            if let Some(s) = state.sessions.get_mut(&session) {
                for e in events {
                    let _ = s.event(e.p, VectorClock::from_components(e.clock), &e.set);
                }
            }
        }
        ClientMsg::FinishProcess { session, p } => {
            if let Some(s) = state.sessions.get_mut(&session) {
                let _ = s.finish_process(p);
            }
        }
        ClientMsg::Close { session } => {
            state.sessions.remove(&session);
            state.workers.remove(&session);
            state.aggregators.remove(&session);
        }
        ClientMsg::DistEvent {
            session,
            seq,
            event,
        } => {
            if let Some((_, w)) = state.workers.get_mut(&session) {
                let _ = w.observe(
                    seq,
                    event.p,
                    VectorClock::from_components(event.clock),
                    &event.set,
                );
            }
        }
        ClientMsg::SliceUpdate {
            session,
            seq,
            update,
        } => {
            let closed = match state.aggregators.get_mut(&session) {
                Some(a) => a
                    .update(seq, update)
                    .iter()
                    .any(|s| matches!(s, AggStep::Closed { .. })),
                None => false,
            };
            if closed {
                state.aggregators.remove(&session);
            }
        }
        // Answered inline by `submit`, never written to the WAL.
        ClientMsg::Stats
        | ClientMsg::Shutdown
        | ClientMsg::Hello { .. }
        | ClientMsg::Drain { .. } => {}
    }
}

/// Runs the snapshot barrier: asks every shard for its frozen sessions,
/// writes the combined snapshot at the current WAL position, and
/// compacts covered segments. Called with the WAL lock held, so no new
/// record can slip between the position claimed and the state captured.
fn snapshot_barrier(
    shards: &[Sender<Cmd>],
    metrics: &Metrics,
    inner: &mut WalInner,
) -> Result<(), StoreError> {
    let (reply_tx, reply_rx) = unbounded();
    let mut expected = 0;
    for tx in shards {
        if tx
            .send(Cmd::Snapshot {
                reply: reply_tx.clone(),
            })
            .is_ok()
        {
            expected += 1;
        }
    }
    drop(reply_tx);
    let mut snap = ServiceSnapshot::default();
    for _ in 0..expected {
        match reply_rx.recv() {
            Ok(mut freeze) => {
                snap.sessions.append(&mut freeze.sessions);
                snap.workers.append(&mut freeze.workers);
                snap.aggregators.append(&mut freeze.aggregators);
            }
            Err(_) => {
                return Err(StoreError::Corrupt(
                    "shard worker exited during snapshot".into(),
                ))
            }
        }
    }
    snap.sessions.sort_by(|a, b| a.name.cmp(&b.name));
    snap.workers.sort_by(|a, b| a.name.cmp(&b.name));
    snap.aggregators.sort_by(|a, b| a.name.cmp(&b.name));
    inner.store.write_snapshot(snap.to_json().as_bytes())?;
    inner.store.compact()?;
    inner.since_snapshot = 0;
    metrics.snapshots_written.fetch_add(1, Ordering::Relaxed);
    metrics
        .snapshot_unix_secs
        .store(unix_now_secs(), Ordering::Relaxed);
    Ok(())
}

impl MonitorService {
    /// Starts a service that cannot fail to start (no persistence, or
    /// the caller accepts a panic on storage errors). Prefer
    /// [`MonitorService::open`] when a data directory is configured.
    pub fn start(config: MonitorConfig) -> MonitorService {
        MonitorService::open(config).expect("start monitor service")
    }

    /// Opens the service: recovers durable state (when configured),
    /// then starts the shard workers — pre-seeded with the recovered
    /// sessions — and the stats reporter.
    ///
    /// Fails only on storage problems: a data directory locked by a
    /// running process ([`StoreError::Locked`]), I/O errors, or a
    /// snapshot too damaged to parse ([`StoreError::Corrupt`] — a
    /// damaged WAL *tail* is repaired silently, but a snapshot that
    /// exists and lies is refused rather than guessed at).
    pub fn open(config: MonitorConfig) -> Result<MonitorService, StoreError> {
        let shards = config.shards.max(1);
        let metrics = Arc::new(Metrics::new());

        // Recovery happens before the first worker spawns: the rebuilt
        // sessions are handed over as worker initial state, so no new
        // input can interleave with the replay.
        let mut initial: Vec<Vec<SeedSlot>> = (0..shards).map(|_| Vec::new()).collect();
        let wal: Option<SharedWal> = match &config.persist {
            None => None,
            Some(p) => {
                let started = Instant::now();
                let store = Store::open(
                    &p.dir,
                    StoreOptions {
                        segment_bytes: p.segment_bytes,
                        sync: p.sync,
                    },
                )?;
                let mut state = Recovered::default();
                let mut from_seq = 0;
                if let Some((seq, payload)) = store.load_snapshot()? {
                    let snap = ServiceSnapshot::from_json(&payload).map_err(StoreError::Corrupt)?;
                    for s in &snap.sessions {
                        let restored = Session::restore(s, config.limits).map_err(|e| {
                            StoreError::Corrupt(format!("restore session '{}': {e}", s.name))
                        })?;
                        state.sessions.insert(s.name.clone(), restored);
                    }
                    for w in &snap.workers {
                        let engine =
                            DistWorker::restore(&w.snap, w.snap.states.len()).map_err(|e| {
                                StoreError::Corrupt(format!("restore worker '{}': {e}", w.name))
                            })?;
                        state
                            .workers
                            .insert(w.name.clone(), (w.origin.clone(), engine));
                    }
                    for a in &snap.aggregators {
                        let engine = DistAggregator::restore(
                            &a.snap,
                            a.processes,
                            config.limits.buffer_capacity,
                            config.limits.policy,
                        )
                        .map_err(|e| {
                            StoreError::Corrupt(format!("restore aggregator '{}': {e}", a.name))
                        })?;
                        state.aggregators.insert(a.name.clone(), engine);
                    }
                    from_seq = seq;
                }
                let mut replayed = 0u64;
                for rec in store.replay(from_seq) {
                    let (seq, payload) = rec?;
                    let text = std::str::from_utf8(&payload).map_err(|e| {
                        StoreError::Corrupt(format!("wal record {seq} is not UTF-8: {e}"))
                    })?;
                    let value = serde_json::parse_value(text)
                        .map_err(|e| StoreError::Corrupt(format!("wal record {seq}: {e}")))?;
                    let msg = ClientMsg::from_value(&value)
                        .map_err(|e| StoreError::Corrupt(format!("wal record {seq}: {e}")))?;
                    apply_replayed(msg, &mut state, config.limits);
                    replayed += 1;
                }
                let report = store.recovery_report();
                metrics.sessions_recovered.store(
                    (state.sessions.len() + state.workers.len() + state.aggregators.len()) as u64,
                    Ordering::Relaxed,
                );
                metrics.recovery_replayed.store(replayed, Ordering::Relaxed);
                metrics
                    .recovery_truncated_bytes
                    .store(report.truncated_bytes, Ordering::Relaxed);
                metrics
                    .recovery_millis
                    .store(started.elapsed().as_millis() as u64, Ordering::Relaxed);
                if let Some(secs) = store.stats().snapshot_unix_secs {
                    metrics.snapshot_unix_secs.store(secs, Ordering::Relaxed);
                }
                for (name, session) in state.sessions {
                    initial[shard_index_of(&name, shards)].push(SeedSlot::Local(session));
                }
                for (name, (origin, engine)) in state.workers {
                    let shard = shard_index_of(&name, shards);
                    initial[shard].push(SeedSlot::Worker {
                        name,
                        origin,
                        engine,
                    });
                }
                for (name, engine) in state.aggregators {
                    let shard = shard_index_of(&name, shards);
                    initial[shard].push(SeedSlot::Aggregator { name, engine });
                }
                Some(Arc::new(Mutex::new(WalInner {
                    store,
                    since_snapshot: 0,
                    snapshot_every: p.snapshot_every.max(1),
                })))
            }
        };

        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, seed) in initial.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            let metrics = Arc::clone(&metrics);
            let limits = config.limits;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hb-monitor-shard-{shard}"))
                    .spawn(move || shard_worker(rx, limits, metrics, seed))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        let (stats_stop, stats_thread) = match config.stats_interval {
            Some(period) => {
                let (stop_tx, stop_rx) = unbounded::<()>();
                let metrics = Arc::clone(&metrics);
                let handle = std::thread::Builder::new()
                    .name("hb-monitor-stats".into())
                    .spawn(move || loop {
                        match stop_rx.recv_timeout(period) {
                            Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                                return
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                eprintln!("hb-monitor: {}", metrics.snapshot());
                            }
                        }
                    })
                    .expect("spawn stats thread");
                (Some(stop_tx), Some(handle))
            }
            None => (None, None),
        };
        Ok(MonitorService {
            shards: senders,
            workers,
            metrics,
            wal,
            stats_stop,
            stats_thread,
            wire_version: config
                .wire_version
                .clamp(wire::MIN_WIRE_VERSION, wire::WIRE_VERSION),
        })
    }

    /// A client handle for submitting messages in-process.
    pub fn handle(&self) -> MonitorHandle {
        MonitorHandle {
            shards: self.shards.clone(),
            metrics: Arc::clone(&self.metrics),
            wal: self.wal.clone(),
            wire_version: self.wire_version,
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Gracefully shuts down: every open session is closed (emitting
    /// final verdicts into its sink), then the workers exit and join.
    /// With persistence, an **empty** snapshot is written last — a
    /// graceful shutdown resolves every session, so a later restart has
    /// nothing to recover and must not resurrect them.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        for tx in &self.shards {
            let _ = tx.send(Cmd::Flush);
        }
        self.shards.clear(); // disconnect: workers exit after the flush
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(wal) = self.wal.take() {
            let mut inner = wal.lock();
            let done = ServiceSnapshot::default();
            if let Err(e) = inner
                .store
                .write_snapshot(done.to_json().as_bytes())
                .and_then(|()| inner.store.compact().map(|_| ()))
            {
                eprintln!("hb-monitor: final snapshot failed: {e}");
            }
        }
        if let Some(stop) = self.stats_stop.take() {
            let _ = stop.send(());
        }
        if let Some(t) = self.stats_thread.take() {
            let _ = t.join();
        }
        self.metrics.snapshot()
    }
}

impl MonitorHandle {
    fn shard_index(&self, session: &str) -> usize {
        shard_index_of(session, self.shards.len())
    }

    /// Submits one client message; responses arrive on `sink`.
    ///
    /// With persistence, session-mutating messages are appended to the
    /// WAL **before** they are routed to a shard — by the time any
    /// effect of the message is observable, its record is in the log.
    /// An append failure refuses the message with `ServerMsg::Error`
    /// instead of processing input that would be lost by a crash.
    ///
    /// `Stats` is answered synchronously from the shared metrics (no
    /// shard round-trip); `Shutdown` is a transport-level concern and
    /// answered with `Bye` — shutting the service down is the owner's
    /// call via [`MonitorService::shutdown`].
    pub fn submit(&self, msg: ClientMsg, sink: &Sender<ServerMsg>) {
        match &msg {
            ClientMsg::Stats => {
                let _ = sink.send(ServerMsg::Stats {
                    counters: self.metrics.snapshot().to_map(),
                });
                return;
            }
            ClientMsg::Shutdown => {
                let _ = sink.send(ServerMsg::Bye);
                return;
            }
            // Version handshake: also the gateway's health probe, so it
            // must stay cheap and side-effect free.
            ClientMsg::Hello { version } => {
                match wire::negotiate_version(*version, self.wire_version) {
                    Ok(version) => {
                        let _ = sink.send(ServerMsg::Welcome { version });
                    }
                    Err(message) => {
                        self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = sink.send(ServerMsg::Error {
                            session: None,
                            kind: None,
                            message,
                        });
                    }
                }
                return;
            }
            ClientMsg::Drain { backend } => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: None,
                    kind: None,
                    message: format!(
                        "cannot drain '{backend}': this is a monitor backend, \
                         not a gateway — point `hbtl gateway drain` at the gateway"
                    ),
                });
                return;
            }
            // A pre-v3 build has no `events` decoder; answering the way
            // its parser would keeps the emulation honest for
            // compatibility tests (the SDK never triggers this — it
            // falls back to single frames after the handshake).
            ClientMsg::Events { .. } if self.wire_version < 3 => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: None,
                    kind: None,
                    message: "unknown client message 'events'".into(),
                });
                return;
            }
            // Pattern predicates joined the wire in v4. A pre-v4 build
            // would refuse the unknown mode at the parser; we answer
            // with a machine-readable kind so dialers can classify the
            // downgrade without scraping message text.
            ClientMsg::Open {
                session,
                predicates,
                ..
            } if self.wire_version < 4
                && predicates
                    .iter()
                    .any(|p| p.mode == WireMode::Pattern || p.pattern.is_some()) =>
            {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: Some(session.clone()),
                    kind: Some(wire::error_kind::UNSUPPORTED_PREDICATE.to_string()),
                    message: format!(
                        "pattern predicates need wire v4; this monitor speaks v{}",
                        self.wire_version
                    ),
                });
                return;
            }
            // Distributed sessions joined the wire in v5. A real pre-v5
            // parser would *silently ignore* the unknown `dist` key and
            // open a plain session — a correctness hazard, not a
            // degradation — so the emulation refuses loudly with a
            // machine-readable kind the gateway and SDK gate on.
            ClientMsg::Open {
                session,
                dist: Some(_),
                ..
            } if self.wire_version < 5 => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: Some(session.clone()),
                    kind: Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION.to_string()),
                    message: format!(
                        "distributed sessions need wire v5; this monitor speaks v{}",
                        self.wire_version
                    ),
                });
                return;
            }
            // Partitioning is the gateway's job: a backend accepts the
            // derived worker/aggregator opens, never the client-facing
            // `distribute` request.
            ClientMsg::Open {
                session,
                dist: Some(WireDistRole::Distribute { .. }),
                ..
            } => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: Some(session.clone()),
                    kind: Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION.to_string()),
                    message: "distributed sessions are opened through a gateway; \
                              this is a monitor backend"
                        .into(),
                });
                return;
            }
            // A pre-v5 build has no decoder for the inter-monitor
            // frames; answer the way its parser would.
            ClientMsg::DistEvent { .. } if self.wire_version < 5 => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: None,
                    kind: None,
                    message: "unknown client message 'dist-event'".into(),
                });
                return;
            }
            ClientMsg::SliceUpdate { .. } if self.wire_version < 5 => {
                self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: None,
                    kind: None,
                    message: "unknown client message 'slice-update'".into(),
                });
                return;
            }
            _ => {}
        }
        let payload = self
            .wal
            .as_ref()
            .map(|_| serde_json::to_string(&msg.to_value()).expect("wire message serializes"));
        let (shard, cmd) = match msg {
            ClientMsg::Open {
                session,
                processes,
                vars,
                initial,
                predicates,
                dist,
            } => (
                self.shard_index(&session),
                Cmd::Open {
                    session,
                    processes,
                    vars,
                    initial,
                    predicates,
                    dist,
                    sink: sink.clone(),
                },
            ),
            ClientMsg::Event {
                session,
                p,
                clock,
                set,
            } => (
                self.shard_index(&session),
                Cmd::Event {
                    session,
                    p,
                    clock,
                    set,
                    sink: sink.clone(),
                },
            ),
            // One WAL record for the whole batch (already serialized
            // above), one shard command: the append is atomic, delivery
            // below is per-event.
            ClientMsg::Events { session, events } => (
                self.shard_index(&session),
                Cmd::EventBatch {
                    session,
                    events,
                    sink: sink.clone(),
                },
            ),
            ClientMsg::FinishProcess { session, p } => (
                self.shard_index(&session),
                Cmd::Finish {
                    session,
                    p,
                    sink: sink.clone(),
                },
            ),
            ClientMsg::Close { session } => (
                self.shard_index(&session),
                Cmd::Close {
                    session,
                    sink: sink.clone(),
                },
            ),
            ClientMsg::DistEvent {
                session,
                seq,
                event,
            } => (
                self.shard_index(&session),
                Cmd::DistEvent {
                    session,
                    seq,
                    event,
                    sink: sink.clone(),
                },
            ),
            ClientMsg::SliceUpdate {
                session,
                seq,
                update,
            } => (
                self.shard_index(&session),
                Cmd::SliceUpdate {
                    session,
                    seq,
                    update,
                    sink: sink.clone(),
                },
            ),
            ClientMsg::Stats
            | ClientMsg::Shutdown
            | ClientMsg::Hello { .. }
            | ClientMsg::Drain { .. } => unreachable!("answered above"),
        };
        match (&self.wal, payload) {
            (Some(wal), Some(payload)) => {
                let mut inner = wal.lock();
                if let Err(e) = inner.store.append(payload.as_bytes()) {
                    self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = sink.send(ServerMsg::Error {
                        session: None,
                        kind: None,
                        message: format!("write-ahead log append failed: {e}"),
                    });
                    return;
                }
                // Route while still holding the lock: a concurrent
                // snapshot barrier must not run between this record's
                // append and its arrival in the shard queue.
                let _ = self.shards[shard].send(cmd);
                let stats = inner.store.stats();
                self.metrics
                    .wal_records
                    .store(stats.appended_records, Ordering::Relaxed);
                self.metrics
                    .wal_bytes
                    .store(stats.appended_bytes, Ordering::Relaxed);
                self.metrics
                    .wal_fsyncs
                    .store(stats.fsyncs, Ordering::Relaxed);
                self.metrics
                    .wal_fsync_max_micros
                    .store(stats.fsync_max_micros, Ordering::Relaxed);
                inner.since_snapshot += 1;
                if inner.since_snapshot >= inner.snapshot_every {
                    if let Err(e) = snapshot_barrier(&self.shards, &self.metrics, &mut inner) {
                        eprintln!("hb-monitor: snapshot failed: {e}");
                    }
                }
            }
            _ => {
                let _ = self.shards[shard].send(cmd);
            }
        }
    }

    /// The shared metrics.
    pub fn stats(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// One session plus the sink registered at its open (or re-attached
/// after recovery).
struct Slot {
    session: Session,
    sink: Sender<ServerMsg>,
    /// False for a session rebuilt by crash recovery that no client has
    /// spoken to yet: its sink is dead, and settled verdicts have not
    /// been shown to the post-restart client.
    attached: bool,
}

/// One distributed-session worker partition, registered under its
/// decorated name (`origin#w<i>`).
struct WorkerSlot {
    /// The origin session name the partition's slice updates carry.
    origin: String,
    engine: DistWorker,
    sink: Sender<ServerMsg>,
    attached: bool,
}

/// One distributed-session aggregator, registered under the origin
/// session name — the member of the partition the client hears.
struct AggSlot {
    engine: DistAggregator,
    sink: Sender<ServerMsg>,
    attached: bool,
}

fn wire_verdict(v: &OnlineVerdict) -> WireVerdict {
    match v {
        OnlineVerdict::Detected(cut) => WireVerdict::Detected(cut.counters().to_vec()),
        OnlineVerdict::Impossible => WireVerdict::Impossible,
        OnlineVerdict::Pending => WireVerdict::Pending,
    }
}

fn send_verdicts(
    name: &str,
    verdicts: Vec<VerdictEvent>,
    sink: &Sender<ServerMsg>,
    metrics: &Metrics,
) {
    for v in verdicts {
        metrics.verdicts_settled.fetch_add(1, Ordering::Relaxed);
        metrics.record_verdict(
            &v.predicate,
            v.pattern,
            matches!(v.verdict, OnlineVerdict::Detected(_)),
        );
        let _ = sink.send(ServerMsg::Verdict {
            session: name.to_string(),
            predicate: v.predicate,
            verdict: wire_verdict(&v.verdict),
        });
    }
}

/// Drains a session's slicing-filter counter deltas into the shared
/// metrics. Called at verdict, finish, snapshot, and close boundaries —
/// never per event, so sliced ingestion stays mutex-free on the hot
/// path (the counters lag by at most one such boundary).
fn flush_slice_stats(session: &mut Session, metrics: &Metrics) {
    for (id, events_in, events_filtered) in session.take_slice_stats() {
        metrics.record_slice(&id, events_in, events_filtered);
    }
}

/// First client contact with a recovered session: adopt the client's
/// sink and re-report everything that settled before the crash (the
/// client that originally received those verdicts is gone).
fn attach(slot: &mut Slot, name: &str, sink: &Sender<ServerMsg>, metrics: &Metrics) {
    if slot.attached {
        return;
    }
    slot.sink = sink.clone();
    slot.attached = true;
    metrics.sessions_reattached.fetch_add(1, Ordering::Relaxed);
    for v in slot.session.all_verdicts() {
        if !matches!(v.verdict, OnlineVerdict::Pending) {
            let _ = slot.sink.send(ServerMsg::Verdict {
                session: name.to_string(),
                predicate: v.predicate,
                verdict: wire_verdict(&v.verdict),
            });
        }
    }
}

/// The machine-readable [`wire::error_kind`] for a session error, when
/// one exists. Replay artifacts of at-least-once clients get kinds so
/// those clients can classify them without parsing message text.
fn error_kind_of(e: &SessionError) -> Option<&'static str> {
    match e {
        SessionError::AlreadyFinished(_) => Some(wire::error_kind::ALREADY_FINISHED),
        SessionError::Ingest(IngestError::Duplicate { .. }) => {
            Some(wire::error_kind::DUPLICATE_EVENT)
        }
        _ => None,
    }
}

/// [`error_kind_of`] for the aggregator's replica errors: the same
/// classification, so distributed error frames carry the same kinds.
fn dist_error_kind(e: &DistError) -> Option<&'static str> {
    match e {
        DistError::AlreadyFinished(_) => Some(wire::error_kind::ALREADY_FINISHED),
        DistError::Ingest(IngestError::Duplicate { .. }) => Some(wire::error_kind::DUPLICATE_EVENT),
        _ => None,
    }
}

/// Ships a worker's slice updates toward the aggregator: one
/// `ServerMsg::SliceUpdate` frame per update, carrying the **origin**
/// session name so the gateway can relay by session.
fn relay_updates(
    origin: &str,
    updates: Vec<(u64, SliceUpdateBody)>,
    sink: &Sender<ServerMsg>,
    metrics: &Metrics,
) {
    metrics
        .dist_updates_relayed
        .fetch_add(updates.len() as u64, Ordering::Relaxed);
    for (seq, update) in updates {
        let _ = sink.send(ServerMsg::SliceUpdate {
            session: origin.to_string(),
            seq,
            update,
        });
    }
}

/// Drains a worker partition's slicing counter deltas into the shared
/// metrics (the aggregator must *not* report these — the worker is
/// where filtering happens, and double counting would follow).
fn flush_worker_slice_stats(engine: &mut DistWorker, metrics: &Metrics) {
    for (id, events_in, events_filtered) in engine.take_slice_stats() {
        metrics.record_slice(&id, events_in, events_filtered);
    }
}

/// Turns an aggregator's observable steps into the session's reply
/// frames — the exact frames a single-backend session would emit —
/// and mirrors the single-backend metrics bookkeeping. Returns whether
/// a close was processed (the caller then drops the slot).
fn emit_agg_steps(
    name: &str,
    steps: Vec<AggStep>,
    sink: &Sender<ServerMsg>,
    metrics: &Metrics,
) -> bool {
    let mut closed = false;
    for step in steps {
        match step {
            AggStep::Verdict { predicate, verdict } => {
                metrics.verdicts_settled.fetch_add(1, Ordering::Relaxed);
                metrics.record_verdict(
                    &predicate,
                    false,
                    matches!(verdict, OnlineVerdict::Detected(_)),
                );
                let _ = sink.send(ServerMsg::Verdict {
                    session: name.to_string(),
                    predicate,
                    verdict: wire_verdict(&verdict),
                });
            }
            AggStep::Error(e) => {
                match &e {
                    DistError::Ingest(IngestError::Duplicate { .. }) => {
                        metrics.events_duplicate.fetch_add(1, Ordering::Relaxed);
                    }
                    DistError::Ingest(IngestError::Overflow { .. }) => {
                        metrics.events_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    DistError::Ingest(IngestError::Dropped) => {
                        metrics.events_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Error {
                    session: Some(name.to_string()),
                    kind: dist_error_kind(&e).map(str::to_string),
                    message: e.to_string(),
                });
            }
            AggStep::Closed { discarded } => {
                metrics
                    .events_discarded
                    .fetch_add(discarded, Ordering::Relaxed);
                let _ = sink.send(ServerMsg::Closed {
                    session: name.to_string(),
                    discarded,
                });
                closed = true;
            }
        }
    }
    closed
}

/// First client contact with a recovered aggregator: adopt the sink
/// and re-report settled verdicts, exactly like [`attach`] does for a
/// plain session.
fn attach_agg(slot: &mut AggSlot, name: &str, sink: &Sender<ServerMsg>, metrics: &Metrics) {
    if slot.attached {
        return;
    }
    slot.sink = sink.clone();
    slot.attached = true;
    metrics.sessions_reattached.fetch_add(1, Ordering::Relaxed);
    for (predicate, verdict) in slot.engine.all_verdicts() {
        if !matches!(verdict, OnlineVerdict::Pending) {
            let _ = slot.sink.send(ServerMsg::Verdict {
                session: name.to_string(),
                predicate,
                verdict: wire_verdict(&verdict),
            });
        }
    }
}

/// Feeds one event into an attached slot's causal buffer and reports
/// the outcome — the shared per-event path of `Cmd::Event` and every
/// member of a `Cmd::EventBatch`.
fn ingest_one(
    name: &str,
    slot: &mut Slot,
    p: usize,
    clock: Vec<u32>,
    set: BTreeMap<String, i64>,
    metrics: &Metrics,
) {
    metrics.events_ingested.fetch_add(1, Ordering::Relaxed);
    let held_before = slot.session.held();
    let delivered_before = slot.session.delivered();
    match slot
        .session
        .event(p, VectorClock::from_components(clock), &set)
    {
        Ok(verdicts) => {
            let delivered = slot.session.delivered() - delivered_before;
            metrics
                .events_delivered
                .fetch_add(delivered, Ordering::Relaxed);
            let held_now = slot.session.held();
            if held_now > held_before {
                metrics.held_add((held_now - held_before) as u64);
            } else {
                metrics.held_sub((held_before - held_now) as u64);
            }
            if !verdicts.is_empty() {
                flush_slice_stats(&mut slot.session, metrics);
            }
            send_verdicts(name, verdicts, &slot.sink, metrics);
        }
        Err(e) => {
            match &e {
                SessionError::Ingest(IngestError::Duplicate { .. }) => {
                    metrics.events_duplicate.fetch_add(1, Ordering::Relaxed);
                }
                SessionError::Ingest(IngestError::Overflow { .. }) => {
                    metrics.events_rejected.fetch_add(1, Ordering::Relaxed);
                }
                SessionError::Ingest(IngestError::Dropped) => {
                    metrics.events_dropped.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = slot.sink.send(ServerMsg::Error {
                session: Some(name.to_string()),
                kind: error_kind_of(&e).map(str::to_string),
                message: e.to_string(),
            });
        }
    }
}

fn close_slot(name: &str, mut slot: Slot, metrics: &Metrics) {
    let held_before = slot.session.held() as u64;
    let (verdicts, discarded) = slot.session.close();
    flush_slice_stats(&mut slot.session, metrics);
    metrics.held_sub(held_before);
    metrics
        .events_discarded
        .fetch_add(discarded, Ordering::Relaxed);
    metrics.sessions_active.fetch_sub(1, Ordering::Relaxed);
    send_verdicts(name, verdicts, &slot.sink, metrics);
    let _ = slot.sink.send(ServerMsg::Closed {
        session: name.to_string(),
        discarded,
    });
}

/// The shard worker loop: owns its sessions, applies commands in
/// arrival order, pushes responses into per-session sinks. `seed` holds
/// sessions rebuilt by crash recovery; they start detached.
fn shard_worker(
    rx: Receiver<Cmd>,
    limits: SessionLimits,
    metrics: Arc<Metrics>,
    seed: Vec<SeedSlot>,
) {
    let mut slots: HashMap<String, Slot> = HashMap::new();
    let mut workers: HashMap<String, WorkerSlot> = HashMap::new();
    let mut aggs: HashMap<String, AggSlot> = HashMap::new();
    for seeded in seed {
        match seeded {
            SeedSlot::Local(session) => {
                metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                metrics.sessions_active.fetch_add(1, Ordering::Relaxed);
                metrics.held_add(session.held() as u64);
                slots.insert(
                    session.name().to_string(),
                    Slot {
                        session,
                        sink: dead_sink(),
                        attached: false,
                    },
                );
            }
            SeedSlot::Worker {
                name,
                origin,
                engine,
            } => {
                metrics.dist_workers_active.fetch_add(1, Ordering::Relaxed);
                workers.insert(
                    name,
                    WorkerSlot {
                        origin,
                        engine,
                        sink: dead_sink(),
                        attached: false,
                    },
                );
            }
            SeedSlot::Aggregator { name, engine } => {
                metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                metrics.sessions_active.fetch_add(1, Ordering::Relaxed);
                metrics
                    .dist_aggregators_active
                    .fetch_add(1, Ordering::Relaxed);
                metrics.held_add(engine.held() as u64);
                aggs.insert(
                    name,
                    AggSlot {
                        engine,
                        sink: dead_sink(),
                        attached: false,
                    },
                );
            }
        }
    }
    let err = |sink: &Sender<ServerMsg>,
               session: Option<&str>,
               kind: Option<&str>,
               message: String,
               metrics: &Metrics| {
        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = sink.send(ServerMsg::Error {
            session: session.map(str::to_string),
            kind: kind.map(str::to_string),
            message,
        });
    };
    for cmd in rx.iter() {
        match cmd {
            Cmd::Open {
                session,
                processes,
                vars,
                initial,
                predicates,
                dist,
                sink,
            } => {
                if slots.contains_key(&session)
                    || workers.contains_key(&session)
                    || aggs.contains_key(&session)
                {
                    err(
                        &sink,
                        Some(&session),
                        Some(wire::error_kind::ALREADY_OPEN),
                        format!("session '{session}' already open"),
                        &metrics,
                    );
                    continue;
                }
                match dist {
                    None => match Session::open(
                        &session,
                        processes,
                        &vars,
                        &initial,
                        &predicates,
                        limits,
                    ) {
                        Ok(mut s) => {
                            metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                            metrics.sessions_active.fetch_add(1, Ordering::Relaxed);
                            let _ = sink.send(ServerMsg::Opened {
                                session: session.clone(),
                            });
                            send_verdicts(&session, s.take_initial_verdicts(), &sink, &metrics);
                            slots.insert(
                                session,
                                Slot {
                                    session: s,
                                    sink,
                                    attached: true,
                                },
                            );
                        }
                        Err(e) => err(
                            &sink,
                            Some(&session),
                            error_kind_of(&e),
                            e.to_string(),
                            &metrics,
                        ),
                    },
                    Some(WireDistRole::Worker { origin, worker, k }) => {
                        match DistWorker::open(worker, k, processes, &vars, &initial, &predicates) {
                            Ok(engine) => {
                                metrics.dist_workers_active.fetch_add(1, Ordering::Relaxed);
                                let _ = sink.send(ServerMsg::Opened {
                                    session: session.clone(),
                                });
                                workers.insert(
                                    session,
                                    WorkerSlot {
                                        origin,
                                        engine,
                                        sink,
                                        attached: true,
                                    },
                                );
                            }
                            Err(e) => err(
                                &sink,
                                Some(&session),
                                None,
                                format!("bad open: {e}"),
                                &metrics,
                            ),
                        }
                    }
                    Some(WireDistRole::Aggregator { k }) => {
                        match DistAggregator::open(
                            k,
                            processes,
                            &vars,
                            &initial,
                            &predicates,
                            limits.buffer_capacity,
                            limits.policy,
                        ) {
                            Ok(mut engine) => {
                                metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                                metrics.sessions_active.fetch_add(1, Ordering::Relaxed);
                                metrics
                                    .dist_aggregators_active
                                    .fetch_add(1, Ordering::Relaxed);
                                let _ = sink.send(ServerMsg::Opened {
                                    session: session.clone(),
                                });
                                let initial_verdicts: Vec<AggStep> = engine
                                    .take_initial_verdicts()
                                    .into_iter()
                                    .map(|(predicate, verdict)| AggStep::Verdict {
                                        predicate,
                                        verdict,
                                    })
                                    .collect();
                                emit_agg_steps(&session, initial_verdicts, &sink, &metrics);
                                aggs.insert(
                                    session,
                                    AggSlot {
                                        engine,
                                        sink,
                                        attached: true,
                                    },
                                );
                            }
                            Err(e) => err(&sink, Some(&session), None, e.to_string(), &metrics),
                        }
                    }
                    // Refused at the handle; kept for direct in-process
                    // submitters.
                    Some(WireDistRole::Distribute { .. }) => err(
                        &sink,
                        Some(&session),
                        Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION),
                        "distributed sessions are opened through a gateway; \
                         this is a monitor backend"
                            .into(),
                        &metrics,
                    ),
                }
            }
            Cmd::Event {
                session,
                p,
                clock,
                set,
                sink,
            } => {
                let Some(slot) = slots.get_mut(&session) else {
                    let message = if workers.contains_key(&session) || aggs.contains_key(&session) {
                        format!("session '{session}' is distributed; its frames are routed by the gateway")
                    } else {
                        format!("no such session '{session}'")
                    };
                    err(&sink, Some(&session), None, message, &metrics);
                    continue;
                };
                attach(slot, &session, &sink, &metrics);
                ingest_one(&session, slot, p, clock, set, &metrics);
            }
            Cmd::EventBatch {
                session,
                events,
                sink,
            } => {
                let Some(slot) = slots.get_mut(&session) else {
                    let message = if workers.contains_key(&session) || aggs.contains_key(&session) {
                        format!("session '{session}' is distributed; its frames are routed by the gateway")
                    } else {
                        format!("no such session '{session}'")
                    };
                    err(&sink, Some(&session), None, message, &metrics);
                    continue;
                };
                attach(slot, &session, &sink, &metrics);
                metrics.batches_ingested.fetch_add(1, Ordering::Relaxed);
                for e in events {
                    ingest_one(&session, slot, e.p, e.clock, e.set, &metrics);
                }
            }
            Cmd::Finish { session, p, sink } => {
                let Some(slot) = slots.get_mut(&session) else {
                    let message = if workers.contains_key(&session) || aggs.contains_key(&session) {
                        format!("session '{session}' is distributed; its frames are routed by the gateway")
                    } else {
                        format!("no such session '{session}'")
                    };
                    err(&sink, Some(&session), None, message, &metrics);
                    continue;
                };
                attach(slot, &session, &sink, &metrics);
                match slot.session.finish_process(p) {
                    Ok(verdicts) => {
                        flush_slice_stats(&mut slot.session, &metrics);
                        send_verdicts(&session, verdicts, &slot.sink, &metrics)
                    }
                    Err(e) => err(
                        &slot.sink.clone(),
                        Some(&session),
                        error_kind_of(&e),
                        e.to_string(),
                        &metrics,
                    ),
                }
            }
            Cmd::DistEvent {
                session,
                seq,
                event,
                sink,
            } => {
                let Some(slot) = workers.get_mut(&session) else {
                    let message = if slots.contains_key(&session) || aggs.contains_key(&session) {
                        format!("session '{session}' is not a distributed worker partition")
                    } else {
                        format!("no such session '{session}'")
                    };
                    err(&sink, Some(&session), None, message, &metrics);
                    continue;
                };
                if !slot.attached {
                    slot.sink = sink.clone();
                    slot.attached = true;
                    metrics.sessions_reattached.fetch_add(1, Ordering::Relaxed);
                }
                metrics.events_ingested.fetch_add(1, Ordering::Relaxed);
                let updates = slot.engine.observe(
                    seq,
                    event.p,
                    VectorClock::from_components(event.clock),
                    &event.set,
                );
                relay_updates(&slot.origin, updates, &slot.sink, &metrics);
            }
            Cmd::SliceUpdate {
                session,
                seq,
                update,
                sink,
            } => {
                let Some(slot) = aggs.get_mut(&session) else {
                    let message = if slots.contains_key(&session) || workers.contains_key(&session)
                    {
                        format!("session '{session}' is not a distributed session")
                    } else {
                        format!("no such session '{session}'")
                    };
                    err(&sink, Some(&session), None, message, &metrics);
                    continue;
                };
                attach_agg(slot, &session, &sink, &metrics);
                metrics.dist_updates_applied.fetch_add(1, Ordering::Relaxed);
                let held_before = slot.engine.held();
                let delivered_before = slot.engine.delivered();
                let steps = slot.engine.update(seq, update);
                let delivered = slot.engine.delivered() - delivered_before;
                metrics
                    .events_delivered
                    .fetch_add(delivered, Ordering::Relaxed);
                let held_now = slot.engine.held();
                if held_now > held_before {
                    metrics.held_add((held_now - held_before) as u64);
                } else {
                    metrics.held_sub((held_before - held_now) as u64);
                }
                if emit_agg_steps(&session, steps, &slot.sink, &metrics) {
                    metrics.sessions_active.fetch_sub(1, Ordering::Relaxed);
                    metrics
                        .dist_aggregators_active
                        .fetch_sub(1, Ordering::Relaxed);
                    aggs.remove(&session);
                }
            }
            Cmd::Close { session, sink } => {
                if let Some(mut slot) = slots.remove(&session) {
                    attach(&mut slot, &session, &sink, &metrics);
                    close_slot(&session, slot, &metrics);
                } else if let Some(mut slot) = workers.remove(&session) {
                    // The gateway closes the partitions before sending
                    // the aggregator its close update, so stranded
                    // holds flush into the update stream first.
                    if !slot.attached {
                        slot.sink = sink.clone();
                        slot.attached = true;
                        metrics.sessions_reattached.fetch_add(1, Ordering::Relaxed);
                    }
                    let flushed = slot.engine.close();
                    let discarded = flushed.len() as u64;
                    relay_updates(&slot.origin, flushed, &slot.sink, &metrics);
                    flush_worker_slice_stats(&mut slot.engine, &metrics);
                    metrics.dist_workers_active.fetch_sub(1, Ordering::Relaxed);
                    let _ = slot.sink.send(ServerMsg::Closed { session, discarded });
                } else if let Some(mut slot) = aggs.remove(&session) {
                    // A plain close reaching the aggregator directly
                    // (not the gateway's sequenced close update):
                    // close out of band.
                    attach_agg(&mut slot, &session, &sink, &metrics);
                    metrics.held_sub(slot.engine.held() as u64);
                    let steps = slot.engine.close_now();
                    emit_agg_steps(&session, steps, &slot.sink, &metrics);
                    metrics.sessions_active.fetch_sub(1, Ordering::Relaxed);
                    metrics
                        .dist_aggregators_active
                        .fetch_sub(1, Ordering::Relaxed);
                } else {
                    err(
                        &sink,
                        Some(&session),
                        None,
                        format!("no such session '{session}'"),
                        &metrics,
                    );
                }
            }
            Cmd::Snapshot { reply } => {
                for slot in slots.values_mut() {
                    flush_slice_stats(&mut slot.session, &metrics);
                }
                for slot in workers.values_mut() {
                    flush_worker_slice_stats(&mut slot.engine, &metrics);
                }
                let _ = reply.send(ShardFreeze {
                    sessions: slots.values().map(|s| s.session.snapshot()).collect(),
                    workers: workers
                        .iter()
                        .map(|(name, w)| WorkerSlotSnapshot {
                            name: name.clone(),
                            origin: w.origin.clone(),
                            snap: w.engine.snapshot(),
                        })
                        .collect(),
                    aggregators: aggs
                        .iter()
                        .map(|(name, a)| AggregatorSlotSnapshot {
                            name: name.clone(),
                            processes: a.engine.processes(),
                            snap: a.engine.snapshot(),
                        })
                        .collect(),
                });
            }
            Cmd::Flush => break,
        }
    }
    // Reached on Flush or channel disconnect: close every remaining
    // session so detectors still settle and sinks learn the outcome.
    // Workers flush before aggregators so a co-located aggregator can
    // still absorb their stranded-hold updates.
    for (name, mut slot) in workers.drain() {
        let flushed = slot.engine.close();
        let discarded = flushed.len() as u64;
        relay_updates(&slot.origin, flushed, &slot.sink, &metrics);
        flush_worker_slice_stats(&mut slot.engine, &metrics);
        metrics.dist_workers_active.fetch_sub(1, Ordering::Relaxed);
        let _ = slot.sink.send(ServerMsg::Closed {
            session: name,
            discarded,
        });
    }
    for (name, mut slot) in aggs.drain() {
        metrics.held_sub(slot.engine.held() as u64);
        let steps = slot.engine.close_now();
        emit_agg_steps(&name, steps, &slot.sink, &metrics);
        metrics.sessions_active.fetch_sub(1, Ordering::Relaxed);
        metrics
            .dist_aggregators_active
            .fetch_sub(1, Ordering::Relaxed);
    }
    for (name, slot) in slots.drain() {
        close_slot(&name, slot, &metrics);
    }
}

// ---- TCP transport --------------------------------------------------------

/// Serves the wire protocol on `listener` until a client sends
/// `shutdown`. Each connection gets a reader (this function's accept
/// loop spawns it) and a writer thread draining the connection's sink.
///
/// Returns when a `shutdown` frame arrives; the caller then owns the
/// final [`MonitorService::shutdown`].
pub fn serve(listener: TcpListener, handle: MonitorHandle) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    let mut conn_threads = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        // Small request/reply frames; Nagle would stall each exchange on
        // a delayed-ACK round trip.
        let _ = stream.set_nodelay(true);
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        conn_threads.push(std::thread::spawn(move || {
            let shutdown_requested = serve_connection(stream, handle);
            if shutdown_requested {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop.
                let _ = TcpStream::connect(addr);
            }
        }));
    }
    for t in conn_threads {
        let _ = t.join();
    }
    Ok(())
}

/// Handles one connection; returns whether the client asked the whole
/// service to shut down.
fn serve_connection(stream: TcpStream, handle: MonitorHandle) -> bool {
    let peer_write = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    let (sink_tx, sink_rx) = unbounded::<ServerMsg>();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(peer_write);
        for msg in sink_rx.iter() {
            let is_bye = matches!(msg, ServerMsg::Bye);
            if wire::write_frame(&mut w, &msg).is_err() || is_bye {
                return;
            }
        }
    });
    let mut r = BufReader::new(stream);
    let mut shutdown = false;
    loop {
        match wire::read_frame::<_, ClientMsg>(&mut r) {
            Ok(Some(msg)) => {
                let is_shutdown = matches!(msg, ClientMsg::Shutdown);
                handle.submit(msg, &sink_tx);
                if is_shutdown {
                    shutdown = true;
                    break;
                }
            }
            Ok(None) => break, // clean disconnect
            Err(e) => {
                let _ = sink_tx.send(ServerMsg::Error {
                    session: None,
                    kind: None,
                    message: e.to_string(),
                });
                break; // framing is broken; no way to resync safely
            }
        }
    }
    drop(sink_tx); // writer drains and exits
    let _ = writer.join();
    shutdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_store::SyncPolicy;
    use hb_tracefmt::wire::{WireClause, WireMode};
    use std::path::PathBuf;

    fn fig2_open(session: &str) -> ClientMsg {
        ClientMsg::Open {
            session: session.into(),
            processes: 2,
            vars: vec!["x0".into(), "x1".into()],
            initial: vec![],
            predicates: vec![WirePredicate {
                id: "ef".into(),
                mode: WireMode::Conjunctive,
                clauses: vec![
                    WireClause {
                        process: 0,
                        var: "x0".into(),
                        op: "=".into(),
                        value: 2,
                    },
                    WireClause {
                        process: 1,
                        var: "x1".into(),
                        op: "=".into(),
                        value: 1,
                    },
                ],
                pattern: None,
            }],
            dist: None,
        }
    }

    fn event(session: &str, p: usize, clock: &[u32], set: &[(&str, i64)]) -> ClientMsg {
        ClientMsg::Event {
            session: session.into(),
            p,
            clock: clock.to_vec(),
            set: set.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// Drains the sink until a verdict for `predicate` arrives.
    fn wait_verdict(rx: &Receiver<ServerMsg>, predicate: &str) -> WireVerdict {
        for msg in rx.iter() {
            if let ServerMsg::Verdict {
                predicate: p,
                verdict,
                ..
            } = msg
            {
                if p == predicate {
                    return verdict;
                }
            }
        }
        panic!("sink closed without a verdict for '{predicate}'");
    }

    fn pattern_open(session: &str) -> ClientMsg {
        use hb_tracefmt::wire::{WireAtom, WirePattern};
        ClientMsg::Open {
            session: session.into(),
            processes: 2,
            vars: vec!["unlock".into(), "lock".into()],
            initial: vec![],
            predicates: vec![WirePredicate {
                id: "inv".into(),
                mode: WireMode::Pattern,
                clauses: vec![],
                pattern: Some(WirePattern {
                    atoms: vec![
                        WireAtom {
                            process: Some(1),
                            var: "unlock".into(),
                            op: "=".into(),
                            value: 1,
                            causal: false,
                        },
                        WireAtom {
                            process: Some(0),
                            var: "lock".into(),
                            op: "=".into(),
                            value: 1,
                            causal: false,
                        },
                    ],
                }),
            }],
            dist: None,
        }
    }

    #[test]
    fn pattern_sessions_detect_and_count_in_stats() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(pattern_open("s"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));

        // The delivered order shows lock before unlock, but the two are
        // concurrent — the predictive matcher flags the inversion.
        handle.submit(event("s", 0, &[1, 0], &[("lock", 1)]), &tx);
        handle.submit(event("s", 1, &[0, 1], &[("unlock", 1)]), &tx);
        assert!(matches!(wait_verdict(&rx, "inv"), WireVerdict::Detected(_)));

        let stats = service.shutdown();
        assert_eq!(stats.verdicts_settled, 1);
        assert_eq!(stats.verdicts["verdicts.pattern.inv.detected"], 1);
    }

    #[test]
    fn pre_v4_monitors_refuse_pattern_opens_with_a_typed_error() {
        let service = MonitorService::start(MonitorConfig {
            wire_version: 2,
            ..MonitorConfig::default()
        });
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(pattern_open("s"), &tx);
        match rx.recv().unwrap() {
            ServerMsg::Error {
                session,
                kind,
                message,
            } => {
                assert_eq!(session.as_deref(), Some("s"));
                assert_eq!(
                    kind.as_deref(),
                    Some(wire::error_kind::UNSUPPORTED_PREDICATE)
                );
                assert!(message.contains("wire v4"));
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
        // Clause predicates still open fine on the same connection.
        handle.submit(fig2_open("s2"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
        service.shutdown();
    }

    #[test]
    fn in_process_session_detects_and_flushes() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(fig2_open("s"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));

        // Shuffled Fig. 2(a): the receive arrives before anything else.
        handle.submit(event("s", 1, &[2, 2], &[("x1", 2)]), &tx);
        handle.submit(event("s", 0, &[1, 0], &[("x0", 1)]), &tx);
        handle.submit(event("s", 1, &[0, 1], &[("x1", 1)]), &tx);
        handle.submit(event("s", 0, &[2, 0], &[("x0", 2)]), &tx);
        assert_eq!(wait_verdict(&rx, "ef"), WireVerdict::Detected(vec![2, 1]));

        handle.submit(
            ClientMsg::Close {
                session: "s".into(),
            },
            &tx,
        );
        loop {
            if let ServerMsg::Closed { discarded, .. } = rx.recv().unwrap() {
                assert_eq!(discarded, 0);
                break;
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.events_ingested, 4);
        assert_eq!(stats.events_delivered, 4);
        assert_eq!(stats.events_held, 0);
        assert!(stats.events_held_high_water >= 1);
        assert_eq!(stats.verdicts_settled, 1);
        assert_eq!(stats.sessions_active, 0);
    }

    #[test]
    fn slice_counters_flow_into_service_stats() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(fig2_open("s"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
        // First event leaves the clause false — the filter drops it
        // before the detector; the next two satisfy their clauses.
        handle.submit(event("s", 0, &[1, 0], &[("x0", 1)]), &tx);
        handle.submit(event("s", 0, &[2, 0], &[("x0", 2)]), &tx);
        handle.submit(event("s", 1, &[0, 1], &[("x1", 1)]), &tx);
        assert_eq!(wait_verdict(&rx, "ef"), WireVerdict::Detected(vec![2, 1]));
        let stats = service.shutdown();
        assert_eq!(stats.slices["slice.ef.events_in"], 3);
        assert_eq!(stats.slices["slice.ef.events_filtered"], 1);
        assert_eq!(stats.to_map()["slice.ef.events_filtered"], 1);
    }

    #[test]
    fn shutdown_flushes_open_sessions_with_final_verdicts() {
        let service = MonitorService::start(MonitorConfig {
            shards: 2,
            ..MonitorConfig::default()
        });
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(fig2_open("flushy"), &tx);
        handle.submit(event("flushy", 1, &[1, 1], &[("x1", 1)]), &tx); // held forever
        let stats = service.shutdown();
        assert_eq!(stats.events_held, 0, "flush returns the held gauge to zero");
        assert_eq!(stats.events_discarded, 1);
        drop(tx); // our clone would keep the iterator below alive forever
        let msgs: Vec<ServerMsg> = rx.iter().collect();
        assert!(msgs.iter().any(|m| matches!(
            m,
            ServerMsg::Verdict {
                verdict: WireVerdict::Impossible,
                ..
            }
        )));
        assert!(msgs.iter().any(|m| matches!(m, ServerMsg::Closed { .. })));
    }

    #[test]
    fn sessions_shard_independently() {
        let service = MonitorService::start(MonitorConfig {
            shards: 3,
            ..MonitorConfig::default()
        });
        let handle = service.handle();
        let mut sinks = Vec::new();
        for i in 0..6 {
            let (tx, rx) = unbounded();
            let name = format!("s{i}");
            handle.submit(fig2_open(&name), &tx);
            handle.submit(event(&name, 0, &[1, 0], &[("x0", 2)]), &tx);
            handle.submit(event(&name, 1, &[0, 1], &[("x1", 1)]), &tx);
            sinks.push((name, tx, rx));
        }
        for (_, _, rx) in &sinks {
            assert_eq!(wait_verdict(rx, "ef"), WireVerdict::Detected(vec![1, 1]));
        }
        let stats = service.shutdown();
        assert_eq!(stats.sessions_opened, 6);
        assert_eq!(stats.events_ingested, 12);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        // Event for a session that does not exist.
        handle.submit(event("ghost", 0, &[1, 0], &[]), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Error { .. }));
        // Open, then duplicate open.
        handle.submit(fig2_open("dup"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
        handle.submit(fig2_open("dup"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Error { .. }));
        // Duplicate event.
        handle.submit(event("dup", 0, &[1, 0], &[]), &tx);
        handle.submit(event("dup", 0, &[1, 0], &[]), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Error { .. }));
        let stats = service.shutdown();
        assert_eq!(stats.protocol_errors, 3);
        assert_eq!(stats.events_duplicate, 1);
    }

    /// The SDK's flusher classifies replay artifacts by the `kind`
    /// field, so the exact constants the service emits are contract,
    /// not cosmetics (the message texts are free to change).
    #[test]
    fn replay_artifact_errors_carry_machine_readable_kinds() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(fig2_open("kinds"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
        // A replayed open, a replayed event, and an event after finish —
        // the three benign at-least-once artifacts.
        handle.submit(fig2_open("kinds"), &tx);
        handle.submit(event("kinds", 0, &[1, 0], &[]), &tx);
        handle.submit(event("kinds", 0, &[1, 0], &[]), &tx);
        handle.submit(
            ClientMsg::FinishProcess {
                session: "kinds".into(),
                p: 0,
            },
            &tx,
        );
        handle.submit(event("kinds", 0, &[2, 0], &[]), &tx);
        // An unknown session is a real error: no kind.
        handle.submit(event("ghost", 0, &[1, 0], &[]), &tx);
        service.shutdown();
        let mut session_kinds = Vec::new();
        let mut ghost_kinds = Vec::new();
        while let Ok(msg) = rx.try_recv() {
            if let ServerMsg::Error { session, kind, .. } = msg {
                match session.as_deref() {
                    Some("kinds") => session_kinds.push(kind),
                    Some("ghost") => ghost_kinds.push(kind),
                    other => panic!("error for unexpected session {other:?}"),
                }
            }
        }
        assert_eq!(
            session_kinds,
            [
                Some(wire::error_kind::ALREADY_OPEN.to_string()),
                Some(wire::error_kind::DUPLICATE_EVENT.to_string()),
                Some(wire::error_kind::ALREADY_FINISHED.to_string()),
            ]
        );
        assert_eq!(ghost_kinds, [None]);
    }

    #[test]
    fn hello_handshake_negotiates_version() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(
            ClientMsg::Hello {
                version: wire::WIRE_VERSION,
            },
            &tx,
        );
        assert_eq!(
            rx.recv().unwrap(),
            ServerMsg::Welcome {
                version: wire::WIRE_VERSION
            }
        );
        // A future version is refused with the canonical message…
        handle.submit(
            ClientMsg::Hello {
                version: wire::WIRE_VERSION + 1,
            },
            &tx,
        );
        match rx.recv().unwrap() {
            ServerMsg::Error { message, .. } => {
                assert!(
                    message.contains("unsupported protocol version"),
                    "{message}"
                );
            }
            other => panic!("{other:?}"),
        }
        // …and a version-1 peer that never says hello still works: the
        // handshake is optional (see in_process_session_detects_and_flushes).
        handle.submit(
            ClientMsg::Drain {
                backend: "127.0.0.1:1".into(),
            },
            &tx,
        );
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Error { .. }));
        service.shutdown();
    }

    #[test]
    fn stats_request_answers_inline() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(ClientMsg::Stats, &tx);
        match rx.recv().unwrap() {
            ServerMsg::Stats { counters } => {
                assert_eq!(counters["events_ingested"], 0);
            }
            other => panic!("{other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        let service = MonitorService::start(MonitorConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = service.handle();
        let server = std::thread::spawn(move || serve(listener, handle).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        wire::write_frame(&mut w, &fig2_open("tcp")).unwrap();
        let opened: ServerMsg = wire::read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(opened, ServerMsg::Opened { .. }));
        wire::write_frame(&mut w, &event("tcp", 0, &[1, 0], &[("x0", 2)])).unwrap();
        wire::write_frame(&mut w, &event("tcp", 1, &[0, 1], &[("x1", 1)])).unwrap();
        let verdict: ServerMsg = wire::read_frame(&mut r).unwrap().unwrap();
        match verdict {
            ServerMsg::Verdict { verdict, .. } => {
                assert_eq!(verdict, WireVerdict::Detected(vec![1, 1]));
            }
            other => panic!("{other:?}"),
        }
        wire::write_frame(&mut w, &ClientMsg::Shutdown).unwrap();
        let bye: ServerMsg = wire::read_frame(&mut r).unwrap().unwrap();
        assert!(matches!(bye, ServerMsg::Bye));
        server.join().unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.events_ingested, 2);
    }

    // ---- persistence ------------------------------------------------------

    fn persist_config(name: &str) -> PersistConfig {
        let dir: PathBuf = std::env::temp_dir()
            .join("hb-monitor-service-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        PersistConfig {
            sync: SyncPolicy::Os,
            ..PersistConfig::new(dir)
        }
    }

    #[test]
    fn wal_replay_rebuilds_sessions_after_a_crash() {
        let config = MonitorConfig {
            persist: Some(persist_config("replay")),
            ..MonitorConfig::default()
        };
        {
            let service = MonitorService::open(config.clone()).unwrap();
            let handle = service.handle();
            let (tx, rx) = unbounded();
            handle.submit(fig2_open("s"), &tx);
            assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
            handle.submit(event("s", 1, &[0, 1], &[("x1", 1)]), &tx);
            handle.submit(event("s", 0, &[1, 0], &[("x0", 1)]), &tx);
            // "Crash": drop everything without shutdown. The appends
            // already happened in submit, so the WAL has all three
            // records; no graceful state is written.
            drop(handle);
            drop(service);
        }
        let service = MonitorService::open(config).unwrap();
        let m = service.metrics();
        assert_eq!(m.sessions_recovered, 1);
        assert_eq!(m.recovery_replayed, 3, "open + two events");
        let handle = service.handle();
        let (tx, rx) = unbounded();
        // Resume the stream exactly where it stopped: the recovered
        // session still has x1=1 delivered, so e2 completes detection.
        handle.submit(event("s", 0, &[2, 0], &[("x0", 2)]), &tx);
        assert_eq!(wait_verdict(&rx, "ef"), WireVerdict::Detected(vec![2, 1]));
        service.shutdown();
    }

    #[test]
    fn snapshots_bound_replay_and_settled_verdicts_are_reemitted() {
        let mut persist = persist_config("snapshot");
        persist.snapshot_every = 3;
        let config = MonitorConfig {
            shards: 2,
            persist: Some(persist),
            ..MonitorConfig::default()
        };
        {
            let service = MonitorService::open(config.clone()).unwrap();
            let handle = service.handle();
            let (tx, rx) = unbounded();
            handle.submit(fig2_open("s"), &tx);
            handle.submit(event("s", 1, &[0, 1], &[("x1", 1)]), &tx);
            handle.submit(event("s", 0, &[1, 0], &[("x0", 1)]), &tx);
            handle.submit(event("s", 0, &[2, 0], &[("x0", 2)]), &tx);
            assert_eq!(wait_verdict(&rx, "ef"), WireVerdict::Detected(vec![2, 1]));
            assert!(service.metrics().snapshots_written >= 1);
            drop(handle);
            drop(service); // crash
        }
        let service = MonitorService::open(config).unwrap();
        let m = service.metrics();
        assert_eq!(m.sessions_recovered, 1);
        assert!(
            m.recovery_replayed < 4,
            "snapshot should bound the replay, got {}",
            m.recovery_replayed
        );
        // First contact with the recovered session re-reports the
        // verdict that settled before the crash.
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(
            ClientMsg::Close {
                session: "s".into(),
            },
            &tx,
        );
        assert_eq!(wait_verdict(&rx, "ef"), WireVerdict::Detected(vec![2, 1]));
        service.shutdown();
    }

    #[test]
    fn graceful_shutdown_leaves_nothing_to_recover() {
        let config = MonitorConfig {
            persist: Some(persist_config("graceful")),
            ..MonitorConfig::default()
        };
        let service = MonitorService::open(config.clone()).unwrap();
        let handle = service.handle();
        let (tx, _rx) = unbounded();
        handle.submit(fig2_open("s"), &tx);
        handle.submit(event("s", 0, &[1, 0], &[("x0", 1)]), &tx);
        drop(handle); // release the WAL before reopening below
        service.shutdown();

        let service = MonitorService::open(config).unwrap();
        let m = service.metrics();
        assert_eq!(m.sessions_recovered, 0, "shutdown resolved every session");
        assert_eq!(m.recovery_replayed, 0, "the final snapshot covers the log");
        service.shutdown();
    }

    #[test]
    fn second_service_on_the_same_data_dir_is_refused() {
        let config = MonitorConfig {
            persist: Some(persist_config("locked")),
            ..MonitorConfig::default()
        };
        let service = MonitorService::open(config.clone()).unwrap();
        match MonitorService::open(config) {
            Err(StoreError::Locked { .. }) => {}
            Err(other) => panic!("expected Locked, got {other:?}"),
            Ok(_) => panic!("second open must be refused"),
        }
        service.shutdown();
    }

    // ---- distributed sessions ---------------------------------------------

    /// [`fig2_open`] under a distribution role — same processes, vars
    /// and predicate, so a distributed trio and the single-backend
    /// reference monitor the identical session.
    fn fig2_dist_open(session: &str, role: WireDistRole) -> ClientMsg {
        match fig2_open(session) {
            ClientMsg::Open {
                session,
                processes,
                vars,
                initial,
                predicates,
                ..
            } => ClientMsg::Open {
                session,
                processes,
                vars,
                initial,
                predicates,
                dist: Some(role),
            },
            _ => unreachable!(),
        }
    }

    /// The shuffled Fig. 2(a) stream the in-process tests use.
    #[allow(clippy::type_complexity)]
    fn fig2_events() -> Vec<(usize, Vec<u32>, Vec<(&'static str, i64)>)> {
        vec![
            (1, vec![2, 2], vec![("x1", 2)]),
            (0, vec![1, 0], vec![("x0", 1)]),
            (1, vec![0, 1], vec![("x1", 1)]),
            (0, vec![2, 0], vec![("x0", 2)]),
        ]
    }

    /// Runs `events` through a plain single-backend session and returns
    /// every frame the session emitted, through `closed`.
    #[allow(clippy::type_complexity)]
    fn reference_frames(events: &[(usize, Vec<u32>, Vec<(&'static str, i64)>)]) -> Vec<ServerMsg> {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(fig2_open("s"), &tx);
        for (p, clock, set) in events {
            handle.submit(event("s", *p, clock, set), &tx);
        }
        handle.submit(
            ClientMsg::Close {
                session: "s".into(),
            },
            &tx,
        );
        let mut frames = Vec::new();
        for msg in rx.iter() {
            let done = matches!(msg, ServerMsg::Closed { .. });
            frames.push(msg);
            if done {
                break;
            }
        }
        service.shutdown();
        frames
    }

    /// Plays the gateway against one in-process service: opens the
    /// worker partitions (decorated names) and the aggregator (origin
    /// name), stamps seqs, routes events to their owner workers as
    /// `dist-event` frames, and relays worker `slice-update` frames to
    /// the aggregator. Channels outlive the service, so a test can
    /// crash and reopen the service mid-stream and keep driving.
    struct DistDriver {
        origin: String,
        k: usize,
        next_seq: u64,
        wtx: Sender<ServerMsg>,
        wrx: Receiver<ServerMsg>,
        atx: Sender<ServerMsg>,
        arx: Receiver<ServerMsg>,
    }

    impl DistDriver {
        fn open(handle: &MonitorHandle, origin: &str, k: usize) -> DistDriver {
            let (wtx, wrx) = unbounded();
            let (atx, arx) = unbounded();
            for worker in 0..k {
                handle.submit(
                    fig2_dist_open(
                        &format!("{origin}#w{worker}"),
                        WireDistRole::Worker {
                            origin: origin.into(),
                            worker,
                            k,
                        },
                    ),
                    &wtx,
                );
                assert!(matches!(wrx.recv().unwrap(), ServerMsg::Opened { .. }));
            }
            // The aggregator's Opened stays in `arx`: it is the first
            // frame of the origin stream the tests byte-compare.
            handle.submit(fig2_dist_open(origin, WireDistRole::Aggregator { k }), &atx);
            DistDriver {
                origin: origin.into(),
                k,
                next_seq: 0,
                wtx,
                wrx,
                atx,
                arx,
            }
        }

        fn event(&mut self, handle: &MonitorHandle, p: usize, clock: &[u32], set: &[(&str, i64)]) {
            let seq = self.next_seq;
            self.next_seq += 1;
            handle.submit(
                ClientMsg::DistEvent {
                    session: format!("{}#w{}", self.origin, hb_dist::owner(p, self.k)),
                    seq,
                    event: wire::EventFrame {
                        p,
                        clock: clock.to_vec(),
                        set: set.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
                    },
                },
                &self.wtx,
            );
        }

        /// Replaces both sinks with fresh channels — what a gateway
        /// reconnecting after a monitor restart does. The recovered
        /// slots adopt the new sinks on first contact (re-attach).
        fn rewire(&mut self) {
            let (wtx, wrx) = unbounded();
            let (atx, arx) = unbounded();
            self.wtx = wtx;
            self.wrx = wrx;
            self.atx = atx;
            self.arx = arx;
        }

        /// Relays the next `n` worker observations to the aggregator.
        fn relay(&mut self, handle: &MonitorHandle, n: usize) {
            let mut relayed = 0;
            while relayed < n {
                match self.wrx.recv().unwrap() {
                    ServerMsg::SliceUpdate {
                        session,
                        seq,
                        update,
                    } => {
                        assert_eq!(session, self.origin, "updates address the origin");
                        handle.submit(
                            ClientMsg::SliceUpdate {
                                session,
                                seq,
                                update,
                            },
                            &self.atx,
                        );
                        relayed += 1;
                    }
                    other => panic!("expected a slice-update, got {other:?}"),
                }
            }
        }

        /// The gateway close protocol: close the workers first (their
        /// stranded holds flush as updates that must still reach the
        /// aggregator), then hand the aggregator its final close
        /// update. Returns the origin session's full frame stream.
        fn close(self, handle: &MonitorHandle) -> Vec<ServerMsg> {
            for worker in 0..self.k {
                handle.submit(
                    ClientMsg::Close {
                        session: format!("{}#w{}", self.origin, worker),
                    },
                    &self.wtx,
                );
            }
            let mut closed = 0;
            while closed < self.k {
                match self.wrx.recv().unwrap() {
                    ServerMsg::SliceUpdate {
                        session,
                        seq,
                        update,
                    } => handle.submit(
                        ClientMsg::SliceUpdate {
                            session,
                            seq,
                            update,
                        },
                        &self.atx,
                    ),
                    ServerMsg::Closed { .. } => closed += 1,
                    other => panic!("unexpected worker frame {other:?}"),
                }
            }
            handle.submit(
                ClientMsg::SliceUpdate {
                    session: self.origin.clone(),
                    seq: self.next_seq,
                    update: SliceUpdateBody::Close,
                },
                &self.atx,
            );
            let mut frames = Vec::new();
            for msg in self.arx.iter() {
                let done = matches!(msg, ServerMsg::Closed { .. });
                frames.push(msg);
                if done {
                    break;
                }
            }
            frames
        }
    }

    #[test]
    fn distributed_sessions_match_the_single_backend_frame_for_frame() {
        let events = fig2_events();
        let expected = reference_frames(&events);
        assert!(
            expected.contains(&ServerMsg::Verdict {
                session: "s".into(),
                predicate: "ef".into(),
                verdict: WireVerdict::Detected(vec![2, 1]),
            }),
            "the reference stream must actually detect"
        );

        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let mut driver = DistDriver::open(&handle, "s", 2);
        for (p, clock, set) in &events {
            driver.event(&handle, *p, clock, set);
        }
        driver.relay(&handle, events.len());
        let frames = driver.close(&handle);
        assert_eq!(frames, expected, "origin frame streams must be identical");

        let m = service.shutdown();
        assert_eq!(m.events_ingested, 4);
        assert_eq!(m.dist_updates_relayed, 4, "one observation per event");
        assert_eq!(m.dist_updates_applied, 5, "four observations + close");
        assert_eq!(m.dist_workers_active, 0);
        assert_eq!(m.dist_aggregators_active, 0);
        assert_eq!(m.verdicts_settled, 1);
        assert_eq!(m.sessions_active, 0);
    }

    #[test]
    fn distributed_slots_recover_from_a_crash_mid_stream() {
        let config = MonitorConfig {
            persist: Some(persist_config("dist-crash")),
            ..MonitorConfig::default()
        };
        let events = fig2_events();
        let expected = reference_frames(&events);

        let service = MonitorService::open(config.clone()).unwrap();
        let handle = service.handle();
        let mut driver = DistDriver::open(&handle, "s", 2);
        for (p, clock, set) in &events[..3] {
            driver.event(&handle, *p, clock, set);
        }
        driver.relay(&handle, 3);
        assert!(matches!(
            driver.arx.try_recv().unwrap(),
            ServerMsg::Opened { .. }
        ));
        // "Crash": drop without shutdown. The WAL holds the three
        // opens, three dist-events, and three relayed updates; the
        // flush-on-drop frames die with the old sinks below.
        drop(handle);
        drop(service);

        let service = MonitorService::open(config).unwrap();
        let m = service.metrics();
        assert_eq!(m.sessions_recovered, 3, "two workers + one aggregator");
        assert_eq!(m.recovery_replayed, 9);
        let handle = service.handle();
        driver.rewire();
        let (p, clock, set) = &events[3];
        driver.event(&handle, *p, clock, set);
        driver.relay(&handle, 1);
        let frames = driver.close(&handle);
        // The reconnected stream is the reference stream minus the
        // Opened frame consumed before the crash.
        assert_eq!(frames, expected[1..], "recovery must not change the stream");
        assert!(service.metrics().sessions_reattached >= 1);
        service.shutdown();
    }

    #[test]
    fn pre_v5_monitors_refuse_distributed_frames() {
        let service = MonitorService::start(MonitorConfig {
            wire_version: 4,
            ..MonitorConfig::default()
        });
        let handle = service.handle();
        let (tx, rx) = unbounded();
        handle.submit(
            fig2_dist_open(
                "s#w0",
                WireDistRole::Worker {
                    origin: "s".into(),
                    worker: 0,
                    k: 2,
                },
            ),
            &tx,
        );
        match rx.recv().unwrap() {
            ServerMsg::Error { kind, message, .. } => {
                assert_eq!(
                    kind.as_deref(),
                    Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION)
                );
                assert!(message.contains("wire v5"), "{message}");
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
        handle.submit(
            ClientMsg::DistEvent {
                session: "s#w0".into(),
                seq: 0,
                event: wire::EventFrame {
                    p: 0,
                    clock: vec![1, 0],
                    set: BTreeMap::new(),
                },
            },
            &tx,
        );
        match rx.recv().unwrap() {
            ServerMsg::Error { kind, message, .. } => {
                assert_eq!(kind, None);
                assert_eq!(message, "unknown client message 'dist-event'");
            }
            other => panic!("expected an error, got {other:?}"),
        }
        handle.submit(
            ClientMsg::SliceUpdate {
                session: "s".into(),
                seq: 0,
                update: SliceUpdateBody::Close,
            },
            &tx,
        );
        match rx.recv().unwrap() {
            ServerMsg::Error { message, .. } => {
                assert_eq!(message, "unknown client message 'slice-update'");
            }
            other => panic!("expected an error, got {other:?}"),
        }
        // Plain sessions are untouched by the emulation.
        handle.submit(fig2_open("plain"), &tx);
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
        service.shutdown();
    }

    #[test]
    fn monitors_refuse_gateway_only_roles_and_direct_frames() {
        let service = MonitorService::start(MonitorConfig::default());
        let handle = service.handle();
        let (tx, rx) = unbounded();
        // `distribute` is the client-facing role; only a gateway fans
        // it out into worker/aggregator opens.
        handle.submit(fig2_dist_open("s", WireDistRole::Distribute { k: 2 }), &tx);
        match rx.recv().unwrap() {
            ServerMsg::Error { kind, message, .. } => {
                assert_eq!(
                    kind.as_deref(),
                    Some(wire::error_kind::UNSUPPORTED_DISTRIBUTION)
                );
                assert!(message.contains("gateway"), "{message}");
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
        // Worker partitions take dist-event frames, not plain events…
        handle.submit(
            fig2_dist_open(
                "s#w0",
                WireDistRole::Worker {
                    origin: "s".into(),
                    worker: 0,
                    k: 1,
                },
            ),
            &tx,
        );
        assert!(matches!(rx.recv().unwrap(), ServerMsg::Opened { .. }));
        handle.submit(event("s#w0", 0, &[1, 0], &[("x0", 1)]), &tx);
        match rx.recv().unwrap() {
            ServerMsg::Error { message, .. } => {
                assert!(message.contains("routed by the gateway"), "{message}");
            }
            other => panic!("expected an error, got {other:?}"),
        }
        // …and slice-updates only land on aggregator slots.
        handle.submit(
            ClientMsg::SliceUpdate {
                session: "s#w0".into(),
                seq: 0,
                update: SliceUpdateBody::Close,
            },
            &tx,
        );
        match rx.recv().unwrap() {
            ServerMsg::Error { message, .. } => {
                assert!(message.contains("not a distributed session"), "{message}");
            }
            other => panic!("expected an error, got {other:?}"),
        }
        service.shutdown();
    }
}
